"""Linear Road: §4.6 comparison-system shapes and the §4.7 scaling model.

Three measurements, all on the deterministic simulated clock (byte-for-
byte reproducible for a given ``--seed``):

1. **§4.6 relative throughput.**  The Linear Road dataflow runs on a
   single S-Store engine under the calibrated cost table; the same
   script is then priced through closed-form models of the two
   comparison systems, using the comparison-cost entries the
   :class:`~repro.common.clock.CostModel` carries for exactly this
   purpose:

   - *Spark Streaming* (micro-batch): every batch pays scheduling
     (``spark_batch_overhead_us``), per-stage task launch + RDD
     bookkeeping, and a state-store round trip per stage for
     exactly-once state (``kv_rtt_us``); every row pays
     ``spark_row_us`` per stage plus ``kv_op_us`` per state update.
   - *Storm/Trident* (tuple-at-a-time): every row pays emit + ack per
     hop (``storm_emit_us``/``storm_ack_us``) plus KV state updates;
     exactly-once forces Trident batching — ``trident_batch_us`` and a
     state flush round trip per batch.

   Both models run both dataflow stages over every position report —
   generous to the baselines (the real stage 2 only sees toll rows).
   The paper's qualitative shape is the threshold: under the
   exactly-once + ordering constraint S-Store's throughput must beat
   both simulated baselines.

2. **§4.7 cross-partition scaling.**  The same workload runs on
   ``PartitionedDatabase`` (inline workers — the measurement is
   simulated time, not wall-clock) at 1, 2, and 4 partitions with
   round-robin x-way routing (the paper's distribution).  Parallel
   simulated time is the slowest partition's clock delta; measured
   speedup, discounted by the paper's per-partition coordination
   overhead ``(1 - partition_overhead_frac)^(n-1)``, must track the
   model curve ``n * (1 - f)^(n-1)``.

3. **Conformance smoke.**  The inline-partitioned digest must equal the
   single-engine reference (the full matrix lives in
   ``tests/test_workloads.py``; this keeps divergence failing the
   benchmark job too).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.common.clock import CostModel  # noqa: E402
from repro.engine import Database  # noqa: E402
from repro.partition import PartitionInfo, PartitionedDatabase  # noqa: E402
from repro.workloads import LinearRoadScenario, run_shape  # noqa: E402
from repro.workloads.scenario import Scale  # noqa: E402

DEFAULT_SEED = 20260808
XWAYS = 4  # divisible by every partition count measured
DAG_STAGES = 2  # position -> tolls -> accounts
STATE_OPS_PER_ROW = 4  # vehicle, segment stats, accident check, account


def scenario_for(seed: int) -> LinearRoadScenario:
    return LinearRoadScenario(xways=XWAYS)


def make_ops(seed: int, scale: Scale):
    return scenario_for(seed).ops(seed, scale)


# ---------------------------------------------------------------------------
# §4.6: S-Store measured vs comparison-system cost models
# ---------------------------------------------------------------------------


def run_sstore_single(seed: int, scale: Scale) -> dict:
    scenario = scenario_for(seed)
    ops = make_ops(seed, scale)
    warmup, measured = ops[:1], ops[1:]
    rows = sum(len(op.rows) for op in measured)
    db = Database(
        cost=CostModel.calibrated(),
        bootstrap=lambda db: scenario.deploy(db, PartitionInfo(0, 1)),
    )
    try:
        for op in warmup:  # compile plans outside the measurement window
            db.ingest(op.target, [list(r) for r in op.rows])
        start = db.stats("sim_time_us")
        for op in measured:
            db.ingest(op.target, [list(r) for r in op.rows])
        db.drain()
        elapsed = db.stats("sim_time_us") - start
    finally:
        db.close()
    return {
        "rows": rows,
        "batches": len(measured),
        "sim_us": elapsed,
        "rows_per_sec": rows / (elapsed / 1e6),
    }


def model_spark(cost: CostModel, batches: int, rows: int) -> dict:
    per_batch = batches * (
        cost.spark_batch_overhead_us
        + DAG_STAGES * (cost.spark_task_us + cost.rdd_create_us + cost.kv_rtt_us)
    )
    per_row = rows * (
        DAG_STAGES * cost.spark_row_us + STATE_OPS_PER_ROW * cost.kv_op_us
    )
    us = per_batch + per_row
    return {"sim_us": us, "rows_per_sec": rows / (us / 1e6)}


def model_storm(cost: CostModel, batches: int, rows: int) -> dict:
    per_batch = batches * (cost.trident_batch_us + DAG_STAGES * cost.kv_rtt_us)
    per_row = rows * (
        DAG_STAGES * (cost.storm_emit_us + cost.storm_ack_us)
        + STATE_OPS_PER_ROW * cost.kv_op_us
    )
    us = per_batch + per_row
    return {"sim_us": us, "rows_per_sec": rows / (us / 1e6)}


def comparison_4_6(seed: int, scale: Scale) -> dict:
    cost = CostModel.calibrated()
    sstore = run_sstore_single(seed, scale)
    spark = model_spark(cost, sstore["batches"], sstore["rows"])
    storm = model_storm(cost, sstore["batches"], sstore["rows"])
    return {
        "sstore": sstore,
        "spark_streaming": spark,
        "storm_trident": storm,
        "sstore_vs_spark": sstore["rows_per_sec"] / spark["rows_per_sec"],
        "sstore_vs_storm": sstore["rows_per_sec"] / storm["rows_per_sec"],
    }


# ---------------------------------------------------------------------------
# §4.7: cross-partition scaling against the overhead model
# ---------------------------------------------------------------------------


def run_partitioned(seed: int, scale: Scale, n: int) -> float:
    """Slowest partition's simulated-clock delta for the measured window."""
    scenario = scenario_for(seed)
    ops = make_ops(seed, scale)
    warmup, measured = ops[:1], ops[1:]
    pdb = PartitionedDatabase(
        n,
        scenario.deploy,
        partition_keys=scenario.partition_keys,
        mode="round_robin",  # xway % n — the paper's x-way distribution
        workers="inline",
    )
    try:
        for op in warmup:
            pdb.ingest(op.target, [list(r) for r in op.rows])
        pdb.drain()
        start = [p["sim_time_us"] for p in pdb.stats()["partitions"]]
        for op in measured:
            pdb.ingest(op.target, [list(r) for r in op.rows])
        pdb.drain()
        end = [p["sim_time_us"] for p in pdb.stats()["partitions"]]
        return max(e - s for s, e in zip(start, end))
    finally:
        pdb.close()


def scaling_4_7(seed: int, scale: Scale, counts: list[int]) -> dict:
    frac = CostModel.calibrated().partition_overhead_frac
    serial_us = run_partitioned(seed, scale, 1)
    points = {}
    for n in counts:
        if n == 1:
            points["1"] = {"parallel_us": serial_us, "speedup": 1.0,
                           "model_speedup": 1.0, "rel_err": 0.0}
            continue
        parallel_us = run_partitioned(seed, scale, n)
        discount = (1.0 - frac) ** (n - 1)
        speedup = serial_us / parallel_us * discount
        model = n * discount
        points[str(n)] = {
            "parallel_us": parallel_us,
            "speedup": speedup,
            "model_speedup": model,
            "rel_err": abs(speedup - model) / model,
        }
    return {"serial_us": serial_us, "overhead_frac": frac, "points": points}


# ---------------------------------------------------------------------------
# Conformance smoke: partitioned digest == single-engine reference
# ---------------------------------------------------------------------------


def conformance_smoke(seed: int, scale: Scale) -> dict:
    scenario = scenario_for(seed)
    ops = make_ops(seed, scale)
    ref = run_shape(scenario, ops, "single")
    got = run_shape(scenario, ops, "inline", partitions=2)
    return {
        "reference_digest": ref.digest,
        "partitioned_digest": got.digest,
        "digests_equal": ref.digest == got.digest,
        "violations": ref.violations + got.violations,
    }


# ---------------------------------------------------------------------------
# Harness
# ---------------------------------------------------------------------------


def run_benchmarks(seed: int, scale: Scale, counts: list[int]) -> dict:
    report = {
        "meta": {
            "benchmark": "bench_linear_road",
            "seed": seed,
            "batches": scale.batches,
            "rows_per_batch": scale.rows_per_batch,
            "partition_counts": counts,
        },
        "comparison_4_6": comparison_4_6(seed, scale),
        "scaling_4_7": scaling_4_7(seed, scale, counts),
        "conformance": conformance_smoke(seed, scale),
    }
    return report


def check_thresholds(report: dict) -> list[str]:
    failures: list[str] = []
    c = report["comparison_4_6"]
    if c["sstore_vs_spark"] < 1.0:
        failures.append(
            f"§4.6 shape lost: S-Store {c['sstore']['rows_per_sec']:.0f} rows/s "
            f"< simulated Spark Streaming {c['spark_streaming']['rows_per_sec']:.0f}"
        )
    if c["sstore_vs_storm"] < 1.0:
        failures.append(
            f"§4.6 shape lost: S-Store {c['sstore']['rows_per_sec']:.0f} rows/s "
            f"< simulated Storm/Trident {c['storm_trident']['rows_per_sec']:.0f}"
        )
    s = report["scaling_4_7"]
    for n, point in s["points"].items():
        if point["rel_err"] > 0.35:
            failures.append(
                f"§4.7 model miss at {n} partitions: overhead-discounted "
                f"speedup {point['speedup']:.2f} vs model "
                f"{point['model_speedup']:.2f} ({point['rel_err']:.0%} off)"
            )
    top = max(int(n) for n in s["points"])
    if top >= 2 and s["points"][str(top)]["speedup"] <= 1.2:
        failures.append(
            f"no partition scaling: speedup {s['points'][str(top)]['speedup']:.2f} "
            f"at {top} partitions"
        )
    conf = report["conformance"]
    if not conf["digests_equal"]:
        failures.append("cross-engine divergence: partitioned digest != reference")
    if conf["violations"]:
        failures.append(f"invariant violations: {conf['violations']}")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED,
                        help="generator seed (runs are reproducible per seed)")
    parser.add_argument("--batches", type=int, default=None,
                        help="override input batch count")
    parser.add_argument("--rows-per-batch", type=int, default=None,
                        help="override rows per batch")
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized inputs and partition counts")
    parser.add_argument("--out", type=Path, help="write the JSON report here")
    parser.add_argument("--no-check", action="store_true",
                        help="emit the report without threshold enforcement")
    args = parser.parse_args(argv)

    scale = Scale(batches=12, rows_per_batch=40) if args.smoke else Scale(
        batches=60, rows_per_batch=80
    )
    if args.batches is not None:
        scale = Scale(batches=args.batches, rows_per_batch=scale.rows_per_batch)
    if args.rows_per_batch is not None:
        scale = Scale(batches=scale.batches, rows_per_batch=args.rows_per_batch)
    counts = [1, 2] if args.smoke else [1, 2, 4]

    report = run_benchmarks(args.seed, scale, counts)
    failures = [] if args.no_check else check_thresholds(report)
    report["failures"] = failures

    print(json.dumps(report, indent=2))
    if args.out:
        args.out.write_text(json.dumps(report, indent=2) + "\n")
    if failures:
        print("\nTHRESHOLD FAILURES:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
