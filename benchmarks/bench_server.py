#!/usr/bin/env python
"""Closed-loop benchmark of the network front door (wall clock).

Eight (or more) concurrent clients drive atomic-batch ingest over TCP
against a served :class:`~repro.partition.PartitionedDatabase` with real
worker processes, in two phases against the same engine:

* ``baseline`` — generous admission budgets: every request is admitted;
  measures the served closed-loop service rate and per-request latency
  percentiles (p50/p95/p99 of the successful attempt, measured at the
  client into per-thread :class:`~repro.obs.LatencyHistogram`\ s and
  bucket-merged — the observability layer's own percentile machinery).
* ``overload`` — the same clients against deliberately tiny in-flight
  budgets: the server must *reject* the excess with the typed retryable
  error (:class:`~repro.common.errors.BackpressureError`) instead of
  queueing it, and the clients retry until every batch lands.

Enforced thresholds (``--no-check`` to skip):

* the merged partitioned balance table is byte-identical to a single
  serial engine fed the same payloads — every admitted batch applied
  exactly once, every rejected batch applied exactly once *after* retry;
* zero rejections in baseline (the budgets cannot fill), >= 1 rejection
  under overload, and the server's own rejection counter equals the sum
  of rejections the clients observed (accounting consistency);
* admitted throughput under overload stays within
  ``OVERLOAD_RPS_FLOOR`` (80%) of the baseline rate — admission control
  sheds load without starving admitted work;
* resident stream rows stay bounded by stream GC (<= one closed-loop
  round of batches, independent of how many batches were ingested), with
  a positive reclaimed count — no unbounded queue growth anywhere.

``--smoke`` shrinks the run for CI; the same thresholds are enforced.
Writes ``BENCH_pr7.json`` (override with ``--out``).
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.common.clock import CostModel  # noqa: E402
from repro.common.errors import BackpressureError  # noqa: E402
from repro.common.types import ColumnType  # noqa: E402
from repro.engine import Database  # noqa: E402
from repro.obs import LatencyHistogram  # noqa: E402
from repro.partition import PartitionedDatabase, PartitionInfo  # noqa: E402
from repro.server import ReproClient, ReproServer  # noqa: E402
from repro.storage.schema import schema  # noqa: E402

CLIENTS = 8                 # >= 8 concurrent closed-loop clients (acceptance)
PARTITIONS = 2              # worker processes behind the served engine
ACCOUNTS = 256

BASELINE_BATCHES = 40       # batches per client, baseline phase
OVERLOAD_BATCHES = 25       # batches per client, overload phase
ROWS_PER_BATCH = 50

SMOKE_BASELINE_BATCHES = 10
SMOKE_OVERLOAD_BATCHES = 8
SMOKE_ROWS_PER_BATCH = 10

#: Baseline budgets: 8 clients with one outstanding request each cannot
#: fill either budget, so baseline rejections must be exactly zero.
BASELINE_INFLIGHT_PER_CONN = 8
BASELINE_INFLIGHT_TOTAL = 64
#: Overload budgets: far fewer total slots than clients, so concurrent
#: arrivals are rejected at frame-read time and retried by the client.
#: The total stays high enough that admitted work keeps the serial
#: engine saturated while the excess clients bounce off admission.
OVERLOAD_INFLIGHT_PER_CONN = 2
OVERLOAD_INFLIGHT_TOTAL = 5
RETRY_BACKOFF_S = 0.005     # closed-loop retry sleep after a rejection

#: Admitted throughput under overload must stay within 20% of baseline:
#: admission control sheds the excess, it does not starve admitted work.
OVERLOAD_RPS_FLOOR = 0.8


def lcg(seed: int = 0x5EED):
    """Deterministic 31-bit linear congruential generator."""
    state = seed
    while True:
        state = (state * 1103515245 + 12345) % (1 << 31)
        yield state


def server_deploy(db: Database, part: PartitionInfo) -> None:
    """The served workload: a keyed input stream feeding a keyed balance
    table through a one-stage workflow.  ``absorb`` is additive, so the
    final table is independent of the order concurrent clients' batches
    interleave in — the property that lets a serial reference engine
    check the raced run."""
    db.create_stream(
        schema("sfeed", ("acct", ColumnType.BIGINT), ("amt", ColumnType.INTEGER))
    )
    db.create_table(
        schema(
            "sbal",
            ("acct", ColumnType.BIGINT, False),
            ("total", ColumnType.BIGINT, False),
            primary_key=["acct"],
        )
    )
    db.executemany(
        "INSERT INTO sbal (acct, total) VALUES (?, ?)",
        ((a, 0) for a in range(ACCOUNTS) if part.owns(a)),
    )

    @db.register_procedure
    def absorb(ctx, batch):
        counts: dict = {}
        for acct, amt in batch.rows:
            counts[acct] = counts.get(acct, 0) + amt
        for acct, total in counts.items():
            ctx.execute(
                "UPDATE sbal SET total = total + ? WHERE acct = ?", (total, acct)
            )

    db.create_workflow("sflow", [("sfeed", "absorb")])


def make_payloads(clients: int, batches: int, rows_per_batch: int, seed: int):
    """One deterministic payload list per client."""
    rng = lcg(seed)
    return [
        [
            [(next(rng) % ACCOUNTS, 1 + next(rng) % 9) for _ in range(rows_per_batch)]
            for _ in range(batches)
        ]
        for _ in range(clients)
    ]


def latency_summary(hist: LatencyHistogram) -> dict:
    """Report shape kept from the pre-histogram harness; the percentiles
    now come from one merged :class:`~repro.obs.LatencyHistogram` (the
    same machinery ``stats()["obs"]`` reports from) instead of ad-hoc
    sorted-list index math."""
    return {
        "requests": hist.count,
        "p50_ms": hist.percentile(0.50) / 1e3,
        "p95_ms": hist.percentile(0.95) / 1e3,
        "p99_ms": hist.percentile(0.99) / 1e3,
        "max_ms": (hist.max_us or 0.0) / 1e3,
    }


def run_closed_loop(address: tuple[str, int], payload_sets) -> dict:
    """Drive one phase: one thread + one :class:`ReproClient` per payload
    set, each closed-loop (one outstanding request), retrying every
    typed-retryable rejection until the batch lands.  A rejected batch
    was never executed, so the retry applies it exactly once."""
    n = len(payload_sets)
    start_gate = threading.Barrier(n + 1)
    results = [{"hist": LatencyHistogram(), "rejections": 0} for _ in range(n)]
    errors: list[BaseException] = []

    def worker(payloads, out) -> None:
        try:
            with ReproClient(*address) as client:
                start_gate.wait()
                for rows in payloads:
                    while True:
                        t0 = time.perf_counter()
                        try:
                            client.ingest("sfeed", rows)
                            out["hist"].observe((time.perf_counter() - t0) * 1e6)
                            break
                        except BackpressureError:
                            out["rejections"] += 1
                            time.sleep(RETRY_BACKOFF_S)
        except BaseException as exc:  # surfaced as a benchmark failure
            errors.append(exc)
            raise

    threads = [
        threading.Thread(target=worker, args=(payloads, out), daemon=True)
        for payloads, out in zip(payload_sets, results)
    ]
    for t in threads:
        t.start()
    start_gate.wait()
    t0 = time.perf_counter()
    for t in threads:
        t.join()
    wall_s = time.perf_counter() - t0
    if errors:
        raise RuntimeError(f"client thread failed: {errors[0]!r}") from errors[0]

    # per-client histograms merge exactly (shared fixed bucket layout)
    merged = LatencyHistogram.merged(out["hist"].snapshot() for out in results)
    total_rows = sum(len(rows) for payloads in payload_sets for rows in payloads)
    return {
        "clients": n,
        "batches": sum(len(p) for p in payload_sets),
        "rows": total_rows,
        "wall_s": wall_s,
        "rows_per_sec": total_rows / wall_s if wall_s else 0.0,
        "rejections": sum(out["rejections"] for out in results),
        "latency": latency_summary(merged),
    }


def serve_phase(pdb, payload_sets, *, per_conn: int, total: int) -> dict:
    """One server lifecycle around one closed-loop phase; the server's
    own counters are captured over the wire before shutdown."""
    server = ReproServer(
        pdb, max_inflight_per_conn=per_conn, max_inflight_total=total
    ).start()
    try:
        phase = run_closed_loop(server.address, payload_sets)
        with ReproClient(*server.address) as client:
            client.drain()
            phase["server"] = client.stats()["server"]
        return phase
    finally:
        server.close()


def run_benchmark(
    *,
    clients: int = CLIENTS,
    baseline_batches: int = BASELINE_BATCHES,
    overload_batches: int = OVERLOAD_BATCHES,
    rows_per_batch: int = ROWS_PER_BATCH,
) -> dict:
    baseline_payloads = make_payloads(clients, baseline_batches, rows_per_batch, 53)
    overload_payloads = make_payloads(clients, overload_batches, rows_per_batch, 59)

    # Serial reference first (no threads alive yet): the same payloads
    # through one engine define the expected final balance table.
    single = Database(
        cost=CostModel.calibrated(),
        bootstrap=lambda db: server_deploy(db, PartitionInfo(0, 1)),
    )
    for payloads in baseline_payloads + overload_payloads:
        for rows in payloads:
            single.ingest("sfeed", rows)
    single_state = sorted(single.execute("SELECT acct, total FROM sbal").rows)

    # Fork the worker processes while this process is still single-threaded;
    # every server/client thread lives strictly after this point.
    pdb = PartitionedDatabase(
        PARTITIONS,
        server_deploy,
        partition_keys={"sfeed": "acct", "sbal": "acct"},
        workers="process",
    )
    try:
        baseline = serve_phase(
            pdb,
            baseline_payloads,
            per_conn=BASELINE_INFLIGHT_PER_CONN,
            total=BASELINE_INFLIGHT_TOTAL,
        )
        overload = serve_phase(
            pdb,
            overload_payloads,
            per_conn=OVERLOAD_INFLIGHT_PER_CONN,
            total=OVERLOAD_INFLIGHT_TOTAL,
        )

        identical = pdb.merged_table_rows("sbal") == single_state
        stats = pdb.stats()
        resident = sum(
            p["streaming"]["streams"]["sfeed"]["rows"] for p in stats["partitions"]
        )
        reclaimed = sum(
            p["streaming"]["streams"]["sfeed"]["rows_reclaimed"]
            for p in stats["partitions"]
        )
    finally:
        pdb.close()

    baseline_rps = baseline["rows_per_sec"]
    overload_rps = overload["rows_per_sec"]
    return {
        "benchmark": "pr7-server",
        "config": {
            "clients": clients,
            "partitions": PARTITIONS,
            "rows_per_batch": rows_per_batch,
            "baseline_inflight": [BASELINE_INFLIGHT_PER_CONN, BASELINE_INFLIGHT_TOTAL],
            "overload_inflight": [OVERLOAD_INFLIGHT_PER_CONN, OVERLOAD_INFLIGHT_TOTAL],
        },
        "results": {"baseline": baseline, "overload": overload},
        "derived": {
            "identical_state": identical,
            "baseline_rows_per_sec": baseline_rps,
            "overload_rows_per_sec_admitted": overload_rps,
            "overload_over_baseline_rps": (
                overload_rps / baseline_rps if baseline_rps else 0.0
            ),
            "baseline_rejections": baseline["rejections"],
            "overload_rejections": overload["rejections"],
            "rejection_accounting_consistent": (
                overload["server"]["rejected"]["total"] == overload["rejections"]
                and baseline["server"]["rejected"]["total"] == baseline["rejections"]
            ),
            "p99_ms_baseline": baseline["latency"]["p99_ms"],
            "p99_ms_overload": overload["latency"]["p99_ms"],
            "stream_resident_rows": resident,
            "stream_reclaimed_rows": reclaimed,
            "stream_resident_bound": clients * rows_per_batch,
        },
    }


def check_thresholds(report: dict) -> list[str]:
    """The PR's acceptance criteria; returns a list of failure messages."""
    failures = []
    derived = report["derived"]
    if not derived["identical_state"]:
        failures.append(
            "served partitioned run diverged from the serial reference "
            "(merged sbal rows mismatch — a batch was lost or applied twice)"
        )
    if derived["baseline_rejections"] != 0:
        failures.append(
            f"{derived['baseline_rejections']} rejection(s) in the baseline "
            f"phase (budgets cannot fill with one outstanding request per "
            f"client — expected exactly 0)"
        )
    if derived["overload_rejections"] < 1:
        failures.append(
            "overload phase produced no rejections — admission control "
            "never engaged (budgets too generous for the client count?)"
        )
    if not derived["rejection_accounting_consistent"]:
        failures.append(
            "server rejection counters disagree with the rejections the "
            "clients observed"
        )
    if derived["overload_over_baseline_rps"] < OVERLOAD_RPS_FLOOR:
        failures.append(
            f"admitted throughput under overload is only "
            f"{derived['overload_over_baseline_rps']:.2f}x the baseline rate "
            f"(need >= {OVERLOAD_RPS_FLOOR}x: rejection must be cheap)"
        )
    if derived["p99_ms_baseline"] <= 0.0:
        failures.append("no baseline latency samples were collected")
    if derived["stream_resident_rows"] > derived["stream_resident_bound"]:
        failures.append(
            f"{derived['stream_resident_rows']} stream rows still resident "
            f"after drain (bound: {derived['stream_resident_bound']} — one "
            f"closed-loop round); stream GC is not keeping up"
        )
    if derived["stream_reclaimed_rows"] <= 0:
        failures.append("stream GC reclaimed nothing over the whole run")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--clients", type=int, default=CLIENTS,
                        help=f"concurrent closed-loop clients (default {CLIENTS})")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny batch counts for CI: same thresholds, fast run")
    parser.add_argument("--out", type=Path,
                        default=Path(__file__).resolve().parent.parent / "BENCH_pr7.json",
                        help="output JSON path (default: repo-root BENCH_pr7.json)")
    parser.add_argument("--no-check", action="store_true",
                        help="skip acceptance-threshold enforcement")
    args = parser.parse_args(argv)

    sizes = dict(clients=args.clients)
    if args.smoke:
        sizes.update(
            baseline_batches=SMOKE_BASELINE_BATCHES,
            overload_batches=SMOKE_OVERLOAD_BATCHES,
            rows_per_batch=SMOKE_ROWS_PER_BATCH,
        )
    report = run_benchmark(**sizes)
    args.out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")

    derived = report["derived"]
    base = report["results"]["baseline"]
    over = report["results"]["overload"]
    print(f"wrote {args.out}")
    print(f"  baseline              : {base['rows_per_sec']:,.0f} rows/s from "
          f"{base['clients']} clients ({base['batches']} batches, "
          f"{base['rejections']} rejections)")
    print(f"  baseline latency      : p50={base['latency']['p50_ms']:.2f}ms "
          f"p95={base['latency']['p95_ms']:.2f}ms "
          f"p99={base['latency']['p99_ms']:.2f}ms")
    print(f"  overload (admitted)   : {over['rows_per_sec']:,.0f} rows/s "
          f"({derived['overload_over_baseline_rps']:.2f}x baseline, "
          f"{over['rejections']} rejections, accounting consistent: "
          f"{derived['rejection_accounting_consistent']})")
    print(f"  overload latency      : p50={over['latency']['p50_ms']:.2f}ms "
          f"p95={over['latency']['p95_ms']:.2f}ms "
          f"p99={over['latency']['p99_ms']:.2f}ms")
    print(f"  state                 : identical to serial reference: "
          f"{derived['identical_state']}")
    print(f"  stream GC             : {derived['stream_reclaimed_rows']} rows "
          f"reclaimed, {derived['stream_resident_rows']} resident "
          f"(bound {derived['stream_resident_bound']})")

    if not args.no_check:
        failures = check_thresholds(report)
        if failures:
            for f in failures:
                print(f"THRESHOLD FAILED: {f}", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
