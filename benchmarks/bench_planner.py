#!/usr/bin/env python
"""Planner benchmark: compiled expressions and cost-based join selection.

Three measurements on a fraud-style workload (a transaction stream
joined against a customer dimension table — the paper's leaderboard
workloads all have this stream-to-table shape):

* **compiled vs interpreted predicates** — the same WHERE clause
  evaluated over the same rows by the legacy closure-tree interpreter
  (:mod:`repro.sql.expressions`) and by the code-generating compiler
  (:mod:`repro.sql.compile`) that every plan now uses;
* **hash join vs (forced) index-nested-loop** on an equi-join whose
  inner column has **no index** — the shape the cost model exists for:
  the legacy planner rescanned the inner table per outer row, the cost
  model builds a hash table once;
* **differential correctness** — every join strategy (``cost``,
  ``hash``, ``merge``, ``bnl``, ``inl``) must return the identical row
  *set* for the same queries (row order is not a SQL promise).

Enforced thresholds (``--no-check`` to skip; CI runs ``--smoke``):

* compiled predicate throughput >= 1.5x interpreted (>= 1.15x under
  ``--smoke``, where short runs meet noisy CI boxes);
* the cost-based hash join beats the forced nested-loop join on the
  unindexed equi-join (wall clock, best-of-N);
* all join strategies agree exactly (a mismatch fails the run even
  with ``--no-check`` — it is a correctness bug, not a perf miss).

Writes ``BENCH_pr9.json`` (override with ``--out``).
"""

from __future__ import annotations

import argparse
import gc
import json
import sys
import time
from pathlib import Path

_HERE = Path(__file__).resolve().parent
_SRC = _HERE.parent / "src"
for entry in (str(_SRC), str(_HERE)):
    if entry not in sys.path:
        sys.path.insert(0, entry)

from repro.common.types import ColumnType as T  # noqa: E402
from repro.engine import Database  # noqa: E402
from repro.sql.compile import compile_predicate  # noqa: E402
from repro.sql.expressions import Scope, compile_expr as interpret_expr, predicate  # noqa: E402
from repro.sql.parser import parse_expression  # noqa: E402
from repro.storage.schema import schema  # noqa: E402

PREDICATE_ROWS = 20_000
PREDICATE_PASSES = 8
CUSTOMERS = 400
TXNS = 8_000
JOIN_REPEATS = 5
TRIALS = 7

SMOKE_PREDICATE_ROWS = 6_000
SMOKE_PREDICATE_PASSES = 4
SMOKE_CUSTOMERS = 150
SMOKE_TXNS = 2_000
SMOKE_JOIN_REPEATS = 3
SMOKE_TRIALS = 5

#: acceptance floors (ISSUE 9)
COMPILED_SPEEDUP_MIN = 1.5
COMPILED_SPEEDUP_MIN_SMOKE = 1.15

#: the fraud-filter WHERE clause both evaluators run; deliberately a mix
#: of comparison, boolean branching, arithmetic, and a string equality —
#: the per-row dispatch cost the compiler removes shows on all of them
FRAUD_PREDICATE = (
    "amount > 900.0 AND status = 'ok' "
    "AND (region = 'emea' OR region = 'apac') "
    "AND amount * 1.02 + 5.0 < 1900.0"
)

JOIN_STRATEGIES = ("cost", "hash", "merge", "bnl", "inl")


def lcg(seed: int = 0x5EED):
    """Deterministic row generator (no stdlib RNG: runs must reproduce)."""
    state = seed

    def next_u32() -> int:
        nonlocal state
        state = (1103515245 * state + 12345) % (1 << 31)
        return state

    return next_u32


def _best_of(fn, trials: int) -> float:
    best = float("inf")
    for _ in range(trials):
        gc.collect()
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


# ---------------------------------------------------------------------------
# Part 1: compiled vs interpreted predicate throughput
# ---------------------------------------------------------------------------

def bench_predicates(rows_n: int, passes: int, trials: int) -> dict:
    scope = Scope()
    scope.add_source(
        "txns",
        schema(
            "txns",
            ("txn_id", T.BIGINT, False),
            ("amount", T.FLOAT),
            ("status", T.VARCHAR),
            ("region", T.VARCHAR),
        ),
    )
    expr = parse_expression(FRAUD_PREDICATE)
    interpreted = predicate(interpret_expr(expr, scope))
    compiled = compile_predicate(expr, scope)

    rnd = lcg()
    statuses = ("ok", "held", "ok", "ok")  # mostly ok, like real traffic
    regions = ("emea", "apac", "amer", None)
    rows = [
        (
            i,
            float(rnd() % 2000),
            statuses[rnd() % 4],
            regions[rnd() % 4],
        )
        for i in range(rows_n)
    ]

    # both evaluators must agree row-for-row before we time anything
    params = ()
    mismatches = sum(
        1 for row in rows if interpreted(row, params) != compiled(row, params)
    )
    selected = sum(1 for row in rows if compiled(row, params))

    def run_interpreted():
        for _ in range(passes):
            n = 0
            for row in rows:
                if interpreted(row, params):
                    n += 1

    def run_compiled():
        for _ in range(passes):
            n = 0
            for row in rows:
                if compiled(row, params):
                    n += 1

    t_int = _best_of(run_interpreted, trials)
    t_cmp = _best_of(run_compiled, trials)
    evaluations = rows_n * passes
    return {
        "predicate": FRAUD_PREDICATE,
        "rows": rows_n,
        "passes": passes,
        "selected_rows": selected,
        "mismatches": mismatches,
        "interpreted_rows_per_sec": evaluations / t_int,
        "compiled_rows_per_sec": evaluations / t_cmp,
        "speedup_x": t_int / t_cmp,
    }


# ---------------------------------------------------------------------------
# Part 2 + 3: join algorithms on the stream-to-table fraud join
# ---------------------------------------------------------------------------

def _build_fraud_db(customers: int, txns: int) -> Database:
    db = Database()
    db.create_table(
        schema(
            "customers",
            ("cust_pk", T.BIGINT, False),
            ("cust_ref", T.BIGINT, False),  # the join column: NO index
            ("tier", T.VARCHAR),
            primary_key=["cust_pk"],
        )
    )
    db.create_table(
        schema(
            "txns",
            ("txn_id", T.BIGINT, False),
            ("cust_ref", T.BIGINT, False),
            ("amount", T.FLOAT),
            primary_key=["txn_id"],
        )
    )
    rnd = lcg(0xFADE)
    tiers = ("gold", "silver", "bronze")
    db.executemany(
        "INSERT INTO customers VALUES (?, ?, ?)",
        [(i, i, tiers[rnd() % 3]) for i in range(customers)],
    )
    db.executemany(
        "INSERT INTO txns VALUES (?, ?, ?)",
        [(i, rnd() % customers, float(rnd() % 1000)) for i in range(txns)],
    )
    db.execute("ANALYZE")
    return db


#: cust_ref has no index, so the legacy/INL plan degrades to a per-outer
#: rescan of customers — exactly what the cost model replaces with a
#: one-pass hash build.
FRAUD_JOIN = (
    "SELECT t.txn_id, c.tier, t.amount FROM txns t "
    "JOIN customers c ON c.cust_ref = t.cust_ref WHERE t.amount > 500.0"
)

#: the differential queries: inner/left joins, residual ON conjuncts,
#: aggregates over a join, and a join with an indexed key (so forced
#: ``inl`` exercises the true index-nested-loop too)
DIFFERENTIAL_QUERIES = (
    FRAUD_JOIN,
    "SELECT t.txn_id, c.tier FROM txns t JOIN customers c ON c.cust_ref = t.cust_ref "
    "AND c.tier = 'gold'",
    "SELECT c.cust_pk, t.amount FROM customers c LEFT JOIN txns t "
    "ON t.cust_ref = c.cust_ref AND t.amount > 900.0",
    "SELECT t.txn_id, c.tier FROM txns t JOIN customers c ON c.cust_pk = t.cust_ref "
    "WHERE t.txn_id < 500",
    "SELECT c.tier, COUNT(*), SUM(t.amount) FROM txns t "
    "JOIN customers c ON c.cust_ref = t.cust_ref GROUP BY c.tier",
)


def _set_strategy(db: Database, strategy: str) -> None:
    db.force_join = None if strategy == "cost" else strategy


def bench_joins(customers: int, txns: int, repeats: int, trials: int) -> dict:
    db = _build_fraud_db(customers, txns)

    def timed(strategy: str) -> float:
        _set_strategy(db, strategy)
        db.prepare(FRAUD_JOIN)  # plan outside the timed region (plan-once)

        def run():
            for _ in range(repeats):
                db.execute(FRAUD_JOIN)

        return _best_of(run, trials)

    t_hash = timed("cost")  # cost model picks hash on the unindexed key
    hash_plan = db.explain(FRAUD_JOIN)["joins"][0]["op"]
    t_inl = timed("inl")  # no usable index -> legacy per-outer rescan
    inl_plan = db.explain(FRAUD_JOIN)["joins"][0]["op"]
    _set_strategy(db, "cost")

    return {
        "query": FRAUD_JOIN,
        "customers": customers,
        "txns": txns,
        "repeats": repeats,
        "cost_based_op": hash_plan,
        "forced_inl_op": inl_plan,
        "hash_join_sec": t_hash,
        "forced_inl_sec": t_inl,
        "hash_vs_inl_speedup_x": t_inl / t_hash,
    }


def check_differential(customers: int, txns: int) -> dict:
    """Every strategy must produce the identical row multiset per query."""
    db = _build_fraud_db(customers, txns)
    mismatches = []
    for sql in DIFFERENTIAL_QUERIES:
        reference = None
        for strategy in JOIN_STRATEGIES:
            _set_strategy(db, strategy)
            rows = sorted(db.execute(sql).rows, key=repr)
            if reference is None:
                reference = rows
            elif rows != reference:
                mismatches.append({"query": sql, "strategy": strategy})
    _set_strategy(db, "cost")
    return {
        "queries": len(DIFFERENTIAL_QUERIES),
        "strategies": list(JOIN_STRATEGIES),
        "mismatches": mismatches,
    }


# ---------------------------------------------------------------------------
# Harness
# ---------------------------------------------------------------------------

def run_benchmark(args) -> dict:
    if args.smoke:
        pred_rows, passes = SMOKE_PREDICATE_ROWS, SMOKE_PREDICATE_PASSES
        customers, txns = SMOKE_CUSTOMERS, SMOKE_TXNS
        repeats, trials = SMOKE_JOIN_REPEATS, SMOKE_TRIALS
    else:
        pred_rows, passes = PREDICATE_ROWS, PREDICATE_PASSES
        customers, txns = CUSTOMERS, TXNS
        repeats, trials = JOIN_REPEATS, TRIALS

    predicates = bench_predicates(pred_rows, passes, trials)
    joins = bench_joins(customers, txns, repeats, trials)
    differential = check_differential(min(customers, 120), min(txns, 1_500))

    floor = COMPILED_SPEEDUP_MIN_SMOKE if args.smoke else COMPILED_SPEEDUP_MIN
    return {
        "meta": {
            "benchmark": "planner",
            "smoke": args.smoke,
            "thresholds": {
                "compiled_speedup_min_x": floor,
                "hash_beats_forced_inl": True,
                "differential_mismatches": 0,
            },
        },
        "results": {
            "predicates": predicates,
            "joins": joins,
            "differential": differential,
        },
    }


def check_thresholds(report: dict) -> list[str]:
    failures = []
    results = report["results"]
    thresholds = report["meta"]["thresholds"]

    pred = results["predicates"]
    if pred["mismatches"]:
        failures.append(
            f"compiled and interpreted predicates disagree on "
            f"{pred['mismatches']} row(s)"
        )
    floor = thresholds["compiled_speedup_min_x"]
    if pred["speedup_x"] < floor:
        failures.append(
            f"compiled predicate speedup {pred['speedup_x']:.2f}x "
            f"below the {floor}x floor"
        )

    joins = results["joins"]
    if joins["hash_vs_inl_speedup_x"] <= 1.0:
        failures.append(
            f"cost-based hash join ({joins['hash_join_sec']:.4f}s) did not "
            f"beat the forced nested loop ({joins['forced_inl_sec']:.4f}s) "
            f"on the unindexed equi-join"
        )
    if joins["cost_based_op"] != "HashJoin":
        failures.append(
            f"cost model picked {joins['cost_based_op']} instead of HashJoin "
            f"on the unindexed equi-join"
        )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small sizes for CI; smoke-tier thresholds")
    parser.add_argument("--out", type=Path,
                        default=_HERE.parent / "BENCH_pr9.json",
                        help="output JSON path (default: repo-root BENCH_pr9.json)")
    parser.add_argument("--no-check", action="store_true",
                        help="skip perf-threshold enforcement "
                             "(correctness mismatches still fail)")
    args = parser.parse_args(argv)

    report = run_benchmark(args)
    args.out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")

    pred = report["results"]["predicates"]
    joins = report["results"]["joins"]
    diff = report["results"]["differential"]
    print(f"wrote {args.out}")
    print(f"  interpreted predicate : {pred['interpreted_rows_per_sec']:,.0f} rows/s")
    print(f"  compiled predicate    : {pred['compiled_rows_per_sec']:,.0f} rows/s "
          f"({pred['speedup_x']:.2f}x, floor "
          f"{report['meta']['thresholds']['compiled_speedup_min_x']}x)")
    print(f"  cost-based join       : {joins['cost_based_op']} "
          f"{joins['hash_join_sec']:.4f}s for {joins['repeats']} runs")
    print(f"  forced nested loop    : {joins['forced_inl_op']} "
          f"{joins['forced_inl_sec']:.4f}s "
          f"({joins['hash_vs_inl_speedup_x']:.1f}x slower)")
    print(f"  differential          : {diff['queries']} queries x "
          f"{len(diff['strategies'])} strategies, "
          f"{len(diff['mismatches'])} mismatch(es)")

    # a differential mismatch is a correctness bug: fails even with --no-check
    if diff["mismatches"]:
        print("\nDIFFERENTIAL MISMATCHES:", file=sys.stderr)
        for m in diff["mismatches"]:
            print(f"  - {m['strategy']}: {m['query']}", file=sys.stderr)
        return 1
    if not args.no_check:
        failures = check_thresholds(report)
        if failures:
            print("\nTHRESHOLD FAILURES:", file=sys.stderr)
            for failure in failures:
                print(f"  - {failure}", file=sys.stderr)
            return 1
        print("  all planner thresholds passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
