#!/usr/bin/env python
"""Deterministic micro-benchmark harness for the compile-once SQL pipeline.

Every workload runs against a fresh :class:`repro.engine.Database` with the
calibrated :class:`~repro.common.clock.CostModel`; throughput and latency
are computed from **simulated** time (see ``repro/common/clock.py`` for why),
so results are exact, machine-independent, and reproducible bit-for-bit.

Workloads
=========
* ``bulk_insert``       — load N rows through one cached prepared INSERT.
* ``point_lookup_index``— primary-key point queries (IndexScan).
* ``point_lookup_seqscan`` — the same selectivity on an unindexed column
  (SeqScan), the paper's §4.6.3 "lookup vs. table scan" contrast.
* ``range_scan``        — ordered-index range queries (IndexRangeScan).
* ``plan_cache``        — one statement executed R times: cold plan cost
  vs. cache-hit cost and the cache hit rate.
* ``procedure_call``    — a Voter-style increment stored procedure versus
  the same two statements as ad-hoc auto-commit SQL (the paper's §2/§3.1
  stored-procedure-as-transaction premise: pinned compile-once plans plus
  one transaction boundary instead of two).
* ``abort_rate``        — explicit multi-statement transactions with a
  deterministic fraction aborting; measures undo-replay cost and checks
  that only committed rows survive.
* ``streaming_pipeline`` — a Voter-style 3-stage workflow DAG (ingest
  procedure → owned-sliding-window aggregate → leaderboard ranking) fed
  atomic batches through ``db.ingest``, with an EE audit trigger on the
  input stream; measures per-batch pipeline cost, counts EE/PE trigger
  firings exactly, and bounds the trigger overhead fraction (§3.2.3).

The harness writes ``BENCH_pr3.json`` (override with ``--out``) and
(unless ``--no-check``) enforces the acceptance thresholds: point lookup
≥ 10× cheaper than the equivalent seq scan, plan-cache hit rate ≥ 99% on
the repeated-statement workload, cache hits cheaper than cold plans, the
procedure path no more expensive than the equivalent ad-hoc auto-commit
statements, abort leaving exactly the committed rows behind, exact EE/PE
trigger fire counts on the streaming pipeline with trigger overhead below
the threshold, and an end-to-end-consistent leaderboard.

``--smoke`` shrinks every workload to tiny row counts for CI: the same
thresholds are enforced (row-count-gated ones skip themselves), so a perf
or consistency regression fails the PR without a long benchmark run.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.common.clock import CostModel, Stopwatch  # noqa: E402
from repro.common.types import ColumnType  # noqa: E402
from repro.engine import Database  # noqa: E402
from repro.storage.schema import schema  # noqa: E402

DEFAULT_ROWS = 10_000
POINT_QUERIES = 2_000
SEQSCAN_QUERIES = 50
RANGE_QUERIES = 200
CACHE_REPEATS = 5_000
GROUPS = 100  # distinct values of the ``grp`` column
VOTE_OPS = 2_000
CONTESTANTS = 8
ABORT_TXNS = 1_000
ABORT_EVERY = 10   # every Nth transaction aborts
ABORT_BATCH = 5    # statements per transaction
STREAM_BATCHES = 50        # atomic batches through the pipeline DAG
STREAM_BATCH_ROWS = 100    # tuples per atomic batch
TRIGGER_OVERHEAD_MAX = 0.20  # EE+PE trigger time as a fraction of pipeline time

#: ``--smoke`` sizes: tiny row counts so CI enforces thresholds quickly.
SMOKE_ROWS = 2_000
SMOKE_STREAM_BATCHES = 8
SMOKE_STREAM_BATCH_ROWS = 20


def lcg(seed: int = 0x5EED):
    """Deterministic 31-bit linear congruential generator."""
    state = seed
    while True:
        state = (state * 1103515245 + 12345) % (1 << 31)
        yield state


def create_bench_table(db: Database) -> None:
    """The one benchmark table shape every workload runs against."""
    db.create_table(
        schema(
            "bench",
            ("id", ColumnType.BIGINT, False),
            ("grp", ColumnType.INTEGER, False),
            ("val", ColumnType.FLOAT),
            ("name", ColumnType.VARCHAR, False),
            primary_key=["id"],
        )
    )
    db.create_index("bench", "bench_grp_ord", ["grp"], ordered=True)


def make_db(rows: int) -> Database:
    """Fresh database with the benchmark table loaded (not measured)."""
    db = Database(cost=CostModel.calibrated())
    create_bench_table(db)
    load_rows(db, rows)
    return db


def row_values(i: int, rand: int) -> tuple:
    return (i, i % GROUPS, float(rand % 10_007) / 7.0, f"name_{i:08d}")


def load_rows(db: Database, rows: int) -> None:
    rng = lcg()
    db.executemany(
        "INSERT INTO bench (id, grp, val, name) VALUES (?, ?, ?, ?)",
        (row_values(i, next(rng)) for i in range(rows)),
    )


# ---------------------------------------------------------------------------
# Workloads — each returns a result dict for the report
# ---------------------------------------------------------------------------


def bench_bulk_insert(rows: int) -> dict:
    db = Database(cost=CostModel.calibrated())
    create_bench_table(db)
    watch = Stopwatch(db.clock)
    load_rows(db, rows)
    elapsed = watch.elapsed_us
    return {
        "rows": rows,
        "sim_elapsed_us": elapsed,
        "rows_per_sec_sim": watch.throughput_per_sec(rows),
        "plan_cache": db.plan_cache.stats(),
    }


def _run_lookup_workload(db: Database, rows: int, *, sql: str, param_fn,
                         queries: int, seed: int) -> dict:
    """One-row-selectivity lookup workload; the SQL text decides the access
    path (indexed vs. unindexed column)."""
    db.prepare(sql)  # exclude the cold plan from the per-op average
    rng = lcg(seed)
    watch = Stopwatch(db.clock)
    events_before = db.clock.snapshot_events()
    hits = 0
    for _ in range(queries):
        key = next(rng) % rows
        result = db.execute(sql, (param_fn(key),))
        hits += len(result)
    elapsed = watch.elapsed_us
    delta = db.clock.snapshot_events() - events_before
    assert hits == queries, "every lookup must find exactly one row"
    return {
        "queries": queries,
        "rows_returned": hits,
        "sim_elapsed_us": elapsed,
        "avg_us_per_query_sim": elapsed / queries,
        "index_probes": delta.get("index_probes", 0),
        "rows_scanned": delta.get("rows_scanned", 0),
    }


def bench_point_lookup_index(db: Database, rows: int) -> dict:
    return _run_lookup_workload(
        db, rows,
        sql="SELECT id, grp, val, name FROM bench WHERE id = ?",
        param_fn=lambda key: key,
        queries=POINT_QUERIES, seed=7,
    )


def bench_point_lookup_seqscan(db: Database, rows: int) -> dict:
    # Same one-row selectivity, but ``name`` has no index -> full scan.
    return _run_lookup_workload(
        db, rows,
        sql="SELECT id, grp, val, name FROM bench WHERE name = ?",
        param_fn=lambda key: f"name_{key:08d}",
        queries=SEQSCAN_QUERIES, seed=11,
    )


def bench_range_scan(db: Database, rows: int) -> dict:
    sql = "SELECT id, val FROM bench WHERE grp >= ? AND grp <= ?"
    db.prepare(sql)
    rng = lcg(13)
    watch = Stopwatch(db.clock)
    events_before = db.clock.snapshot_events()
    returned = 0
    for _ in range(RANGE_QUERIES):
        lo = next(rng) % (GROUPS - 5)
        result = db.execute(sql, (lo, lo + 4))
        returned += len(result)
    elapsed = watch.elapsed_us
    delta = db.clock.snapshot_events() - events_before
    return {
        "queries": RANGE_QUERIES,
        "rows_returned": returned,
        "sim_elapsed_us": elapsed,
        "avg_us_per_query_sim": elapsed / RANGE_QUERIES,
        "index_probes": delta.get("index_probes", 0),
        "rows_scanned": delta.get("rows_scanned", 0),
    }


def bench_plan_cache(db: Database, rows: int) -> dict:
    # Distinct SQL text so the first execution is genuinely cold.
    sql = "SELECT grp, val FROM bench WHERE id = ?"
    cache_before = dict(db.plan_cache.stats())
    t0 = db.clock.now_us
    db.execute(sql, (1,))
    cold_us = db.clock.now_us - t0

    t1 = db.clock.now_us
    rng = lcg(17)
    for _ in range(CACHE_REPEATS - 1):
        db.execute(sql, (next(rng) % rows,))
    warm_us = (db.clock.now_us - t1) / (CACHE_REPEATS - 1)

    cache_after = db.plan_cache.stats()
    hits = cache_after["hits"] - cache_before["hits"]
    misses = cache_after["misses"] - cache_before["misses"]
    return {
        "repeats": CACHE_REPEATS,
        "cache_hits": hits,
        "cache_misses": misses,
        "hit_rate": hits / (hits + misses),
        "cold_exec_us_sim": cold_us,
        "warm_exec_us_sim": warm_us,
        "cold_over_warm": cold_us / warm_us if warm_us else float("inf"),
    }


VOTE_SELECT = "SELECT num_votes FROM votes WHERE contestant_id = ?"
VOTE_UPDATE = "UPDATE votes SET num_votes = num_votes + 1 WHERE contestant_id = ?"


def make_voter_db() -> Database:
    db = Database(cost=CostModel.calibrated())
    db.create_table(
        schema(
            "votes",
            ("contestant_id", ColumnType.INTEGER, False),
            ("num_votes", ColumnType.BIGINT, False),
            primary_key=["contestant_id"],
        )
    )
    db.executemany(
        "INSERT INTO votes (contestant_id, num_votes) VALUES (?, ?)",
        ((c, 0) for c in range(CONTESTANTS)),
    )
    return db


def bench_procedure_call() -> dict:
    """Voter-style increment: stored procedure vs. ad-hoc auto-commit SQL.

    Identical logical work per vote (one pk SELECT + one pk UPDATE); the
    procedure path pays one txn begin/commit and zero plan/cache lookups
    (pinned statements), the ad-hoc path pays two implicit transactions
    and two plan-cache hits."""
    adhoc = make_voter_db()
    adhoc.prepare(VOTE_SELECT)  # exclude cold plans from both averages
    adhoc.prepare(VOTE_UPDATE)
    rng = lcg(19)
    watch = Stopwatch(adhoc.clock)
    for _ in range(VOTE_OPS):
        cid = next(rng) % CONTESTANTS
        adhoc.execute(VOTE_SELECT, (cid,))
        adhoc.execute(VOTE_UPDATE, (cid,))
    adhoc_us = watch.elapsed_us / VOTE_OPS

    proc = make_voter_db()

    @proc.register_procedure("vote")
    def vote(ctx, contestant_id):
        ctx.execute(VOTE_UPDATE, (contestant_id,))
        return ctx.execute(VOTE_SELECT, (contestant_id,)).scalar()

    proc.call("vote", 0)  # warm-up: plans + pins both statements
    plans_before = proc.clock.events["sql_plan"]
    rng = lcg(19)
    watch = Stopwatch(proc.clock)
    for _ in range(VOTE_OPS):
        proc.call("vote", next(rng) % CONTESTANTS)
    proc_us = watch.elapsed_us / VOTE_OPS
    steady_state_plans = proc.clock.events["sql_plan"] - plans_before
    votes = proc.execute("SELECT sum(num_votes) FROM votes").scalar()
    assert votes == VOTE_OPS + 1, "every committed vote must be visible"
    return {
        "ops": VOTE_OPS,
        "adhoc_us_per_vote_sim": adhoc_us,
        "procedure_us_per_vote_sim": proc_us,
        "procedure_over_adhoc": proc_us / adhoc_us,
        "plans_in_steady_state": steady_state_plans,
        "procedure_calls": proc.stats()["transactions"]["procedure_calls"],
    }


def bench_abort_rate() -> dict:
    """Multi-statement transactions with every ``ABORT_EVERY``-th aborting:
    undo-replay cost versus commit cost, plus a consistency check that
    exactly the committed rows survive."""
    db = Database(cost=CostModel.calibrated())
    db.create_table(
        schema(
            "ledger",
            ("id", ColumnType.BIGINT, False),
            ("amount", ColumnType.FLOAT, False),
            primary_key=["id"],
        )
    )
    sql = "INSERT INTO ledger (id, amount) VALUES (?, ?)"
    db.prepare(sql)
    rng = lcg(23)
    commit_us = abort_us = 0.0
    commits = aborts = 0
    next_id = 0
    watch = Stopwatch(db.clock)
    for i in range(ABORT_TXNS):
        t0 = db.clock.now_us
        txn = db.begin()
        for _ in range(ABORT_BATCH):
            db.execute(sql, (next_id, float(next(rng) % 1000)))
            next_id += 1
        if i % ABORT_EVERY == 0:
            txn.abort()
            aborts += 1
            abort_us += db.clock.now_us - t0
        else:
            txn.commit()
            commits += 1
            commit_us += db.clock.now_us - t0
    rows_after = db.execute("SELECT count(*) FROM ledger").scalar()
    return {
        "transactions": ABORT_TXNS,
        "statements_per_txn": ABORT_BATCH,
        "committed": commits,
        "aborted": aborts,
        "abort_fraction": aborts / ABORT_TXNS,
        "avg_commit_txn_us_sim": commit_us / commits,
        "avg_abort_txn_us_sim": abort_us / aborts,
        "abort_over_commit": (abort_us / aborts) / (commit_us / commits),
        "rows_after": rows_after,
        "rows_expected": commits * ABORT_BATCH,
        "consistent_after_aborts": rows_after == commits * ABORT_BATCH,
        "rows_undone": db.clock.events.get("rows_undone", 0),
        "sim_elapsed_us": watch.elapsed_us,
    }


def bench_streaming_pipeline(batches: int, batch_rows: int) -> dict:
    """A Voter-style 3-stage workflow DAG driven by atomic-batch ingest.

    ``raw`` --ingest_votes--> ``votes`` --count_votes--> ``counts``
    --rank--> ``leaderboard``; ``count_votes`` aggregates over an owned
    sliding tuple window on ``votes``, and an EE trigger audits every raw
    batch inside its ingest transaction.  Event counts are exact, so the
    report asserts the precise number of EE/PE firings and bounds the
    trigger overhead fraction of total pipeline time.
    """
    db = Database(cost=CostModel.calibrated())
    db.create_stream(
        schema("raw", ("phone", ColumnType.BIGINT), ("contestant", ColumnType.INTEGER))
    )
    db.create_stream(
        schema("votes", ("phone", ColumnType.BIGINT), ("contestant", ColumnType.INTEGER))
    )
    db.create_stream(
        schema("counts", ("contestant", ColumnType.INTEGER), ("n", ColumnType.INTEGER))
    )
    db.create_table(
        schema(
            "leaderboard",
            ("contestant", ColumnType.INTEGER, False),
            ("total", ColumnType.INTEGER, False),
            primary_key=["contestant"],
        )
    )
    db.create_table(schema("audit", ("batch", ColumnType.BIGINT)))

    @db.register_procedure
    def ingest_votes(ctx, batch):
        ctx.emit("votes", [(p, c) for p, c in batch.rows if 0 <= c < CONTESTANTS])

    @db.register_procedure
    def count_votes(ctx, batch):
        counts = ctx.execute(
            "SELECT contestant, count(*) AS n FROM recent GROUP BY contestant"
        )
        ctx.emit("counts", list(counts))

    @db.register_procedure
    def rank(ctx, batch):
        for contestant, n in batch.rows:
            updated = ctx.execute(
                "UPDATE leaderboard SET total = ? WHERE contestant = ?",
                (n, contestant),
            )
            if updated.rowcount == 0:
                ctx.execute(
                    "INSERT INTO leaderboard (contestant, total) VALUES (?, ?)",
                    (contestant, n),
                )

    db.create_window(
        "recent", "votes", size=2 * batch_rows, slide=batch_rows, owner="count_votes"
    )
    db.create_ee_trigger(
        "audit_raw", "raw",
        lambda ctx, rows: ctx.execute(
            "INSERT INTO audit (batch) VALUES (?)", (ctx.batch_id,)
        ),
    )
    db.create_workflow(
        "voter",
        [
            ("raw", "ingest_votes", "votes"),
            ("votes", "count_votes", "counts"),
            ("counts", "rank", None),
        ],
    )

    rng = lcg(29)
    watch = Stopwatch(db.clock)
    events_before = db.clock.snapshot_events()
    for _ in range(batches):
        db.ingest(
            "raw",
            [(next(rng), next(rng) % CONTESTANTS) for _ in range(batch_rows)],
        )
    elapsed = watch.elapsed_us
    delta = db.clock.snapshot_events() - events_before
    trigger_us = db.clock.charged_us["ee_trigger"] + db.clock.charged_us["pe_trigger"]

    streaming = db.stats()["streaming"]
    total_rows = batches * batch_rows
    window_rows = min(total_rows, 2 * batch_rows)  # active rows after the last slide
    # End-to-end consistency: the leaderboard must reflect the *final*
    # counts emission exactly (contestants absent from the final window
    # legitimately keep their last-written totals, so compare per-row
    # against the last batch, not an aggregate over the whole table).
    last_counts_batch = db.streaming.streams["counts"].last_committed
    final_counts = db.execute(
        "SELECT contestant, n FROM counts WHERE __batch_id__ = ?",
        (last_counts_batch,),
    ).rows
    board = dict(db.execute("SELECT contestant, total FROM leaderboard").rows)
    counts_total = sum(n for _c, n in final_counts)
    pipeline_consistent = (
        last_counts_batch == batches
        and counts_total == window_rows
        and all(board.get(c) == n for c, n in final_counts)
    )
    return {
        "batches": batches,
        "rows_per_batch": batch_rows,
        "rows_ingested": total_rows,
        "sim_elapsed_us": elapsed,
        "avg_us_per_batch_sim": elapsed / batches,
        "batches_per_sec_sim": watch.throughput_per_sec(batches),
        "ee_trigger_fires": delta.get("ee_trigger", 0),
        "pe_trigger_fires": delta.get("pe_trigger", 0),
        "window_slides": delta.get("window_slide", 0),
        "trigger_us_sim": trigger_us,
        "trigger_overhead_frac": trigger_us / elapsed if elapsed else 0.0,
        "deliveries": streaming["scheduler"]["delivered"],
        "pending_deliveries": streaming["scheduler"]["pending_deliveries"],
        "votes_rows": db.execute("SELECT count(*) FROM votes").scalar(),
        "final_window_rows": window_rows,
        "final_counts_total": counts_total,
        "pipeline_consistent": pipeline_consistent,
    }


# ---------------------------------------------------------------------------
# Harness
# ---------------------------------------------------------------------------


def run_benchmarks(
    rows: int,
    *,
    stream_batches: int = STREAM_BATCHES,
    stream_batch_rows: int = STREAM_BATCH_ROWS,
) -> dict:
    db = make_db(rows)
    results = {
        "bulk_insert": bench_bulk_insert(rows),
        "point_lookup_index": bench_point_lookup_index(db, rows),
        "point_lookup_seqscan": bench_point_lookup_seqscan(db, rows),
        "range_scan": bench_range_scan(db, rows),
        "plan_cache": bench_plan_cache(db, rows),
        "procedure_call": bench_procedure_call(),
        "abort_rate": bench_abort_rate(),
        "streaming_pipeline": bench_streaming_pipeline(stream_batches, stream_batch_rows),
    }
    point = results["point_lookup_index"]["avg_us_per_query_sim"]
    scan = results["point_lookup_seqscan"]["avg_us_per_query_sim"]
    pipeline = results["streaming_pipeline"]
    report = {
        "benchmark": "pr3-streaming-dataflow",
        "table_rows": rows,
        "cost_model": "calibrated",
        "results": results,
        "derived": {
            "point_vs_scan_speedup": scan / point,
            "plan_cache_hit_rate": results["plan_cache"]["hit_rate"],
            "cold_over_warm_plan": results["plan_cache"]["cold_over_warm"],
            "procedure_over_adhoc": results["procedure_call"]["procedure_over_adhoc"],
            "abort_over_commit": results["abort_rate"]["abort_over_commit"],
            "abort_consistent": results["abort_rate"]["consistent_after_aborts"],
            "pipeline_us_per_batch": pipeline["avg_us_per_batch_sim"],
            "trigger_overhead_frac": pipeline["trigger_overhead_frac"],
            "pipeline_consistent": pipeline["pipeline_consistent"],
        },
    }
    return report


def check_thresholds(report: dict) -> list[str]:
    """The PR's acceptance criteria; returns a list of failure messages."""
    failures = []
    derived = report["derived"]
    if report["table_rows"] >= 10_000 and derived["point_vs_scan_speedup"] < 10.0:
        failures.append(
            f"point lookup only {derived['point_vs_scan_speedup']:.1f}x cheaper "
            f"than seq scan (need >= 10x)"
        )
    if derived["plan_cache_hit_rate"] < 0.99:
        failures.append(
            f"plan cache hit rate {derived['plan_cache_hit_rate']:.4f} < 0.99"
        )
    if derived["cold_over_warm_plan"] <= 1.0:
        failures.append("cache-hit executions are not cheaper than cold plans")
    if derived["procedure_over_adhoc"] > 1.0:
        failures.append(
            f"stored-procedure vote costs {derived['procedure_over_adhoc']:.3f}x "
            f"the ad-hoc statements (must be <= 1.0x)"
        )
    if not derived["abort_consistent"]:
        failures.append(
            "abort-rate workload left inconsistent state "
            "(row count != committed transactions * batch size)"
        )
    pipeline = report["results"]["streaming_pipeline"]
    batches = pipeline["batches"]
    if pipeline["ee_trigger_fires"] != batches:
        failures.append(
            f"EE trigger fired {pipeline['ee_trigger_fires']} times "
            f"(expected exactly {batches}: one per ingested batch)"
        )
    if pipeline["pe_trigger_fires"] != 3 * batches:
        failures.append(
            f"PE trigger fired {pipeline['pe_trigger_fires']} times "
            f"(expected exactly {3 * batches}: one per batch per workflow edge)"
        )
    if pipeline["pending_deliveries"] != 0:
        failures.append(
            f"{pipeline['pending_deliveries']} workflow deliveries left unprocessed"
        )
    if derived["trigger_overhead_frac"] > TRIGGER_OVERHEAD_MAX:
        failures.append(
            f"trigger overhead is {derived['trigger_overhead_frac']:.1%} of "
            f"pipeline time (must be <= {TRIGGER_OVERHEAD_MAX:.0%})"
        )
    if not derived["pipeline_consistent"]:
        failures.append(
            "streaming pipeline left inconsistent state (leaderboard does "
            "not match the final counts emission / window contents)"
        )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rows", type=int, default=DEFAULT_ROWS,
                        help=f"benchmark table size (default {DEFAULT_ROWS})")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny row counts for CI: same thresholds, "
                             "fast run (row-count-gated checks skip)")
    parser.add_argument("--out", type=Path,
                        default=Path(__file__).resolve().parent.parent / "BENCH_pr3.json",
                        help="output JSON path (default: repo-root BENCH_pr3.json)")
    parser.add_argument("--no-check", action="store_true",
                        help="skip acceptance-threshold enforcement")
    args = parser.parse_args(argv)

    if args.smoke:
        rows = min(args.rows, SMOKE_ROWS)
        stream_sizes = dict(
            stream_batches=SMOKE_STREAM_BATCHES,
            stream_batch_rows=SMOKE_STREAM_BATCH_ROWS,
        )
    else:
        rows = args.rows
        stream_sizes = {}
    report = run_benchmarks(rows, **stream_sizes)
    args.out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")

    derived = report["derived"]
    pipeline = report["results"]["streaming_pipeline"]
    print(f"wrote {args.out}")
    print(f"  point vs scan speedup : {derived['point_vs_scan_speedup']:.1f}x")
    print(f"  plan cache hit rate   : {derived['plan_cache_hit_rate']:.4%}")
    print(f"  cold / warm plan cost : {derived['cold_over_warm_plan']:.1f}x")
    print(f"  procedure / ad-hoc    : {derived['procedure_over_adhoc']:.3f}x")
    print(f"  abort / commit txn    : {derived['abort_over_commit']:.2f}x "
          f"(consistent: {derived['abort_consistent']})")
    print(f"  bulk insert           : "
          f"{report['results']['bulk_insert']['rows_per_sec_sim']:,.0f} rows/s (sim)")
    print(f"  pipeline batch cost   : {derived['pipeline_us_per_batch']:.1f} us "
          f"({pipeline['batches_per_sec_sim']:,.0f} batches/s sim)")
    print(f"  trigger overhead      : {derived['trigger_overhead_frac']:.2%} "
          f"(ee={pipeline['ee_trigger_fires']}, pe={pipeline['pe_trigger_fires']}, "
          f"consistent: {derived['pipeline_consistent']})")

    if not args.no_check:
        failures = check_thresholds(report)
        if failures:
            for f in failures:
                print(f"THRESHOLD FAILED: {f}", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
