#!/usr/bin/env python
"""Deterministic micro-benchmark harness for the compile-once SQL pipeline.

Every workload runs against a fresh :class:`repro.engine.Database` with the
calibrated :class:`~repro.common.clock.CostModel`; throughput and latency
are computed from **simulated** time (see ``repro/common/clock.py`` for why),
so results are exact, machine-independent, and reproducible bit-for-bit.

Workloads
=========
* ``bulk_insert``       — load N rows through one cached prepared INSERT.
* ``point_lookup_index``— primary-key point queries (IndexScan).
* ``point_lookup_seqscan`` — the same selectivity on an unindexed column
  (SeqScan), the paper's §4.6.3 "lookup vs. table scan" contrast.
* ``range_scan``        — ordered-index range queries (IndexRangeScan).
* ``plan_cache``        — one statement executed R times: cold plan cost
  vs. cache-hit cost and the cache hit rate.
* ``procedure_call``    — a Voter-style increment stored procedure versus
  the same two statements as ad-hoc auto-commit SQL (the paper's §2/§3.1
  stored-procedure-as-transaction premise: pinned compile-once plans plus
  one transaction boundary instead of two).
* ``abort_rate``        — explicit multi-statement transactions with a
  deterministic fraction aborting; measures undo-replay cost and checks
  that only committed rows survive.
* ``streaming_pipeline`` — a Voter-style 3-stage workflow DAG (ingest
  procedure → owned-sliding-window aggregate → leaderboard ranking) fed
  atomic batches through ``db.ingest``, with an EE audit trigger on the
  input stream; measures per-batch pipeline cost, counts EE/PE trigger
  firings exactly, and bounds the trigger overhead fraction (§3.2.3).

Wall-clock mode (the ``wall_clock`` report section)
===================================================
Simulated time keeps results machine-independent, but the vectorized
bulk paths are a *real* CPython optimisation, so the harness also
measures **wall-clock** time with ``time.perf_counter``:

* ``bulk_ingest`` — one vectorized ``db.executemany`` batch versus the
  same rows applied one ``db.execute`` at a time (plans cached in both
  cases, one transaction each: the contrast is pure per-invocation
  overhead, the paper's §3.2.1 batch-amortisation claim).
* ``storage_insert_many`` — ``Table.insert_many`` versus a
  ``Table.insert`` loop at the storage layer (batch unique checks, one
  index-maintenance loop per index).
* ``stream_ingest`` — sustained atomic-batch ``db.ingest`` throughput
  through the vectorized batch-apply path.

Both bulk/row comparisons measure each path best-of-3 and assert
**ratios**, not absolute times, so CI machines do not flake; both also
assert the two paths produced byte-identical physical state
(``snapshot_state`` equality).  Every
simulated workload additionally reports its wall-clock duration as
``wall_s``.

The harness writes ``BENCH_pr4.json`` (override with ``--out``) and
(unless ``--no-check``) enforces the acceptance thresholds: point lookup
≥ 10× cheaper than the equivalent seq scan, plan-cache hit rate ≥ 99% on
the repeated-statement workload, cache hits cheaper than cold plans, the
procedure path no more expensive than the equivalent ad-hoc auto-commit
statements, abort leaving exactly the committed rows behind, exact EE/PE
trigger fire counts on the streaming pipeline with trigger overhead below
the threshold, an end-to-end-consistent leaderboard, and the wall-clock
bulk-vs-row ratios above.

``--smoke`` shrinks every workload to tiny row counts for CI: the same
thresholds are enforced (row-count-gated ones relax or skip themselves),
so a perf or consistency regression fails the PR without a long
benchmark run.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.common.clock import CostModel, Stopwatch  # noqa: E402
from repro.common.types import ColumnType  # noqa: E402
from repro.engine import Database  # noqa: E402
from repro.storage.schema import schema  # noqa: E402
from repro.storage.table import Table  # noqa: E402

DEFAULT_ROWS = 10_000
POINT_QUERIES = 2_000
SEQSCAN_QUERIES = 50
RANGE_QUERIES = 200
CACHE_REPEATS = 5_000
GROUPS = 100  # distinct values of the ``grp`` column
VOTE_OPS = 2_000
CONTESTANTS = 8
ABORT_TXNS = 1_000
ABORT_EVERY = 10   # every Nth transaction aborts
ABORT_BATCH = 5    # statements per transaction
STREAM_BATCHES = 50        # atomic batches through the pipeline DAG
STREAM_BATCH_ROWS = 100    # tuples per atomic batch
TRIGGER_OVERHEAD_MAX = 0.20  # EE+PE trigger time as a fraction of pipeline time

#: Wall-clock bulk-vs-row ratio floors (ratios, not absolute times, so CI
#: machines don't flake).  Each path is measured best-of-``WALL_TRIALS``
#: to damp scheduler/GC noise.  The full thresholds apply on a >=
#: 10k-row batch (the PR's acceptance criterion); smoke-sized runs
#: enforce the relaxed floors so a vectorization regression still fails CI.
WALL_TRIALS = 3
BULK_INGEST_SPEEDUP_MIN = 3.0
BULK_INGEST_SPEEDUP_MIN_SMALL = 1.3
STORAGE_BULK_SPEEDUP_MIN = 1.3
STORAGE_BULK_SPEEDUP_MIN_SMALL = 1.1
WALLCLOCK_FULL_ROWS = 10_000  # batch size at which the full ratios apply
INGEST_WALL_BATCH_ROWS = 1_000  # rows per atomic batch in stream_ingest

#: ``--smoke`` sizes: tiny row counts so CI enforces thresholds quickly.
SMOKE_ROWS = 2_000
SMOKE_STREAM_BATCHES = 8
SMOKE_STREAM_BATCH_ROWS = 20


def lcg(seed: int = 0x5EED):
    """Deterministic 31-bit linear congruential generator."""
    state = seed
    while True:
        state = (state * 1103515245 + 12345) % (1 << 31)
        yield state


def create_bench_table(db: Database) -> None:
    """The one benchmark table shape every workload runs against."""
    db.create_table(
        schema(
            "bench",
            ("id", ColumnType.BIGINT, False),
            ("grp", ColumnType.INTEGER, False),
            ("val", ColumnType.FLOAT),
            ("name", ColumnType.VARCHAR, False),
            primary_key=["id"],
        )
    )
    db.create_index("bench", "bench_grp_ord", ["grp"], ordered=True)


def make_db(rows: int) -> Database:
    """Fresh database with the benchmark table loaded (not measured)."""
    db = Database(cost=CostModel.calibrated())
    create_bench_table(db)
    load_rows(db, rows)
    return db


def row_values(i: int, rand: int) -> tuple:
    return (i, i % GROUPS, float(rand % 10_007) / 7.0, f"name_{i:08d}")


def load_rows(db: Database, rows: int) -> None:
    rng = lcg()
    db.executemany(
        "INSERT INTO bench (id, grp, val, name) VALUES (?, ?, ?, ?)",
        (row_values(i, next(rng)) for i in range(rows)),
    )


# ---------------------------------------------------------------------------
# Workloads — each returns a result dict for the report
# ---------------------------------------------------------------------------


def bench_bulk_insert(rows: int) -> dict:
    db = Database(cost=CostModel.calibrated())
    create_bench_table(db)
    watch = Stopwatch(db.clock)
    load_rows(db, rows)
    elapsed = watch.elapsed_us
    return {
        "rows": rows,
        "sim_elapsed_us": elapsed,
        "rows_per_sec_sim": watch.throughput_per_sec(rows),
        "plan_cache": db.plan_cache.stats(),
    }


def _run_lookup_workload(db: Database, rows: int, *, sql: str, param_fn,
                         queries: int, seed: int) -> dict:
    """One-row-selectivity lookup workload; the SQL text decides the access
    path (indexed vs. unindexed column)."""
    db.prepare(sql)  # exclude the cold plan from the per-op average
    rng = lcg(seed)
    watch = Stopwatch(db.clock)
    events_before = db.clock.snapshot_events()
    hits = 0
    for _ in range(queries):
        key = next(rng) % rows
        result = db.execute(sql, (param_fn(key),))
        hits += len(result)
    elapsed = watch.elapsed_us
    delta = db.clock.snapshot_events() - events_before
    assert hits == queries, "every lookup must find exactly one row"
    return {
        "queries": queries,
        "rows_returned": hits,
        "sim_elapsed_us": elapsed,
        "avg_us_per_query_sim": elapsed / queries,
        "index_probes": delta.get("index_probes", 0),
        "rows_scanned": delta.get("rows_scanned", 0),
    }


def bench_point_lookup_index(db: Database, rows: int) -> dict:
    return _run_lookup_workload(
        db, rows,
        sql="SELECT id, grp, val, name FROM bench WHERE id = ?",
        param_fn=lambda key: key,
        queries=POINT_QUERIES, seed=7,
    )


def bench_point_lookup_seqscan(db: Database, rows: int) -> dict:
    # Same one-row selectivity, but ``name`` has no index -> full scan.
    return _run_lookup_workload(
        db, rows,
        sql="SELECT id, grp, val, name FROM bench WHERE name = ?",
        param_fn=lambda key: f"name_{key:08d}",
        queries=SEQSCAN_QUERIES, seed=11,
    )


def bench_range_scan(db: Database, rows: int) -> dict:
    sql = "SELECT id, val FROM bench WHERE grp >= ? AND grp <= ?"
    db.prepare(sql)
    rng = lcg(13)
    watch = Stopwatch(db.clock)
    events_before = db.clock.snapshot_events()
    returned = 0
    for _ in range(RANGE_QUERIES):
        lo = next(rng) % (GROUPS - 5)
        result = db.execute(sql, (lo, lo + 4))
        returned += len(result)
    elapsed = watch.elapsed_us
    delta = db.clock.snapshot_events() - events_before
    return {
        "queries": RANGE_QUERIES,
        "rows_returned": returned,
        "sim_elapsed_us": elapsed,
        "avg_us_per_query_sim": elapsed / RANGE_QUERIES,
        "index_probes": delta.get("index_probes", 0),
        "rows_scanned": delta.get("rows_scanned", 0),
    }


def bench_plan_cache(db: Database, rows: int) -> dict:
    # Distinct SQL text so the first execution is genuinely cold.
    sql = "SELECT grp, val FROM bench WHERE id = ?"
    cache_before = dict(db.plan_cache.stats())
    t0 = db.clock.now_us
    db.execute(sql, (1,))
    cold_us = db.clock.now_us - t0

    t1 = db.clock.now_us
    rng = lcg(17)
    for _ in range(CACHE_REPEATS - 1):
        db.execute(sql, (next(rng) % rows,))
    warm_us = (db.clock.now_us - t1) / (CACHE_REPEATS - 1)

    cache_after = db.plan_cache.stats()
    hits = cache_after["hits"] - cache_before["hits"]
    misses = cache_after["misses"] - cache_before["misses"]
    return {
        "repeats": CACHE_REPEATS,
        "cache_hits": hits,
        "cache_misses": misses,
        "hit_rate": hits / (hits + misses),
        "cold_exec_us_sim": cold_us,
        "warm_exec_us_sim": warm_us,
        "cold_over_warm": cold_us / warm_us if warm_us else float("inf"),
    }


VOTE_SELECT = "SELECT num_votes FROM votes WHERE contestant_id = ?"
VOTE_UPDATE = "UPDATE votes SET num_votes = num_votes + 1 WHERE contestant_id = ?"


def make_voter_db() -> Database:
    db = Database(cost=CostModel.calibrated())
    db.create_table(
        schema(
            "votes",
            ("contestant_id", ColumnType.INTEGER, False),
            ("num_votes", ColumnType.BIGINT, False),
            primary_key=["contestant_id"],
        )
    )
    db.executemany(
        "INSERT INTO votes (contestant_id, num_votes) VALUES (?, ?)",
        ((c, 0) for c in range(CONTESTANTS)),
    )
    return db


def bench_procedure_call() -> dict:
    """Voter-style increment: stored procedure vs. ad-hoc auto-commit SQL.

    Identical logical work per vote (one pk SELECT + one pk UPDATE); the
    procedure path pays one txn begin/commit and zero plan/cache lookups
    (pinned statements), the ad-hoc path pays two implicit transactions
    and two plan-cache hits."""
    adhoc = make_voter_db()
    adhoc.prepare(VOTE_SELECT)  # exclude cold plans from both averages
    adhoc.prepare(VOTE_UPDATE)
    rng = lcg(19)
    watch = Stopwatch(adhoc.clock)
    for _ in range(VOTE_OPS):
        cid = next(rng) % CONTESTANTS
        adhoc.execute(VOTE_SELECT, (cid,))
        adhoc.execute(VOTE_UPDATE, (cid,))
    adhoc_us = watch.elapsed_us / VOTE_OPS

    proc = make_voter_db()

    @proc.register_procedure("vote")
    def vote(ctx, contestant_id):
        ctx.execute(VOTE_UPDATE, (contestant_id,))
        return ctx.execute(VOTE_SELECT, (contestant_id,)).scalar()

    proc.call("vote", 0)  # warm-up: plans + pins both statements
    plans_before = proc.clock.events["sql_plan"]
    rng = lcg(19)
    watch = Stopwatch(proc.clock)
    for _ in range(VOTE_OPS):
        proc.call("vote", next(rng) % CONTESTANTS)
    proc_us = watch.elapsed_us / VOTE_OPS
    steady_state_plans = proc.clock.events["sql_plan"] - plans_before
    votes = proc.execute("SELECT sum(num_votes) FROM votes").scalar()
    assert votes == VOTE_OPS + 1, "every committed vote must be visible"
    return {
        "ops": VOTE_OPS,
        "adhoc_us_per_vote_sim": adhoc_us,
        "procedure_us_per_vote_sim": proc_us,
        "procedure_over_adhoc": proc_us / adhoc_us,
        "plans_in_steady_state": steady_state_plans,
        "procedure_calls": proc.stats()["transactions"]["procedure_calls"],
    }


def bench_abort_rate() -> dict:
    """Multi-statement transactions with every ``ABORT_EVERY``-th aborting:
    undo-replay cost versus commit cost, plus a consistency check that
    exactly the committed rows survive."""
    db = Database(cost=CostModel.calibrated())
    db.create_table(
        schema(
            "ledger",
            ("id", ColumnType.BIGINT, False),
            ("amount", ColumnType.FLOAT, False),
            primary_key=["id"],
        )
    )
    sql = "INSERT INTO ledger (id, amount) VALUES (?, ?)"
    db.prepare(sql)
    rng = lcg(23)
    commit_us = abort_us = 0.0
    commits = aborts = 0
    next_id = 0
    watch = Stopwatch(db.clock)
    for i in range(ABORT_TXNS):
        t0 = db.clock.now_us
        txn = db.begin()
        for _ in range(ABORT_BATCH):
            db.execute(sql, (next_id, float(next(rng) % 1000)))
            next_id += 1
        if i % ABORT_EVERY == 0:
            txn.abort()
            aborts += 1
            abort_us += db.clock.now_us - t0
        else:
            txn.commit()
            commits += 1
            commit_us += db.clock.now_us - t0
    rows_after = db.execute("SELECT count(*) FROM ledger").scalar()
    return {
        "transactions": ABORT_TXNS,
        "statements_per_txn": ABORT_BATCH,
        "committed": commits,
        "aborted": aborts,
        "abort_fraction": aborts / ABORT_TXNS,
        "avg_commit_txn_us_sim": commit_us / commits,
        "avg_abort_txn_us_sim": abort_us / aborts,
        "abort_over_commit": (abort_us / aborts) / (commit_us / commits),
        "rows_after": rows_after,
        "rows_expected": commits * ABORT_BATCH,
        "consistent_after_aborts": rows_after == commits * ABORT_BATCH,
        "rows_undone": db.clock.events.get("rows_undone", 0),
        "sim_elapsed_us": watch.elapsed_us,
    }


def bench_streaming_pipeline(batches: int, batch_rows: int) -> dict:
    """A Voter-style 3-stage workflow DAG driven by atomic-batch ingest.

    ``raw`` --ingest_votes--> ``votes`` --count_votes--> ``counts``
    --rank--> ``leaderboard``; ``count_votes`` aggregates over an owned
    sliding tuple window on ``votes``, and an EE trigger audits every raw
    batch inside its ingest transaction.  Event counts are exact, so the
    report asserts the precise number of EE/PE firings and bounds the
    trigger overhead fraction of total pipeline time.
    """
    db = Database(cost=CostModel.calibrated())
    db.create_stream(
        schema("raw", ("phone", ColumnType.BIGINT), ("contestant", ColumnType.INTEGER))
    )
    db.create_stream(
        schema("votes", ("phone", ColumnType.BIGINT), ("contestant", ColumnType.INTEGER))
    )
    db.create_stream(
        schema("counts", ("contestant", ColumnType.INTEGER), ("n", ColumnType.INTEGER))
    )
    db.create_table(
        schema(
            "leaderboard",
            ("contestant", ColumnType.INTEGER, False),
            ("total", ColumnType.INTEGER, False),
            primary_key=["contestant"],
        )
    )
    db.create_table(schema("audit", ("batch", ColumnType.BIGINT)))

    @db.register_procedure
    def ingest_votes(ctx, batch):
        ctx.emit("votes", [(p, c) for p, c in batch.rows if 0 <= c < CONTESTANTS])

    @db.register_procedure
    def count_votes(ctx, batch):
        counts = ctx.execute(
            "SELECT contestant, count(*) AS n FROM recent GROUP BY contestant"
        )
        ctx.emit("counts", list(counts))

    @db.register_procedure
    def rank(ctx, batch):
        for contestant, n in batch.rows:
            updated = ctx.execute(
                "UPDATE leaderboard SET total = ? WHERE contestant = ?",
                (n, contestant),
            )
            if updated.rowcount == 0:
                ctx.execute(
                    "INSERT INTO leaderboard (contestant, total) VALUES (?, ?)",
                    (contestant, n),
                )

    db.create_window(
        "recent", "votes", size=2 * batch_rows, slide=batch_rows, owner="count_votes"
    )
    db.create_ee_trigger(
        "audit_raw", "raw",
        lambda ctx, rows: ctx.execute(
            "INSERT INTO audit (batch) VALUES (?)", (ctx.batch_id,)
        ),
    )
    db.create_workflow(
        "voter",
        [
            ("raw", "ingest_votes", "votes"),
            ("votes", "count_votes", "counts"),
            ("counts", "rank", None),
        ],
    )

    rng = lcg(29)
    watch = Stopwatch(db.clock)
    events_before = db.clock.snapshot_events()
    for _ in range(batches):
        db.ingest(
            "raw",
            [(next(rng), next(rng) % CONTESTANTS) for _ in range(batch_rows)],
        )
    elapsed = watch.elapsed_us
    delta = db.clock.snapshot_events() - events_before
    trigger_us = db.clock.charged_us["ee_trigger"] + db.clock.charged_us["pe_trigger"]

    streaming = db.stats()["streaming"]
    total_rows = batches * batch_rows
    window_rows = min(total_rows, 2 * batch_rows)  # active rows after the last slide
    # End-to-end consistency: the leaderboard must reflect the *final*
    # counts emission exactly (contestants absent from the final window
    # legitimately keep their last-written totals, so compare per-row
    # against the last batch, not an aggregate over the whole table).
    last_counts_batch = db.streaming.streams["counts"].last_committed
    final_counts = db.execute(
        "SELECT contestant, n FROM counts WHERE __batch_id__ = ?",
        (last_counts_batch,),
    ).rows
    board = dict(db.execute("SELECT contestant, total FROM leaderboard").rows)
    counts_total = sum(n for _c, n in final_counts)
    pipeline_consistent = (
        last_counts_batch == batches
        and counts_total == window_rows
        and all(board.get(c) == n for c, n in final_counts)
    )
    return {
        "batches": batches,
        "rows_per_batch": batch_rows,
        "rows_ingested": total_rows,
        "sim_elapsed_us": elapsed,
        "avg_us_per_batch_sim": elapsed / batches,
        "batches_per_sec_sim": watch.throughput_per_sec(batches),
        "ee_trigger_fires": delta.get("ee_trigger", 0),
        "pe_trigger_fires": delta.get("pe_trigger", 0),
        "window_slides": delta.get("window_slide", 0),
        "trigger_us_sim": trigger_us,
        "trigger_overhead_frac": trigger_us / elapsed if elapsed else 0.0,
        "deliveries": streaming["scheduler"]["delivered"],
        "pending_deliveries": streaming["scheduler"]["pending_deliveries"],
        "votes_rows": db.execute("SELECT count(*) FROM votes").scalar(),
        "final_window_rows": window_rows,
        "final_counts_total": counts_total,
        "pipeline_consistent": pipeline_consistent,
    }


# ---------------------------------------------------------------------------
# Wall-clock workloads — real time.perf_counter measurements of the
# vectorized bulk paths versus their row-at-a-time equivalents
# ---------------------------------------------------------------------------

INSERT_SQL = "INSERT INTO bench (id, grp, val, name) VALUES (?, ?, ?, ?)"


def _bench_params(rows: int, seed: int) -> list[tuple]:
    rng = lcg(seed)
    return [row_values(i, next(rng)) for i in range(rows)]


def _best_of(trials: int, run) -> tuple[float, object]:
    """Best (minimum) wall-clock seconds over ``trials`` runs of ``run()``
    — each on fresh state — plus the last run's artifact for differential
    checks.  Minimum-of-N damps scheduler/GC noise, keeping the asserted
    ratios stable run to run."""
    best = float("inf")
    artifact = None
    for _ in range(trials):
        t0 = time.perf_counter()
        artifact = run()
        best = min(best, time.perf_counter() - t0)
    return best, artifact


def bench_wallclock_bulk_ingest(rows: int) -> dict:
    """Engine-level bulk-vs-row wall clock: one vectorized ``executemany``
    batch against the same rows applied one ``db.execute`` at a time.

    Both paths pre-bind identical parameter lists, pre-warm the plan cache,
    run as a single transaction, and are measured best-of-``WALL_TRIALS``,
    so the measured gap is purely the per-invocation overhead the bulk
    path amortises.  The two databases must end in byte-identical physical
    state (rows, rowids, arrival order) — the differential check rides
    inside the benchmark.
    """
    params = _bench_params(rows, 31)

    def run_row_path():
        db = Database(cost=CostModel.calibrated())
        create_bench_table(db)
        db.prepare(INSERT_SQL)
        with db.transaction():
            for p in params:
                db.execute(INSERT_SQL, p)
        return db

    def run_bulk_path():
        db = Database(cost=CostModel.calibrated())
        create_bench_table(db)
        db.prepare(INSERT_SQL)
        db.executemany(INSERT_SQL, params)
        return db

    row_s, row_db = _best_of(WALL_TRIALS, run_row_path)
    bulk_s, bulk_db = _best_of(WALL_TRIALS, run_bulk_path)

    identical = (
        row_db.catalog.table("bench").snapshot_state()
        == bulk_db.catalog.table("bench").snapshot_state()
    )
    return {
        "rows": rows,
        "row_at_a_time_s": row_s,
        "bulk_s": bulk_s,
        "rows_per_sec_row_path": rows / row_s if row_s else 0.0,
        "rows_per_sec_bulk": rows / bulk_s if bulk_s else 0.0,
        "bulk_speedup": row_s / bulk_s if bulk_s else float("inf"),
        "identical_state": identical,
    }


def bench_wallclock_storage(rows: int) -> dict:
    """Storage-level bulk-vs-row wall clock: ``Table.insert_many`` against
    a ``Table.insert`` loop (same rows, same indexes: pk hash + ordered
    ``grp``), best-of-``WALL_TRIALS`` per path, with the same
    byte-identical-state differential check."""
    data = _bench_params(rows, 37)

    def fresh_table() -> Table:
        t = Table(
            schema(
                "bench",
                ("id", ColumnType.BIGINT, False),
                ("grp", ColumnType.INTEGER, False),
                ("val", ColumnType.FLOAT),
                ("name", ColumnType.VARCHAR, False),
                primary_key=["id"],
            )
        )
        t.create_index("bench_grp_ord", ["grp"], ordered=True)
        return t

    def run_row_path():
        t = fresh_table()
        for values in data:
            t.insert(values)
        return t

    def run_bulk_path():
        t = fresh_table()
        t.insert_many(data)
        return t

    row_s, row_table = _best_of(WALL_TRIALS, run_row_path)
    bulk_s, bulk_table = _best_of(WALL_TRIALS, run_bulk_path)

    return {
        "rows": rows,
        "row_at_a_time_s": row_s,
        "bulk_s": bulk_s,
        "rows_per_sec_row_path": rows / row_s if row_s else 0.0,
        "rows_per_sec_bulk": rows / bulk_s if bulk_s else 0.0,
        "bulk_speedup": row_s / bulk_s if bulk_s else float("inf"),
        "identical_state": row_table.snapshot_state() == bulk_table.snapshot_state(),
    }


def bench_wallclock_stream_ingest(rows: int) -> dict:
    """Sustained atomic-batch ingest throughput (wall clock) through the
    vectorized batch-apply path, with a consuming workflow stage so stream
    GC keeps memory bounded over the run."""
    db = Database(cost=CostModel.calibrated())
    db.create_stream(
        schema("feed", ("phone", ColumnType.BIGINT), ("contestant", ColumnType.INTEGER))
    )
    db.create_table(
        schema(
            "tally",
            ("contestant", ColumnType.INTEGER, False),
            ("n", ColumnType.BIGINT, False),
            primary_key=["contestant"],
        )
    )
    db.executemany(
        "INSERT INTO tally (contestant, n) VALUES (?, ?)",
        ((c, 0) for c in range(CONTESTANTS)),
    )

    @db.register_procedure
    def absorb(ctx, batch):
        ctx.execute(
            "UPDATE tally SET n = n + ? WHERE contestant = ?", (len(batch.rows), 0)
        )

    db.create_workflow("feed_flow", [("feed", "absorb")])

    batch_rows = min(INGEST_WALL_BATCH_ROWS, max(rows // 10, 1))
    batches = max(rows // batch_rows, 1)
    rng = lcg(41)
    payloads = [
        [(next(rng), next(rng) % CONTESTANTS) for _ in range(batch_rows)]
        for _ in range(batches)
    ]
    t0 = time.perf_counter()
    for payload in payloads:
        db.ingest("feed", payload)
    wall_s = time.perf_counter() - t0
    total = batches * batch_rows
    streaming = db.stats()["streaming"]
    return {
        "rows": total,
        "batches": batches,
        "rows_per_batch": batch_rows,
        "wall_s": wall_s,
        "rows_per_sec": total / wall_s if wall_s else 0.0,
        "batches_per_sec": batches / wall_s if wall_s else 0.0,
        "reclaimed_rows": streaming["scheduler"]["rows_reclaimed"],
        "resident_stream_rows": streaming["streams"]["feed"]["rows"],
    }


# ---------------------------------------------------------------------------
# Harness
# ---------------------------------------------------------------------------


def _timed(fn, *args) -> dict:
    """Run one simulated workload, stamping its wall-clock duration."""
    t0 = time.perf_counter()
    result = fn(*args)
    result["wall_s"] = time.perf_counter() - t0
    return result


def run_benchmarks(
    rows: int,
    *,
    stream_batches: int = STREAM_BATCHES,
    stream_batch_rows: int = STREAM_BATCH_ROWS,
) -> dict:
    db = make_db(rows)
    results = {
        "bulk_insert": _timed(bench_bulk_insert, rows),
        "point_lookup_index": _timed(bench_point_lookup_index, db, rows),
        "point_lookup_seqscan": _timed(bench_point_lookup_seqscan, db, rows),
        "range_scan": _timed(bench_range_scan, db, rows),
        "plan_cache": _timed(bench_plan_cache, db, rows),
        "procedure_call": _timed(bench_procedure_call),
        "abort_rate": _timed(bench_abort_rate),
        "streaming_pipeline": _timed(
            bench_streaming_pipeline, stream_batches, stream_batch_rows
        ),
    }
    wall_clock = {
        "bulk_ingest": bench_wallclock_bulk_ingest(rows),
        "storage_insert_many": bench_wallclock_storage(rows),
        "stream_ingest": bench_wallclock_stream_ingest(rows),
    }
    point = results["point_lookup_index"]["avg_us_per_query_sim"]
    scan = results["point_lookup_seqscan"]["avg_us_per_query_sim"]
    pipeline = results["streaming_pipeline"]
    report = {
        "benchmark": "pr4-vectorized-hot-paths",
        "table_rows": rows,
        "cost_model": "calibrated",
        "results": results,
        "wall_clock": wall_clock,
        "derived": {
            "point_vs_scan_speedup": scan / point,
            "plan_cache_hit_rate": results["plan_cache"]["hit_rate"],
            "cold_over_warm_plan": results["plan_cache"]["cold_over_warm"],
            "procedure_over_adhoc": results["procedure_call"]["procedure_over_adhoc"],
            "abort_over_commit": results["abort_rate"]["abort_over_commit"],
            "abort_consistent": results["abort_rate"]["consistent_after_aborts"],
            "pipeline_us_per_batch": pipeline["avg_us_per_batch_sim"],
            "trigger_overhead_frac": pipeline["trigger_overhead_frac"],
            "pipeline_consistent": pipeline["pipeline_consistent"],
            "bulk_ingest_speedup_wall": wall_clock["bulk_ingest"]["bulk_speedup"],
            "storage_bulk_speedup_wall": wall_clock["storage_insert_many"]["bulk_speedup"],
            "bulk_paths_identical_state": (
                wall_clock["bulk_ingest"]["identical_state"]
                and wall_clock["storage_insert_many"]["identical_state"]
            ),
            "stream_ingest_rows_per_sec_wall": wall_clock["stream_ingest"]["rows_per_sec"],
        },
    }
    return report


def check_thresholds(report: dict) -> list[str]:
    """The PR's acceptance criteria; returns a list of failure messages."""
    failures = []
    derived = report["derived"]
    if report["table_rows"] >= 10_000 and derived["point_vs_scan_speedup"] < 10.0:
        failures.append(
            f"point lookup only {derived['point_vs_scan_speedup']:.1f}x cheaper "
            f"than seq scan (need >= 10x)"
        )
    if derived["plan_cache_hit_rate"] < 0.99:
        failures.append(
            f"plan cache hit rate {derived['plan_cache_hit_rate']:.4f} < 0.99"
        )
    if derived["cold_over_warm_plan"] <= 1.0:
        failures.append("cache-hit executions are not cheaper than cold plans")
    if derived["procedure_over_adhoc"] > 1.0:
        failures.append(
            f"stored-procedure vote costs {derived['procedure_over_adhoc']:.3f}x "
            f"the ad-hoc statements (must be <= 1.0x)"
        )
    if not derived["abort_consistent"]:
        failures.append(
            "abort-rate workload left inconsistent state "
            "(row count != committed transactions * batch size)"
        )
    pipeline = report["results"]["streaming_pipeline"]
    batches = pipeline["batches"]
    if pipeline["ee_trigger_fires"] != batches:
        failures.append(
            f"EE trigger fired {pipeline['ee_trigger_fires']} times "
            f"(expected exactly {batches}: one per ingested batch)"
        )
    if pipeline["pe_trigger_fires"] != 3 * batches:
        failures.append(
            f"PE trigger fired {pipeline['pe_trigger_fires']} times "
            f"(expected exactly {3 * batches}: one per batch per workflow edge)"
        )
    if pipeline["pending_deliveries"] != 0:
        failures.append(
            f"{pipeline['pending_deliveries']} workflow deliveries left unprocessed"
        )
    if derived["trigger_overhead_frac"] > TRIGGER_OVERHEAD_MAX:
        failures.append(
            f"trigger overhead is {derived['trigger_overhead_frac']:.1%} of "
            f"pipeline time (must be <= {TRIGGER_OVERHEAD_MAX:.0%})"
        )
    if not derived["pipeline_consistent"]:
        failures.append(
            "streaming pipeline left inconsistent state (leaderboard does "
            "not match the final counts emission / window contents)"
        )
    wall = report["wall_clock"]
    ingest = wall["bulk_ingest"]
    ingest_min = (
        BULK_INGEST_SPEEDUP_MIN
        if ingest["rows"] >= WALLCLOCK_FULL_ROWS
        else BULK_INGEST_SPEEDUP_MIN_SMALL
    )
    if ingest["bulk_speedup"] < ingest_min:
        failures.append(
            f"bulk ingest only {ingest['bulk_speedup']:.2f}x faster than the "
            f"row-at-a-time path on a {ingest['rows']}-row batch (wall clock; "
            f"need >= {ingest_min}x)"
        )
    storage = wall["storage_insert_many"]
    storage_min = (
        STORAGE_BULK_SPEEDUP_MIN
        if storage["rows"] >= WALLCLOCK_FULL_ROWS
        else STORAGE_BULK_SPEEDUP_MIN_SMALL
    )
    if storage["bulk_speedup"] < storage_min:
        failures.append(
            f"Table.insert_many only {storage['bulk_speedup']:.2f}x faster than "
            f"the Table.insert loop on {storage['rows']} rows (wall clock; "
            f"need >= {storage_min}x)"
        )
    if not derived["bulk_paths_identical_state"]:
        failures.append(
            "bulk and row-at-a-time paths diverged: snapshot_state is not "
            "byte-identical (rows/rowids/arrival order)"
        )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rows", type=int, default=DEFAULT_ROWS,
                        help=f"benchmark table size (default {DEFAULT_ROWS})")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny row counts for CI: same thresholds, "
                             "fast run (row-count-gated checks skip)")
    parser.add_argument("--out", type=Path,
                        default=Path(__file__).resolve().parent.parent / "BENCH_pr4.json",
                        help="output JSON path (default: repo-root BENCH_pr4.json)")
    parser.add_argument("--no-check", action="store_true",
                        help="skip acceptance-threshold enforcement")
    args = parser.parse_args(argv)

    if args.smoke:
        rows = min(args.rows, SMOKE_ROWS)
        stream_sizes = dict(
            stream_batches=SMOKE_STREAM_BATCHES,
            stream_batch_rows=SMOKE_STREAM_BATCH_ROWS,
        )
    else:
        rows = args.rows
        stream_sizes = {}
    report = run_benchmarks(rows, **stream_sizes)
    args.out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")

    derived = report["derived"]
    pipeline = report["results"]["streaming_pipeline"]
    print(f"wrote {args.out}")
    print(f"  point vs scan speedup : {derived['point_vs_scan_speedup']:.1f}x")
    print(f"  plan cache hit rate   : {derived['plan_cache_hit_rate']:.4%}")
    print(f"  cold / warm plan cost : {derived['cold_over_warm_plan']:.1f}x")
    print(f"  procedure / ad-hoc    : {derived['procedure_over_adhoc']:.3f}x")
    print(f"  abort / commit txn    : {derived['abort_over_commit']:.2f}x "
          f"(consistent: {derived['abort_consistent']})")
    print(f"  bulk insert           : "
          f"{report['results']['bulk_insert']['rows_per_sec_sim']:,.0f} rows/s (sim)")
    print(f"  pipeline batch cost   : {derived['pipeline_us_per_batch']:.1f} us "
          f"({pipeline['batches_per_sec_sim']:,.0f} batches/s sim)")
    print(f"  trigger overhead      : {derived['trigger_overhead_frac']:.2%} "
          f"(ee={pipeline['ee_trigger_fires']}, pe={pipeline['pe_trigger_fires']}, "
          f"consistent: {derived['pipeline_consistent']})")
    wall = report["wall_clock"]
    ingest = wall["bulk_ingest"]
    storage = wall["storage_insert_many"]
    stream = wall["stream_ingest"]
    print(f"  bulk ingest (wall)    : {ingest['bulk_speedup']:.2f}x vs row-at-a-time "
          f"({ingest['rows_per_sec_bulk']:,.0f} vs "
          f"{ingest['rows_per_sec_row_path']:,.0f} rows/s, "
          f"identical: {ingest['identical_state']})")
    print(f"  insert_many (wall)    : {storage['bulk_speedup']:.2f}x vs insert loop "
          f"({storage['rows_per_sec_bulk']:,.0f} vs "
          f"{storage['rows_per_sec_row_path']:,.0f} rows/s, "
          f"identical: {storage['identical_state']})")
    print(f"  stream ingest (wall)  : {stream['rows_per_sec']:,.0f} rows/s "
          f"({stream['batches_per_sec']:,.1f} batches/s, "
          f"{stream['reclaimed_rows']} rows GC'd, "
          f"{stream['resident_stream_rows']} resident)")

    if not args.no_check:
        failures = check_thresholds(report)
        if failures:
            for f in failures:
                print(f"THRESHOLD FAILED: {f}", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
