#!/usr/bin/env python
"""Overhead benchmark of the observability layer (wall clock).

Runs the Voter 3-stage workflow DAG (the same deployment as
``benchmarks/run.py``) at three observability levels on otherwise
identical engines:

* ``disabled`` — ``obs=None``, the shared no-op singleton: every
  instrumentation site costs one attribute load and a branch;
* ``metrics`` — spans time themselves and feed the latency histograms,
  nothing is buffered;
* ``tracing`` — full spans, buffered in the ring, trace context
  propagated.

Enforced thresholds (``--no-check`` to skip; CI runs ``--smoke``):

* **enabled <= 10%**: full tracing costs at most 1.10x the disabled
  wall clock on the Voter DAG (best-of-N to damp scheduler noise);
* **disabled <= 2%**: the no-op guard cost — measured directly by a
  microbenchmark of the exact disabled-path site pattern, multiplied by
  the spans-per-batch count observed in the tracing run — is at most 2%
  of the disabled per-batch wall time.  This bounds what an
  un-instrumented deployment pays for the instrumentation existing;
* the sample trace (written to ``--trace-out``) stitches one ingested
  batch into a **single** trace spanning client -> server -> coordinator
  -> worker txn -> group-commit fsync, with every expected stage present
  — the end-to-end acceptance artifact ``tools/tracetool.py`` renders.

Writes ``BENCH_pr8.json`` (override with ``--out``) and the sample span
JSONL (``--trace-out``, default ``TRACE_pr8_sample.jsonl``).
"""

from __future__ import annotations

import argparse
import gc
import json
import statistics
import sys
import tempfile
import time
from pathlib import Path

_HERE = Path(__file__).resolve().parent
_SRC = _HERE.parent / "src"
for entry in (str(_SRC), str(_HERE)):
    if entry not in sys.path:
        sys.path.insert(0, entry)

from repro.common.types import ColumnType  # noqa: E402
from repro.engine import Database  # noqa: E402
from repro.obs import DISABLED, write_jsonl  # noqa: E402
from repro.obs.tracing import NOOP_SPAN  # noqa: E402
from repro.partition import PartitionedDatabase  # noqa: E402
from repro.server import ReproClient, ReproServer  # noqa: E402
from repro.storage.schema import schema  # noqa: E402
from run import CONTESTANTS, lcg, make_voter_dag  # noqa: E402

#: short trials, many of them: each timed run stays ~200ms so the
#: interleaved best-of cancels machine drift instead of soaking it up
BATCHES = 100
BATCH_ROWS = 50
TRIALS = 9
SMOKE_BATCHES = 60
#: same rows/batch as the full run: the span count per batch is fixed
#: (~12), so shrinking the batch would inflate the measured overhead
#: ratio beyond anything a real deployment sees
SMOKE_BATCH_ROWS = 50
#: more trials than the full run: smoke runs on noisy shared CI boxes,
#: and the interleaved best-of is the noise damper
SMOKE_TRIALS = 7
GUARD_ITERS = 200_000

#: acceptance ceilings (ISSUE 8): full tracing <= 10% over disabled,
#: the disabled no-op path <= 2% of disabled per-batch wall time
TRACING_OVERHEAD_MAX = 1.10
DISABLED_OVERHEAD_FRAC_MAX = 0.02

#: every stage a stitched single-batch trace must contain
EXPECTED_SAMPLE_STAGES = frozenset(
    {"client.ingest", "server.request", "coord.ingest", "ingest.split",
     "rpc.ingest", "worker.ingest", "ingest", "txn", "log.fsync"}
)


# ---------------------------------------------------------------------------
# Voter DAG at the three observability levels
# ---------------------------------------------------------------------------

MODES = (("disabled", None), ("metrics", "metrics"), ("tracing", "full"))


def _one_voter_run(obs_spec, batches: int, batch_rows: int) -> tuple[float, Database]:
    db = Database(obs=obs_spec)
    make_voter_dag(db, batch_rows)
    rng = lcg(0x0B5)
    gc.collect()  # level the allocator field between timed runs
    t0 = time.perf_counter()
    for _ in range(batches):
        db.ingest(
            "raw",
            [(next(rng), next(rng) % CONTESTANTS) for _ in range(batch_rows)],
        )
    return time.perf_counter() - t0, db


def run_voter_modes(batches: int, batch_rows: int, trials: int) -> dict[str, dict]:
    """Wall clock of ``batches`` atomic-batch ingests through the Voter
    DAG at every obs level, on fresh memory-only engines.

    Trials are **interleaved** (disabled, metrics, tracing, disabled,
    ...) rather than run per-mode, and each mode's overhead ratio is the
    **median of per-round ratios** against the same round's disabled
    run: the two runs of a pair execute back-to-back, so machine-wide
    drift — a noisy CI neighbour, a thermal dip — cancels within the
    pair, and the median votes out any round a spike still hit.  Each
    timed region is the ingest loop only; engine construction and DAG
    deployment are outside.
    """
    walls: dict[str, list[float]] = {name: [] for name, _ in MODES}
    final_db: dict[str, Database] = {}
    for round_no in range(trials):
        # rotate which mode goes first so no mode systematically inherits
        # the round's warmup/GC position
        for i in range(len(MODES)):
            name, spec = MODES[(round_no + i) % len(MODES)]
            wall_s, db = _one_voter_run(spec, batches, batch_rows)
            walls[name].append(wall_s)
            final_db[name] = db

    disabled_walls = walls["disabled"]
    results: dict[str, dict] = {}
    for name, _ in MODES:
        db = final_db[name]
        out = {
            "wall_s": min(walls[name]),
            "trial_walls_s": walls[name],
            "batches": batches,
            "batch_rows": batch_rows,
            "batches_per_sec": batches / min(walls[name]),
            "leaderboard_rows": db.stats(section="tables")["leaderboard"]["rows"],
        }
        if name != "disabled":
            out["overhead_x"] = statistics.median(
                w / d for w, d in zip(walls[name], disabled_walls)
            )
        if db.obs.enabled:
            obs_section = db.stats(section="obs")
            out["spans_emitted"] = obs_section["spans"]["emitted"]
            out["spans_per_batch"] = obs_section["spans"]["emitted"] / batches
            txn_hist = obs_section["histograms"].get("txn", {})
            out["txn_p50_us"] = txn_hist.get("p50_us", 0.0)
            out["txn_p99_us"] = txn_hist.get("p99_us", 0.0)
        results[name] = out
    return results


# ---------------------------------------------------------------------------
# The disabled fast path, measured directly
# ---------------------------------------------------------------------------

def measure_noop_guard(iters: int) -> float:
    """Nanoseconds per instrumentation site on the disabled path.

    Times the exact pattern every hot site compiles to when obs is off:
    one attribute load, one truthiness branch, and a ``with NOOP_SPAN``
    enter/exit.  Best of 3 loops, loop overhead included (conservative —
    the real sites pay strictly less, since many guard without the
    ``with``)."""
    obs = DISABLED
    best_ns = float("inf")
    for _ in range(3):
        t0 = time.perf_counter_ns()
        for _ in range(iters):
            with (obs.span("x", probe=1) if obs.enabled else NOOP_SPAN):
                pass
        best_ns = min(best_ns, time.perf_counter_ns() - t0)
    return best_ns / iters


# ---------------------------------------------------------------------------
# The stitched sample trace (the acceptance artifact)
# ---------------------------------------------------------------------------

def capture_sample_trace(trace_out: Path) -> dict:
    """One traced batch through the whole pipeline: traced client ->
    server -> 2-partition coordinator -> workers with group_commit=1 (so
    the fsync lands inside the trace).  Writes the span JSONL that
    ``tools/tracetool.py`` renders and returns what the trace contains."""

    def deploy(db, part):
        db.create_stream(
            schema("sfeed", ("k", ColumnType.BIGINT), ("v", ColumnType.INTEGER))
        )

    with tempfile.TemporaryDirectory() as tmp:
        pdb = PartitionedDatabase(
            2,
            deploy,
            partition_keys={"sfeed": "k"},
            workers="inline",
            recovery_dir=tmp,
            group_commit=1,
            obs="full",
        )
        try:
            with ReproServer(pdb, port=0) as server:
                with ReproClient(*server.address, obs="full") as client:
                    client.ingest("sfeed", [(k, k * 10) for k in range(8)])
                    spans = client.trace_spans()
            spans += pdb.trace_spans()
        finally:
            pdb.close()
    write_jsonl(str(trace_out), spans)
    trace_ids = {s["trace_id"] for s in spans}
    stages = {s["name"] for s in spans}
    return {
        "path": str(trace_out),
        "spans": len(spans),
        "traces": len(trace_ids),
        "processes": sorted({s["process"] for s in spans}),
        "stages": sorted(stages),
        "missing_stages": sorted(EXPECTED_SAMPLE_STAGES - stages),
    }


# ---------------------------------------------------------------------------
# Harness
# ---------------------------------------------------------------------------

def run_benchmark(
    batches: int, batch_rows: int, trials: int, trace_out: Path
) -> dict:
    results: dict = run_voter_modes(batches, batch_rows, trials)

    guard_ns = measure_noop_guard(GUARD_ITERS)
    spans_per_batch = results["tracing"]["spans_per_batch"]
    disabled_batch_us = results["disabled"]["wall_s"] * 1e6 / batches
    results["noop_guard"] = {
        "per_site_ns": guard_ns,
        "sites_per_batch": spans_per_batch,
        "overhead_per_batch_us": guard_ns * spans_per_batch / 1e3,
    }
    results["sample_trace"] = capture_sample_trace(trace_out)

    derived = {
        "tracing_overhead_x": results["tracing"]["overhead_x"],
        "metrics_overhead_x": results["metrics"]["overhead_x"],
        "disabled_overhead_frac":
            (guard_ns * spans_per_batch / 1e3) / disabled_batch_us,
        "txn_p99_us": results["tracing"]["txn_p99_us"],
    }
    return {
        "benchmark": "observability_overhead",
        "config": {"batches": batches, "batch_rows": batch_rows, "trials": trials},
        "results": results,
        "derived": derived,
    }


def check_thresholds(report: dict) -> list[str]:
    """Acceptance checks; returns human-readable failure strings."""
    failures: list[str] = []
    derived = report["derived"]
    if derived["tracing_overhead_x"] > TRACING_OVERHEAD_MAX:
        failures.append(
            f"full tracing costs {derived['tracing_overhead_x']:.3f}x disabled "
            f"on the Voter DAG (ceiling {TRACING_OVERHEAD_MAX}x)"
        )
    if derived["disabled_overhead_frac"] > DISABLED_OVERHEAD_FRAC_MAX:
        failures.append(
            f"disabled no-op path costs {derived['disabled_overhead_frac']:.4f} "
            f"of per-batch wall time (ceiling {DISABLED_OVERHEAD_FRAC_MAX})"
        )
    sample = report["results"]["sample_trace"]
    if sample["traces"] != 1:
        failures.append(
            f"sample batch produced {sample['traces']} traces, expected one "
            f"stitched trace (context propagation broke at a hop)"
        )
    if sample["missing_stages"]:
        failures.append(
            f"sample trace is missing stage(s): {', '.join(sample['missing_stages'])}"
        )
    tracing = report["results"]["tracing"]
    if tracing["txn_p99_us"] <= 0.0:
        failures.append("tracing run produced no txn latency histogram")
    rows_by_mode = {
        mode: report["results"][mode]["leaderboard_rows"]
        for mode in ("disabled", "metrics", "tracing")
    }
    if len(set(rows_by_mode.values())) != 1:
        failures.append(
            f"modes disagree on leaderboard rows ({rows_by_mode}) — "
            f"instrumentation changed results"
        )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--batches", type=int, default=BATCHES)
    parser.add_argument("--batch-rows", type=int, default=BATCH_ROWS)
    parser.add_argument("--smoke", action="store_true",
                        help="small sizes for CI; same thresholds enforced")
    parser.add_argument("--out", type=Path,
                        default=_HERE.parent / "BENCH_pr8.json",
                        help="output JSON path (default: repo-root BENCH_pr8.json)")
    parser.add_argument("--trace-out", type=Path,
                        default=_HERE.parent / "TRACE_pr8_sample.jsonl",
                        help="sample span JSONL path (tools/tracetool.py renders it)")
    parser.add_argument("--no-check", action="store_true",
                        help="skip acceptance-threshold enforcement")
    args = parser.parse_args(argv)

    if args.smoke:
        batches, batch_rows, trials = SMOKE_BATCHES, SMOKE_BATCH_ROWS, SMOKE_TRIALS
    else:
        batches, batch_rows, trials = args.batches, args.batch_rows, TRIALS

    report = run_benchmark(batches, batch_rows, trials, args.trace_out)
    args.out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")

    results, derived = report["results"], report["derived"]
    print(f"wrote {args.out}")
    print(f"  disabled              : {results['disabled']['batches_per_sec']:,.0f} "
          f"batches/s ({batches} batches x {batch_rows} rows)")
    print(f"  metrics               : {derived['metrics_overhead_x']:.3f}x disabled")
    print(f"  tracing               : {derived['tracing_overhead_x']:.3f}x disabled "
          f"(ceiling {TRACING_OVERHEAD_MAX}x; "
          f"{results['tracing']['spans_per_batch']:.1f} spans/batch)")
    print(f"  disabled no-op path   : {results['noop_guard']['per_site_ns']:.0f}ns/site "
          f"-> {derived['disabled_overhead_frac']:.5f} of batch wall "
          f"(ceiling {DISABLED_OVERHEAD_FRAC_MAX})")
    print(f"  txn p50/p99 (traced)  : {results['tracing']['txn_p50_us']:,.0f}us / "
          f"{results['tracing']['txn_p99_us']:,.0f}us")
    sample = results["sample_trace"]
    print(f"  sample trace          : {sample['spans']} spans, {sample['traces']} "
          f"trace(s) across {', '.join(sample['processes'])} -> {sample['path']}")

    if not args.no_check:
        failures = check_thresholds(report)
        if failures:
            print("\nTHRESHOLD FAILURES:", file=sys.stderr)
            for failure in failures:
                print(f"  - {failure}", file=sys.stderr)
            return 1
        print("  all observability thresholds passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
