"""Scenario contract for the cross-engine conformance harness.

A scenario is three deterministic pieces:

- ``deploy(db, part)`` — DDL + procedures + workflow + partition-owned
  seed rows, written exactly like a ``PartitionedDatabase`` deployment
  so the same function serves every engine shape (a single ``Database``
  deploys with ``PartitionInfo(0, 1)``, which owns everything);
- ``ops(seed, scale)`` — a seeded input script of :class:`Op` records
  (atomic-batch ingests and keyed procedure calls) that the harness
  replays identically against each shape;
- ``check(read, ops, aborts)`` — invariant assertions over the final
  state (ordering, exactly-once counts, conservation, join
  correctness), returning a list of violation strings.

Scenarios must be **partition-safe**: every effect a row has depends
only on that row's partition key's state, never on batch ids or on the
interleaving of other keys — because the partitioned shapes split each
batch into per-partition sub-batches with independent batch-id
sequences.  Outputs digested for conformance must therefore be plain
tables (never resident stream/window contents, whose GC timing is
shape-dependent) with NULL-free, integer/string-only rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence


@dataclass(frozen=True)
class Op:
    """One step of a scenario's input script.

    ``kind`` is ``"ingest"`` (atomic batch into ``target`` stream) or
    ``"call"`` (stored procedure ``target``).  ``key`` routes calls
    under the partitioned/served shapes; single engines ignore it.
    ``may_abort`` marks calls whose deterministic abort is part of the
    workload (the harness counts those instead of failing).
    """

    kind: str
    target: str
    rows: tuple = ()
    args: tuple = ()
    key: Any = None
    may_abort: bool = False


def ingest(stream: str, rows: Sequence[tuple]) -> Op:
    return Op("ingest", stream, rows=tuple(tuple(r) for r in rows))


def call(proc: str, *args: Any, key: Any = None, may_abort: bool = False) -> Op:
    return Op("call", proc, args=tuple(args), key=key, may_abort=may_abort)


@dataclass(frozen=True)
class Scale:
    """Input-script sizing; ``smoke()`` is the CI tier, ``full()`` the
    benchmark default."""

    batches: int = 8
    rows_per_batch: int = 10

    @classmethod
    def smoke(cls) -> "Scale":
        return cls(batches=6, rows_per_batch=8)

    @classmethod
    def full(cls) -> "Scale":
        return cls(batches=40, rows_per_batch=25)

    @property
    def total_rows(self) -> int:
        return self.batches * self.rows_per_batch


@dataclass
class Scenario:
    """Base class; subclasses override ``deploy``/``ops``/``check``."""

    name: str = "scenario"
    # streams (and any coordinator-routed tables) -> partition column
    partition_keys: dict = field(default_factory=dict)
    # plain tables whose sorted contents form the conformance digest
    output_tables: tuple = ()

    def deploy(self, db, part) -> None:
        raise NotImplementedError

    def ops(self, seed: int, scale: Scale) -> list[Op]:
        raise NotImplementedError

    def check(
        self,
        read: Callable[[str], list[tuple]],
        ops: Sequence[Op],
        aborts: int,
    ) -> list[str]:
        """Return invariant violations; ``read(sql)`` runs a SELECT on
        the shape under test and returns normalized row tuples."""
        return []

    # -- shared helpers for check() implementations ---------------------

    @staticmethod
    def ingested_rows(ops: Sequence[Op], stream: str) -> list[tuple]:
        out: list[tuple] = []
        for op in ops:
            if op.kind == "ingest" and op.target == stream:
                out.extend(op.rows)
        return out
