"""Linear Road (paper §4.6): the variable-tolling highway benchmark.

Vehicles stream position reports ``(vid, t, xway, seg, speed)``; the
dataflow maintains per-segment statistics, detects accidents (a vehicle
stopped across consecutive reports marks its segment; a fast vehicle
clears it), and charges a congestion toll each time a vehicle enters a
new segment — higher when the segment is slow, a flat surcharge when it
is accident-blocked.  Tolls flow through a second workflow stage into
per-vehicle accounts, so the scenario exercises a two-hop DAG with
``ctx.emit`` fan-in.

Everything is keyed by expressway (``xway``) — the paper's partitioning
axis (see ``storage/partitioning.py``) — and the generator pins each
vehicle to one expressway, so per-vehicle state also lives entirely
inside one partition.  All arithmetic is integer-only so final-state
digests are bit-identical across engine shapes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.common.types import ColumnType as T
from repro.storage.schema import schema
from repro.workloads.gen import Rng
from repro.workloads.scenario import Op, Scale, Scenario, ingest

TOLL_SPEED = 40  # segments averaging below this are congestion-tolled
CLEAR_SPEED = 45  # a report faster than this clears the segment's accident
ACCIDENT_TOLL = 50  # flat surcharge for entering an accident segment
STOPPED_REPORTS = 2  # consecutive zero-speed reports that declare an accident


def deploy(db, part) -> None:
    db.create_stream(
        schema(
            "position",
            ("vid", T.INTEGER),
            ("t", T.INTEGER),
            ("xway", T.INTEGER),
            ("seg", T.INTEGER),
            ("speed", T.INTEGER),
        )
    )
    db.create_stream(
        schema("tolls", ("vid", T.INTEGER), ("xway", T.INTEGER), ("toll", T.INTEGER))
    )
    db.create_table(
        schema(
            "segstat",
            ("xway", T.INTEGER, False),
            ("seg", T.INTEGER, False),
            ("cars", T.BIGINT, False),
            ("speed_sum", T.BIGINT, False),
            primary_key=["xway", "seg"],
        )
    )
    db.create_table(
        schema(
            "vehicle",
            ("vid", T.INTEGER, False),
            ("xway", T.INTEGER, False),
            ("seg", T.INTEGER, False),
            ("stops", T.INTEGER, False),
            ("last_t", T.INTEGER, False),
            primary_key=["vid"],
        )
    )
    db.create_table(
        schema(
            "accident",
            ("xway", T.INTEGER, False),
            ("seg", T.INTEGER, False),
            ("hits", T.INTEGER, False),
            primary_key=["xway", "seg"],
        )
    )
    db.create_table(
        schema(
            "account",
            ("vid", T.INTEGER, False),
            ("xway", T.INTEGER, False),
            ("charged", T.BIGINT, False),
            primary_key=["vid"],
        )
    )

    @db.register_procedure
    def lr_position(ctx, batch):
        emitted = []
        for vid, t, xway, seg, speed in batch.rows:
            prev = ctx.query("SELECT seg, stops FROM vehicle WHERE vid = ?", (vid,))
            if prev:
                entered = seg != prev[0]["seg"]
                if speed == 0:
                    stops = 1 if entered else prev[0]["stops"] + 1
                else:
                    stops = 0
                ctx.execute(
                    "UPDATE vehicle SET xway = ?, seg = ?, stops = ?, last_t = ? "
                    "WHERE vid = ?",
                    (xway, seg, stops, t, vid),
                )
            else:
                entered = True
                stops = 1 if speed == 0 else 0
                ctx.execute(
                    "INSERT INTO vehicle (vid, xway, seg, stops, last_t) "
                    "VALUES (?, ?, ?, ?, ?)",
                    (vid, xway, seg, stops, t),
                )

            st = ctx.query(
                "SELECT cars, speed_sum FROM segstat WHERE xway = ? AND seg = ?",
                (xway, seg),
            )
            if st:
                cars = st[0]["cars"] + 1
                speed_sum = st[0]["speed_sum"] + speed
                ctx.execute(
                    "UPDATE segstat SET cars = ?, speed_sum = ? "
                    "WHERE xway = ? AND seg = ?",
                    (cars, speed_sum, xway, seg),
                )
            else:
                cars, speed_sum = 1, speed
                ctx.execute(
                    "INSERT INTO segstat (xway, seg, cars, speed_sum) "
                    "VALUES (?, ?, ?, ?)",
                    (xway, seg, cars, speed_sum),
                )

            acc = ctx.query(
                "SELECT hits FROM accident WHERE xway = ? AND seg = ?", (xway, seg)
            )
            if stops >= STOPPED_REPORTS:
                if acc:
                    ctx.execute(
                        "UPDATE accident SET hits = hits + 1 "
                        "WHERE xway = ? AND seg = ?",
                        (xway, seg),
                    )
                else:
                    ctx.execute(
                        "INSERT INTO accident (xway, seg, hits) VALUES (?, ?, 1)",
                        (xway, seg),
                    )
                blocked = True
            elif acc and speed > CLEAR_SPEED:
                ctx.execute(
                    "DELETE FROM accident WHERE xway = ? AND seg = ?", (xway, seg)
                )
                blocked = False
            else:
                blocked = bool(acc)

            if entered:
                avg = speed_sum // cars
                if blocked:
                    toll = ACCIDENT_TOLL
                elif avg < TOLL_SPEED:
                    toll = 2 * (TOLL_SPEED - avg)
                else:
                    toll = 0
                if toll:
                    emitted.append((vid, xway, toll))
        if emitted:
            ctx.emit("tolls", emitted)

    @db.register_procedure
    def lr_charge(ctx, batch):
        for vid, xway, toll in batch.rows:
            acct = ctx.query("SELECT charged FROM account WHERE vid = ?", (vid,))
            if acct:
                ctx.execute(
                    "UPDATE account SET charged = charged + ? WHERE vid = ?",
                    (toll, vid),
                )
            else:
                ctx.execute(
                    "INSERT INTO account (vid, xway, charged) VALUES (?, ?, ?)",
                    (vid, xway, toll),
                )

    db.create_workflow(
        "linear_road",
        [("position", "lr_position", "tolls"), ("tolls", "lr_charge")],
    )


@dataclass
class _Vehicle:
    vid: int
    xway: int
    seg: int
    stopped_for: int = 0
    rng: Rng = field(default=None)  # type: ignore[assignment]


@dataclass
class LinearRoadScenario(Scenario):
    name: str = "linear_road"
    partition_keys: dict = field(
        default_factory=lambda: {"position": "xway", "tolls": "xway"}
    )
    output_tables: tuple = ("segstat", "vehicle", "accident", "account")
    xways: int = 3
    segments: int = 10

    def deploy(self, db, part) -> None:
        deploy(db, part)

    def ops(self, seed: int, scale: Scale) -> list[Op]:
        rng = Rng(seed)
        fleet = [
            _Vehicle(
                vid=v,
                xway=rng.randint(0, self.xways - 1),
                seg=rng.randint(0, self.segments - 1),
                rng=rng.fork(v + 1),
            )
            for v in range(max(4, scale.rows_per_batch))
        ]
        script: list[Op] = []
        for t in range(scale.batches):
            rows = []
            for _ in range(scale.rows_per_batch):
                veh = rng.choice(fleet)
                r = veh.rng
                # a stopped vehicle usually stays stopped (builds accidents);
                # a moving one occasionally advances a segment or stops dead
                if veh.stopped_for and r.chance(60):
                    speed = 0
                elif r.chance(12):
                    speed = 0
                else:
                    if r.chance(45):
                        veh.seg = (veh.seg + 1) % self.segments
                    speed = r.randint(5, 60)
                veh.stopped_for = veh.stopped_for + 1 if speed == 0 else 0
                rows.append((veh.vid, t, veh.xway, veh.seg, speed))
            script.append(ingest("position", rows))
        return script

    def check(
        self,
        read: Callable[[str], list[tuple]],
        ops: Sequence[Op],
        aborts: int,
    ) -> list[str]:
        bad: list[str] = []
        reports = self.ingested_rows(ops, "position")

        # exactly-once: every position report incremented exactly one
        # segstat row, no report was lost or double-applied
        cars = sum(r[2] for r in read("SELECT xway, seg, cars FROM segstat"))
        if cars != len(reports):
            bad.append(f"segstat cars total {cars} != {len(reports)} reports")

        # ordering: each vehicle's row reflects its *last* report
        last: dict[int, tuple] = {}
        for vid, t, xway, seg, speed in reports:
            last[vid] = (xway, seg, t)
        for vid, xway, seg, _stops, last_t in read(
            "SELECT vid, xway, seg, stops, last_t FROM vehicle"
        ):
            want = last.get(vid)
            if want is None:
                bad.append(f"vehicle {vid} never reported")
            elif (xway, seg, last_t) != want:
                bad.append(
                    f"vehicle {vid} at {(xway, seg, last_t)}, last report {want}"
                )

        # tolls only charge vehicles that exist, and are positive
        vids = {r[0] for r in reports}
        for vid, _xway, charged in read("SELECT vid, xway, charged FROM account"):
            if vid not in vids:
                bad.append(f"account for unknown vehicle {vid}")
            if charged <= 0:
                bad.append(f"non-positive account balance for vehicle {vid}")
        return bad
