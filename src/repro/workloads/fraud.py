"""Fraud detection: stream-to-table joins on the streaming hot path.

Card transactions stream in; a batch-unit window (``size=1, slide=1``,
owned by the detector) always holds exactly the current atomic batch,
and the detector joins it against the seeded ``cards`` limit table —
the PR 9 planner picks the join strategy, and ``db.force_join`` sweeps
prove every strategy yields identical alerts.  A second rule counts
per-card velocity inside the window (``GROUP BY`` over window rows).

Partition-safe because ``card`` is both the partition key and the join
key: a batch's sub-batch on a partition contains *all* of that batch's
rows for each card it owns, so per-card joins and counts are identical
to the single-engine run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.common.types import ColumnType as T
from repro.storage.schema import schema
from repro.workloads.gen import Rng
from repro.workloads.scenario import Op, Scale, Scenario, ingest

VELOCITY = 3  # >= this many swipes of one card in one batch is "hot"


def card_limit(card: int) -> int:
    """Deterministic per-card limit; the test oracle recomputes it."""
    return 100 + (card * 37) % 400


def deploy(db, part) -> None:
    db.create_table(
        schema(
            "cards",
            ("card", T.INTEGER, False),
            ("lim", T.INTEGER, False),
            primary_key=["card"],
        )
    )
    db.executemany(
        "INSERT INTO cards (card, lim) VALUES (?, ?)",
        ((c, card_limit(c)) for c in range(FraudScenario.CARDS) if part.owns(c)),
    )
    db.create_stream(
        schema(
            "txns",
            ("txn_id", T.INTEGER),
            ("card", T.INTEGER),
            ("amount", T.INTEGER),
        )
    )
    db.create_table(
        schema(
            "alerts",
            ("txn_id", T.INTEGER, False),
            ("card", T.INTEGER, False),
            ("amount", T.INTEGER, False),
            ("lim", T.INTEGER, False),
            primary_key=["txn_id"],
        )
    )
    db.create_table(
        schema(
            "hot_cards",
            ("card", T.INTEGER, False),
            ("hits", T.INTEGER, False),
            primary_key=["card"],
        )
    )

    # the owner must exist before the window that names it
    @db.register_procedure
    def fraud_detect(ctx, batch):
        # window-to-table join: the planner chooses inl/hash/merge/bnl
        over = ctx.query(
            "SELECT r.txn_id AS txn_id, r.card AS card, r.amount AS amount, "
            "c.lim AS lim FROM recent r JOIN cards c ON r.card = c.card "
            "WHERE r.amount > c.lim"
        )
        for row in over:
            ctx.execute(
                "INSERT INTO alerts (txn_id, card, amount, lim) VALUES (?, ?, ?, ?)",
                (row["txn_id"], row["card"], row["amount"], row["lim"]),
            )
        for row in ctx.query("SELECT card, COUNT(*) AS n FROM recent GROUP BY card"):
            if row["n"] >= VELOCITY:
                hot = ctx.query(
                    "SELECT hits FROM hot_cards WHERE card = ?", (row["card"],)
                )
                if hot:
                    ctx.execute(
                        "UPDATE hot_cards SET hits = hits + 1 WHERE card = ?",
                        (row["card"],),
                    )
                else:
                    ctx.execute(
                        "INSERT INTO hot_cards (card, hits) VALUES (?, 1)",
                        (row["card"],),
                    )

    db.create_window(
        "recent", "txns", size=1, slide=1, unit="batches", owner="fraud_detect"
    )
    db.create_workflow("fraud", [("txns", "fraud_detect")])


@dataclass
class FraudScenario(Scenario):
    CARDS = 24

    name: str = "fraud"
    partition_keys: dict = field(default_factory=lambda: {"txns": "card"})
    output_tables: tuple = ("alerts", "hot_cards")

    def deploy(self, db, part) -> None:
        deploy(db, part)

    def ops(self, seed: int, scale: Scale) -> list[Op]:
        rng = Rng(seed)
        script: list[Op] = []
        txn_id = 0
        for _ in range(scale.batches):
            rows = []
            # a couple of "hot" cards per batch drive the velocity rule
            hot = [rng.randint(0, self.CARDS - 1) for _ in range(2)]
            for _ in range(scale.rows_per_batch):
                card = hot[0] if rng.chance(30) else rng.randint(0, self.CARDS - 1)
                if rng.chance(15):
                    card = hot[1]
                amount = rng.randint(1, 700)  # limits span 100..499
                rows.append((txn_id, card, amount))
                txn_id += 1
            script.append(ingest("txns", rows))
        return script

    def expected_alerts(self, ops: Sequence[Op]) -> list[tuple]:
        """Pure-python oracle: recompute the alert set from the script."""
        return sorted(
            (txn_id, card, amount, card_limit(card))
            for txn_id, card, amount in self.ingested_rows(ops, "txns")
            if amount > card_limit(card)
        )

    def expected_hot(self, ops: Sequence[Op]) -> list[tuple]:
        hits: dict[int, int] = {}
        for op in ops:
            if op.kind != "ingest":
                continue
            per_card: dict[int, int] = {}
            for _txn, card, _amt in op.rows:
                per_card[card] = per_card.get(card, 0) + 1
            for card, n in per_card.items():
                if n >= VELOCITY:
                    hits[card] = hits.get(card, 0) + 1
        return sorted(hits.items())

    def check(
        self,
        read: Callable[[str], list[tuple]],
        ops: Sequence[Op],
        aborts: int,
    ) -> list[str]:
        bad: list[str] = []
        got = sorted(read("SELECT txn_id, card, amount, lim FROM alerts"))
        want = self.expected_alerts(ops)
        if got != want:
            missing = set(want) - set(got)
            extra = set(got) - set(want)
            bad.append(f"alerts diverge: missing={sorted(missing)} extra={sorted(extra)}")
        got_hot = sorted(read("SELECT card, hits FROM hot_cards"))
        if got_hot != self.expected_hot(ops):
            bad.append(f"hot_cards diverge: {got_hot} != {self.expected_hot(ops)}")
        return bad
