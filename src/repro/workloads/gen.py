"""Seeded deterministic generation for workload inputs.

A tiny self-contained 64-bit generator (splitmix64) so scenario inputs
are byte-for-byte reproducible across Python versions, CI runners, and
local machines — no dependence on ``random``'s implementation details.
Benchmarks surface the seed as ``--seed``; the conformance harness runs
every engine shape from the same seed so any divergence is the engine's
fault, never the generator's.
"""

from __future__ import annotations

from typing import Sequence, TypeVar

MASK64 = (1 << 64) - 1

T = TypeVar("T")


class Rng:
    """splitmix64: fast, well-mixed, trivially portable.

    >>> r = Rng(42)
    >>> r.randint(0, 9) == Rng(42).randint(0, 9)
    True
    """

    __slots__ = ("_state",)

    def __init__(self, seed: int) -> None:
        self._state = seed & MASK64

    def next_u64(self) -> int:
        self._state = (self._state + 0x9E3779B97F4A7C15) & MASK64
        z = self._state
        z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & MASK64
        z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & MASK64
        return z ^ (z >> 31)

    def randint(self, lo: int, hi: int) -> int:
        """Uniform integer in ``[lo, hi]`` inclusive."""
        if hi < lo:
            raise ValueError(f"empty range [{lo}, {hi}]")
        return lo + self.next_u64() % (hi - lo + 1)

    def chance(self, percent: int) -> bool:
        """True with probability ``percent``/100."""
        return self.randint(0, 99) < percent

    def choice(self, seq: Sequence[T]) -> T:
        if not seq:
            raise ValueError("choice from empty sequence")
        return seq[self.next_u64() % len(seq)]

    def shuffle(self, items: list) -> None:
        """In-place Fisher-Yates shuffle."""
        for i in range(len(items) - 1, 0, -1):
            j = self.next_u64() % (i + 1)
            items[i], items[j] = items[j], items[i]

    def fork(self, tag: int) -> "Rng":
        """Derive an independent child stream (e.g. one per vehicle)."""
        return Rng(self.next_u64() ^ ((tag * 0xD1342543DE82EF95) & MASK64))
