"""Cross-engine conformance: one script, five engine shapes, one digest.

The harness replays a scenario's deterministic op script against each
shape and reduces the final contents of the scenario's output tables to
a SHA-256 digest over canonical JSON (rows sorted, tuples normalized).
The single-``Database`` run is the reference; any digest divergence, or
any scenario invariant violation, is an engine bug by definition —
ordering, exactly-once delivery, undo on abort, routing, the wire
protocol, and recovery replay all funnel into this one equality.

Shapes:

- ``single``      — one plain :class:`~repro.engine.Database`
- ``inline``      — :class:`PartitionedDatabase` with in-process workers
- ``process``     — :class:`PartitionedDatabase` with forked workers
- ``served``      — a single engine behind the asyncio TCP server,
  driven through :class:`~repro.server.ReproClient`
- ``recover``     — a durable single engine crashed (abandoned) halfway
  through the script after ``flush_log``, reopened with weak recovery,
  then fed the rest of the script
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.common.errors import TransactionAborted
from repro.engine import Database
from repro.partition import PartitionInfo, PartitionedDatabase
from repro.server import ReproClient, ReproServer
from repro.workloads.scenario import Op, Scenario

ALL_SHAPES = ("single", "inline", "process", "served", "recover")


@dataclass
class RunResult:
    shape: str
    digest: str
    tables: dict
    aborts: int
    violations: list


def _norm_rows(rows) -> list[tuple]:
    return [tuple(r) for r in rows]


# ---------------------------------------------------------------------------
# Engine-shape facades: the lowest common denominator the script needs
# ---------------------------------------------------------------------------


class _SingleFacade:
    def __init__(self, db: Database):
        self.db = db

    def ingest(self, stream, rows):
        self.db.ingest(stream, rows)

    def call(self, proc, args, key):
        self.db.call(proc, *args)  # one partition owns everything

    def drain(self):
        self.db.drain()

    def rows(self, sql) -> list[tuple]:
        return _norm_rows(self.db.execute(sql).rows)

    def close(self):
        self.db.close()


class _PartitionedFacade:
    def __init__(self, pdb: PartitionedDatabase):
        self.pdb = pdb

    def ingest(self, stream, rows):
        self.pdb.ingest(stream, rows)

    def call(self, proc, args, key):
        self.pdb.call(proc, *args, key=key)

    def drain(self):
        self.pdb.drain()

    def rows(self, sql) -> list[tuple]:
        # unkeyed SELECT fans out and unions partition results
        return _norm_rows(self.pdb.execute(sql).rows)

    def close(self):
        self.pdb.close()


class _ServedFacade:
    """A single engine behind the TCP server; owns server + engine."""

    def __init__(self, db: Database):
        self.server = ReproServer(db)
        self.server.__enter__()
        self.client = ReproClient(*self.server.address)

    def ingest(self, stream, rows):
        self.client.ingest(stream, rows)

    def call(self, proc, args, key):
        self.client.call(proc, *args, key=key)

    def drain(self):
        self.client.drain()

    def rows(self, sql) -> list[tuple]:
        return _norm_rows(self.client.execute(sql).rows)

    def close(self):
        self.client.close()
        self.server.__exit__(None, None, None)


# ---------------------------------------------------------------------------
# Script execution and digests
# ---------------------------------------------------------------------------


def run_ops(facade, ops: Sequence[Op]) -> int:
    """Replay the script; returns the count of expected aborts observed.

    An abort on an op not marked ``may_abort`` propagates — determinism
    violations must fail loudly, not be absorbed here.
    """
    aborts = 0
    for op in ops:
        if op.kind == "ingest":
            facade.ingest(op.target, [list(r) for r in op.rows])
        else:
            try:
                facade.call(op.target, op.args, op.key)
            except TransactionAborted:
                if not op.may_abort:
                    raise
                aborts += 1
    facade.drain()
    return aborts


def state_digest(read: Callable[[str], list[tuple]], tables: Sequence[str]):
    """SHA-256 over the canonical JSON of each table's sorted rows."""
    snap = {t: sorted(read(f"SELECT * FROM {t}")) for t in tables}
    blob = json.dumps(snap, sort_keys=True, separators=(",", ":"), default=list)
    return hashlib.sha256(blob.encode()).hexdigest(), snap


def _finish(scenario: Scenario, facade, ops, aborts, shape) -> RunResult:
    digest, snap = state_digest(facade.rows, scenario.output_tables)
    violations = scenario.check(facade.rows, ops, aborts)
    return RunResult(
        shape=shape, digest=digest, tables=snap, aborts=aborts, violations=violations
    )


def _single_db(scenario: Scenario, **kwargs) -> Database:
    return Database(
        bootstrap=lambda db: scenario.deploy(db, PartitionInfo(0, 1)), **kwargs
    )


def run_shape(
    scenario: Scenario,
    ops: Sequence[Op],
    shape: str,
    *,
    partitions: int = 2,
    tmp_path=None,
    crash_at: Optional[int] = None,
    setup: Optional[Callable] = None,
) -> RunResult:
    """Run the script on one engine shape and return its :class:`RunResult`.

    ``setup(engine)`` runs before any ops (e.g. to pin ``force_join``).
    ``recover`` needs ``tmp_path``; ``crash_at`` overrides the default
    midpoint crash boundary.
    """
    if shape == "single":
        facade = _SingleFacade(_single_db(scenario))
    elif shape in ("inline", "process"):
        facade = _PartitionedFacade(
            PartitionedDatabase(
                partitions,
                scenario.deploy,
                partition_keys=scenario.partition_keys,
                workers=shape,
            )
        )
    elif shape == "served":
        facade = _ServedFacade(_single_db(scenario))
    elif shape == "recover":
        return _run_recover(scenario, ops, tmp_path, crash_at, setup)
    else:
        raise ValueError(f"unknown engine shape {shape!r}")

    try:
        if setup is not None:
            setup(facade)
        aborts = run_ops(facade, ops)
        return _finish(scenario, facade, ops, aborts, shape)
    finally:
        facade.close()


def _run_recover(scenario, ops, tmp_path, crash_at, setup) -> RunResult:
    if tmp_path is None:
        raise ValueError("the recover shape needs tmp_path for its log directory")
    d = str(tmp_path) + f"/conf-{scenario.name}"
    cut = len(ops) // 2 if crash_at is None else crash_at
    bootstrap = lambda db: scenario.deploy(db, PartitionInfo(0, 1))  # noqa: E731

    db = Database(recovery_dir=d, recovery="weak", bootstrap=bootstrap)
    facade = _SingleFacade(db)
    if setup is not None:
        setup(facade)
    aborts = run_ops(facade, ops[:cut])
    db.flush_log()
    # crash: abandon the object — the on-disk log is the survivor

    recovered = Database(recovery_dir=d, recovery="weak", bootstrap=bootstrap)
    facade = _SingleFacade(recovered)
    try:
        if setup is not None:
            setup(facade)
        aborts += run_ops(facade, ops[cut:])
        return _finish(scenario, facade, ops, aborts, "recover")
    finally:
        facade.close()


def conformance_matrix(
    scenario: Scenario,
    ops: Sequence[Op],
    shapes: Sequence[str] = ALL_SHAPES,
    *,
    partitions: int = 2,
    tmp_path=None,
) -> dict[str, RunResult]:
    """Run every shape; callers assert all digests equal the single
    reference and no shape reported violations."""
    return {
        shape: run_shape(
            scenario, ops, shape, partitions=partitions, tmp_path=tmp_path
        )
        for shape in shapes
    }
