"""High-abort contention: deposits stream in, withdrawals race them.

Accounts are seeded with a small balance; a workflow applies deposit
batches while the script fires keyed ``withdraw`` calls sized so a
substantial fraction deterministically abort on insufficient funds
(``ctx.abort`` → ``UserAbort``).  The harness counts expected aborts —
the abort *count* must match across engine shapes, and rolled-back
attempts must leave no trace in final balances.

Partition-safe: every call and deposit is keyed by account id, and the
script's per-account order is preserved by every shape (keyed calls are
synchronous; pipelined ingests to the same partition stay FIFO).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.common.types import ColumnType as T
from repro.storage.schema import schema
from repro.workloads.gen import Rng
from repro.workloads.scenario import Op, Scale, Scenario, call, ingest

START_BALANCE = 100


def deploy(db, part) -> None:
    db.create_table(
        schema(
            "acct",
            ("id", T.INTEGER, False),
            ("bal", T.BIGINT, False),
            ("withdrawals", T.BIGINT, False),
            primary_key=["id"],
        )
    )
    db.executemany(
        "INSERT INTO acct (id, bal, withdrawals) VALUES (?, ?, 0)",
        ((a, START_BALANCE) for a in range(ContentionScenario.ACCOUNTS) if part.owns(a)),
    )
    db.create_stream(schema("deposits", ("id", T.INTEGER), ("amt", T.INTEGER)))

    @db.register_procedure
    def apply_deposit(ctx, batch):
        for acct_id, amt in batch.rows:
            ctx.execute(
                "UPDATE acct SET bal = bal + ? WHERE id = ?", (amt, acct_id)
            )

    db.create_workflow("banking", [("deposits", "apply_deposit")])

    @db.register_procedure
    def withdraw(ctx, acct_id, amt):
        row = ctx.query("SELECT bal FROM acct WHERE id = ?", (acct_id,))
        bal = row[0]["bal"]
        # dirty the row *before* deciding, so an abort exercises rollback
        ctx.execute(
            "UPDATE acct SET bal = ?, withdrawals = withdrawals + 1 WHERE id = ?",
            (bal - amt, acct_id),
        )
        if bal < amt:
            ctx.abort(f"insufficient funds: {bal} < {amt}")


@dataclass
class ContentionScenario(Scenario):
    ACCOUNTS = 8

    name: str = "contention"
    partition_keys: dict = field(default_factory=lambda: {"deposits": "id"})
    output_tables: tuple = ("acct",)

    def deploy(self, db, part) -> None:
        deploy(db, part)

    def ops(self, seed: int, scale: Scale) -> list[Op]:
        rng = Rng(seed)
        script: list[Op] = []
        for _ in range(scale.batches):
            rows = [
                (rng.randint(0, self.ACCOUNTS - 1), rng.randint(1, 30))
                for _ in range(scale.rows_per_batch)
            ]
            script.append(ingest("deposits", rows))
            # withdrawals sized around the typical balance so many abort
            for _ in range(max(2, scale.rows_per_batch // 2)):
                acct_id = rng.randint(0, self.ACCOUNTS - 1)
                amt = rng.randint(40, 260)
                script.append(call("withdraw", acct_id, amt, key=acct_id, may_abort=True))
        return script

    def replay(self, ops: Sequence[Op]) -> tuple[dict[int, tuple], int]:
        """Pure-python oracle: final (bal, withdrawals) per account and the
        number of aborted withdrawals, replaying the script in order."""
        bal = {a: START_BALANCE for a in range(self.ACCOUNTS)}
        taken = {a: 0 for a in range(self.ACCOUNTS)}
        aborts = 0
        for op in ops:
            if op.kind == "ingest":
                for acct_id, amt in op.rows:
                    bal[acct_id] += amt
            else:
                acct_id, amt = op.args
                if bal[acct_id] < amt:
                    aborts += 1
                else:
                    bal[acct_id] -= amt
                    taken[acct_id] += 1
        return {a: (bal[a], taken[a]) for a in bal}, aborts

    def check(
        self,
        read: Callable[[str], list[tuple]],
        ops: Sequence[Op],
        aborts: int,
    ) -> list[str]:
        bad: list[str] = []
        want, want_aborts = self.replay(ops)
        got = {a: (b, w) for a, b, w in read("SELECT id, bal, withdrawals FROM acct")}
        if got != want:
            diff = {a: (got.get(a), want.get(a)) for a in set(got) | set(want)
                    if got.get(a) != want.get(a)}
            bad.append(f"balances diverge (got, want): {diff}")
        if aborts != want_aborts:
            bad.append(f"abort count {aborts} != expected {want_aborts}")
        for a, (b, _w) in got.items():
            if b < 0:
                bad.append(f"negative balance on account {a}: {b}")
        return bad
