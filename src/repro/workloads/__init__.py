"""Workload scenarios and the cross-engine conformance harness.

Each scenario (Linear Road, fraud detection, sessionized leaderboard,
high-abort contention) packages a deployment, a seeded deterministic
input script, and invariant checks.  ``conformance`` runs the same
script against every engine shape — single ``Database``, partitioned
(inline and process workers), served over TCP, and crash-then-recover —
and compares final-state digests against the single-engine reference.
"""

from repro.workloads.conformance import (
    ALL_SHAPES,
    RunResult,
    run_shape,
    state_digest,
)
from repro.workloads.contention import ContentionScenario
from repro.workloads.fraud import FraudScenario
from repro.workloads.gen import Rng
from repro.workloads.leaderboard import LeaderboardScenario
from repro.workloads.linear_road import LinearRoadScenario
from repro.workloads.scenario import Op, Scenario

ALL_SCENARIOS = (
    LinearRoadScenario,
    FraudScenario,
    LeaderboardScenario,
    ContentionScenario,
)

__all__ = [
    "ALL_SCENARIOS",
    "ALL_SHAPES",
    "ContentionScenario",
    "FraudScenario",
    "LeaderboardScenario",
    "LinearRoadScenario",
    "Op",
    "Rng",
    "RunResult",
    "Scenario",
    "run_shape",
    "state_digest",
]
