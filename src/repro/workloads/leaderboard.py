"""Sessionized leaderboard: one stream fanning out to two subscribers.

Game events ``(player, t, pts)`` feed a workflow with *two* subscribed
procedures — the PE-trigger fan-out shape: each committed batch fires
both deliveries, each in its own transaction, exactly-once.  ``lb_tally``
keeps running totals; ``lb_sessionize`` maintains gap-based sessions
(a quiet period longer than ``GAP`` closes the session and folds it
into the player's best score).  A third, *diagnostic* PE trigger counts
firings into ``monitor`` — user PE triggers are at-most-once across
crashes (paper §3.2.3), so that table is deliberately excluded from the
conformance digest.

Partition-safe: everything is keyed by ``player``; session arithmetic
only ever compares one player's consecutive event times.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.common.types import ColumnType as T
from repro.storage.schema import schema
from repro.workloads.gen import Rng
from repro.workloads.scenario import Op, Scale, Scenario, ingest

GAP = 3  # a gap > GAP ticks between a player's events closes the session


def deploy(db, part) -> None:
    db.create_stream(
        schema(
            "events",
            ("player", T.INTEGER),
            ("t", T.INTEGER),
            ("pts", T.INTEGER),
        )
    )
    db.create_table(
        schema(
            "totals",
            ("player", T.INTEGER, False),
            ("games", T.BIGINT, False),
            ("points", T.BIGINT, False),
            primary_key=["player"],
        )
    )
    db.create_table(
        schema(
            "sessions",
            ("player", T.INTEGER, False),
            ("started", T.INTEGER, False),
            ("last_t", T.INTEGER, False),
            ("pts", T.BIGINT, False),
            ("best", T.BIGINT, False),
            ("closed", T.INTEGER, False),
            primary_key=["player"],
        )
    )
    db.create_table(
        schema("monitor", ("id", T.INTEGER, False), ("fires", T.BIGINT, False),
               primary_key=["id"])
    )
    db.execute("INSERT INTO monitor (id, fires) VALUES (0, 0)")

    @db.register_procedure
    def lb_tally(ctx, batch):
        for player, _t, pts in batch.rows:
            cur = ctx.query("SELECT games FROM totals WHERE player = ?", (player,))
            if cur:
                ctx.execute(
                    "UPDATE totals SET games = games + 1, points = points + ? "
                    "WHERE player = ?",
                    (pts, player),
                )
            else:
                ctx.execute(
                    "INSERT INTO totals (player, games, points) VALUES (?, 1, ?)",
                    (player, pts),
                )

    @db.register_procedure
    def lb_sessionize(ctx, batch):
        for player, t, pts in batch.rows:
            cur = ctx.query(
                "SELECT started, last_t, pts, best, closed FROM sessions "
                "WHERE player = ?",
                (player,),
            )
            if not cur:
                ctx.execute(
                    "INSERT INTO sessions (player, started, last_t, pts, best, closed) "
                    "VALUES (?, ?, ?, ?, ?, 0)",
                    (player, t, t, pts, pts),
                )
            elif t - cur[0]["last_t"] > GAP:
                best = max(cur[0]["best"], cur[0]["pts"])
                ctx.execute(
                    "UPDATE sessions SET started = ?, last_t = ?, pts = ?, "
                    "best = ?, closed = ? WHERE player = ?",
                    (t, t, pts, max(best, pts), cur[0]["closed"] + 1, player),
                )
            else:
                ctx.execute(
                    "UPDATE sessions SET last_t = ?, pts = pts + ?, best = ? "
                    "WHERE player = ?",
                    (t, pts, max(cur[0]["best"], cur[0]["pts"] + pts), player),
                )

    db.create_workflow(
        "leaderboard", [("events", "lb_tally"), ("events", "lb_sessionize")]
    )

    def monitor_fire(db, batch):
        db.execute("UPDATE monitor SET fires = fires + 1 WHERE id = 0")

    db.create_pe_trigger("lb_monitor", "events", monitor_fire)


@dataclass
class LeaderboardScenario(Scenario):
    PLAYERS = 12

    name: str = "leaderboard"
    partition_keys: dict = field(default_factory=lambda: {"events": "player"})
    # monitor is excluded: user PE triggers are at-most-once across crashes
    output_tables: tuple = ("totals", "sessions")

    def deploy(self, db, part) -> None:
        deploy(db, part)

    def ops(self, seed: int, scale: Scale) -> list[Op]:
        rng = Rng(seed)
        script: list[Op] = []
        for tick in range(scale.batches):
            rows = []
            for _ in range(scale.rows_per_batch):
                player = rng.randint(0, self.PLAYERS - 1)
                # time advances with the batch; spread inside a wide tick so
                # idle players accumulate > GAP gaps and close sessions
                t = tick * (GAP + 2) + rng.randint(0, 1)
                rows.append((player, t, rng.randint(1, 50)))
            rows.sort(key=lambda r: (r[0], r[1]))  # per-player time-ordered
            script.append(ingest("events", rows))
        return script

    def check(
        self,
        read: Callable[[str], list[tuple]],
        ops: Sequence[Op],
        aborts: int,
    ) -> list[str]:
        bad: list[str] = []
        events = self.ingested_rows(ops, "events")
        games: dict[int, int] = {}
        points: dict[int, int] = {}
        last_t: dict[int, int] = {}
        for player, t, pts in events:
            games[player] = games.get(player, 0) + 1
            points[player] = points.get(player, 0) + pts
            last_t[player] = max(last_t.get(player, t), t)

        # exactly-once on the tally branch: per-player counts and sums
        totals = {p: (g, s) for p, g, s in read("SELECT player, games, points FROM totals")}
        for player in games:
            if totals.get(player) != (games[player], points[player]):
                bad.append(
                    f"totals[{player}] = {totals.get(player)}, "
                    f"want {(games[player], points[player])}"
                )
        if set(totals) != set(games):
            bad.append(f"totals players {sorted(totals)} != {sorted(games)}")

        # ordering + exactly-once on the sessionize branch
        for player, _started, lt, _pts, _best, _closed in read(
            "SELECT player, started, last_t, pts, best, closed FROM sessions"
        ):
            if lt != last_t.get(player):
                bad.append(f"sessions[{player}].last_t = {lt}, want {last_t.get(player)}")
        return bad
