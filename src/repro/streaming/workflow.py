"""Workflow DAGs: stored procedures wired into dataflow graphs (paper §2, §3.2).

A workflow is a set of **edges** ``(in_stream, procedure[, out_stream])``:
a committed atomic batch in ``in_stream`` triggers one invocation of
``procedure`` with that :class:`~repro.streaming.stream.Batch` — one
transaction per (procedure, batch) pair, exactly as the paper's
"transaction execution = (stored procedure, input batch)".  ``out_stream``
declares where the procedure emits its results; it closes the graph so
cycles can be rejected at definition time.

Execution guarantees (enforced by the runtime's scheduler):

* **batch-id order** — deliveries are dispatched smallest-batch-first, so
  batch *b* flows through the whole DAG path before batch *b+1* enters it,
  and each subscription observes strictly increasing batch ids
  (:class:`~repro.common.errors.ScheduleViolation` otherwise);
* **exactly-once** — a delivery is recorded as processed only when its
  transaction commits; an aborted delivery stays at the head of the queue
  and is re-run (its rolled-back effects never became visible, so the
  retry's effects happen exactly once);
* **no interleaving** — the single-partition serial model runs one
  delivery transaction at a time.

Exactly-once **survives crashes** when the database is opened with
``recovery_dir=`` (paper §4.4): every committed delivery is command-
logged with its ``(stream, batch_id, procedure)`` position, strong
recovery replays those records in commit order, and deliveries whose
records died in the crash (committed upstream, never delivered) are
regenerated from the persisted ``delivered`` watermarks — the lost hops
never committed, so re-running them is their first visible execution.
Weak recovery skips delivery records entirely and re-derives the whole
DAG by re-driving it through the scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from ..common.errors import WorkflowError


def stream_arcs(edges: Iterable["WorkflowEdge"]) -> list[tuple[str, str]]:
    """``(in_stream, out_stream)`` arcs of the given edges (hops with no
    declared output contribute nothing to the graph)."""
    return [(e.in_stream, e.out_stream) for e in edges if e.out_stream is not None]


def find_cycle(arcs: Sequence[tuple[str, str]]) -> Optional[list[str]]:
    """The first cycle in a stream graph, as ``[s1, s2, ..., s1]``; None
    when the graph is acyclic."""
    graph: dict[str, list[str]] = {}
    for src, dst in arcs:
        graph.setdefault(src, []).append(dst)
    WHITE, GREY, BLACK = 0, 1, 2
    state: dict[str, int] = {}

    def visit(node: str, path: list[str]) -> Optional[list[str]]:
        state[node] = GREY
        path.append(node)
        for nxt in graph.get(node, ()):
            colour = state.get(nxt, WHITE)
            if colour == GREY:
                return path[path.index(nxt):] + [nxt]
            if colour == WHITE:
                found = visit(nxt, path)
                if found is not None:
                    return found
        path.pop()
        state[node] = BLACK
        return None

    for node in graph:
        if state.get(node, WHITE) == WHITE:
            found = visit(node, [])
            if found is not None:
                return found
    return None


@dataclass(frozen=True)
class WorkflowEdge:
    """One dataflow hop: ``in_stream`` batches drive ``procedure``."""

    in_stream: str
    procedure: str
    out_stream: Optional[str] = None


def _normalise_edge(spec) -> WorkflowEdge:
    if isinstance(spec, WorkflowEdge):
        return spec
    if isinstance(spec, (tuple, list)) and len(spec) in (2, 3):
        in_stream, procedure = spec[0], spec[1]
        out_stream = spec[2] if len(spec) == 3 else None
        return WorkflowEdge(
            in_stream.lower(),
            procedure.lower(),
            out_stream.lower() if out_stream else None,
        )
    raise WorkflowError(
        f"bad workflow edge {spec!r}: expected (in_stream, procedure) "
        f"or (in_stream, procedure, out_stream)"
    )


class Workflow:
    """A validated dataflow DAG over registered streams and procedures."""

    __slots__ = ("name", "edges")

    def __init__(self, name: str, edges: Sequence):
        if not name:
            raise WorkflowError("workflow name must be non-empty")
        if not edges:
            raise WorkflowError(f"workflow {name!r} must have at least one edge")
        self.name = name.lower()
        self.edges: tuple[WorkflowEdge, ...] = tuple(_normalise_edge(e) for e in edges)
        seen: set[tuple[str, str]] = set()
        for edge in self.edges:
            key = (edge.in_stream, edge.procedure)
            if key in seen:
                raise WorkflowError(
                    f"workflow {name!r}: duplicate subscription of procedure "
                    f"{edge.procedure!r} to stream {edge.in_stream!r}"
                )
            seen.add(key)
        self._check_acyclic()

    def _check_acyclic(self) -> None:
        """Reject cycles in this workflow's stream graph.

        A cyclic dataflow would re-trigger its own ancestors forever; the
        paper's workflows are DAGs.  The runtime additionally re-checks the
        *union* of all registered workflows at creation time, so two
        individually acyclic workflows cannot form a joint cycle either.
        """
        cycle = find_cycle(stream_arcs(self.edges))
        if cycle is not None:
            raise WorkflowError(
                f"workflow {self.name!r} is cyclic: {' -> '.join(cycle)}"
            )

    def subscriptions(self) -> list[tuple[str, str]]:
        """``(in_stream, procedure)`` pairs, in edge order."""
        return [(e.in_stream, e.procedure) for e in self.edges]

    def describe(self) -> list[dict[str, Optional[str]]]:
        return [
            {"stream": e.in_stream, "procedure": e.procedure, "out": e.out_stream}
            for e in self.edges
        ]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        hops = ", ".join(
            f"{e.in_stream}->{e.procedure}" + (f"->{e.out_stream}" if e.out_stream else "")
            for e in self.edges
        )
        return f"Workflow({self.name!r}: {hops})"
