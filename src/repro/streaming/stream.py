"""Streams: time-varying tables ingested in atomic batches (paper §3.2.1).

*"S-Store implements a stream as a time-varying, H-Store table"* — a
:class:`Stream` wraps an ordinary :class:`~repro.storage.table.Table` of
:class:`~repro.storage.schema.TableKind.STREAM` whose schema is the user's
declared schema **extended** with two hidden metadata columns:

``__batch_id__``
    The atomic batch the tuple arrived in.  Batch ids are dense and
    strictly increasing per stream (starting at 1); a batch is the unit of
    both transactional ingest and trigger-driven downstream processing.
``__seq__``
    A per-stream arrival sequence number.  Monotonically increasing and
    never reused (aborted ingests leave gaps, like rowids), it gives
    windows a total arrival order even across batches.

The ingest contract (enforced by the runtime, surfaced as
:class:`~repro.common.errors.BatchOrderError`):

* batch ``last_committed + 1`` is applied immediately, as one transaction;
* a batch from the future (``> last_committed + 1``) is **queued** and
  applied — in order, each as its own transaction — once the gap fills;
* a batch at or before ``last_committed`` (or already queued) is rejected.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from ..common.types import ColumnType
from ..storage.schema import Column, TableKind, TableSchema
from ..storage.table import Table

#: Hidden metadata column names shared by streams and windows.
BATCH_COLUMN = "__batch_id__"
SEQ_COLUMN = "__seq__"

#: The metadata columns appended to a declared stream schema.
STREAM_METADATA = (
    Column(BATCH_COLUMN, ColumnType.BIGINT, nullable=False),
    Column(SEQ_COLUMN, ColumnType.BIGINT, nullable=False),
)


def stream_schema(declared: TableSchema) -> TableSchema:
    """The physical schema of a stream: declared columns + hidden metadata."""
    return declared.extended(STREAM_METADATA, kind=TableKind.STREAM)


@dataclass(frozen=True)
class Batch:
    """One committed atomic batch: the unit of dataflow in a workflow.

    ``rows`` are declared-width tuples (hidden metadata stripped), in
    arrival order — what a downstream stored procedure receives.
    """

    stream: str
    batch_id: int
    rows: tuple

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Batch({self.stream!r}, id={self.batch_id}, rows={len(self.rows)})"


@dataclass
class Stream:
    """One registered stream: its table, declared schema, and batch state."""

    declared: TableSchema
    table: Table
    #: highest batch id made durable by a committed transaction
    last_committed: int = 0
    #: next arrival sequence number (gaps allowed: aborts consume numbers)
    next_seq: int = 1
    #: out-of-order future batches waiting for the gap to fill,
    #: ``batch_id -> raw rows`` as handed to ``ingest``
    pending: dict[int, Sequence[Any]] = field(default_factory=dict)
    #: garbage-collection low-watermark: rows of batches **below** this id
    #: have been reclaimed (every workflow subscriber consumed them); the
    #: horizon batch itself is retained so the newest consumed contents
    #: stay queryable
    gc_horizon: int = 0
    #: lifetime count of rows dropped by stream GC (``stats()`` surfaces it)
    reclaimed_rows: int = 0

    @property
    def name(self) -> str:
        return self.table.name

    @property
    def expected_batch(self) -> int:
        """The only batch id that can be applied right now."""
        return self.last_committed + 1

    def next_auto_batch(self) -> int:
        """Default batch id for an ingest that does not name one: after the
        newest batch this stream has seen (committed or queued)."""
        newest = max(self.pending) if self.pending else self.last_committed
        return max(newest, self.last_committed) + 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Stream({self.name!r}, last_batch={self.last_committed}, "
            f"pending={sorted(self.pending)})"
        )
