"""Windows: incrementally maintained slices of a stream (paper §3.2.2).

A window is a :class:`~repro.storage.schema.TableKind.WINDOW` table over a
source stream.  Its physical schema is the stream's *declared* schema plus
three hidden metadata columns — ``__batch_id__`` and ``__seq__`` copied
from the source tuple, and ``__active__``, the staging flag:

* ``__active__ = 0`` — **staged**: the tuple has arrived but the window has
  not slid over it yet.  Staged tuples are invisible to SQL
  (:meth:`WindowTable.is_visible`), matching the paper: *"arriving tuples
  are staged until the slide condition is met"*.
* ``__active__ = 1`` — part of the window's current contents.

Two slide disciplines:

* ``unit="rows"`` — a tuple-based sliding window of ``size`` rows
  advancing every ``slide`` arrivals;
* ``unit="batches"`` — a batch-based (logical-time) window of ``size``
  atomic batches advancing every ``slide`` batches; batch ids are the
  time axis, so this is the repo's time-based window.

Every mutation (stage, activate, evict) goes through the owning
transaction's undo log, so window state is exactly as transactional as
table state: an aborted transaction rolls its window maintenance back and
a retried batch re-slides identically.

Visibility (paper: a window is visible only to transaction executions of
the stored procedure that defined it): a window created with ``owner=``
may only be read by SQL running inside that procedure's invocations —
enforced by the engine's access guard, raising
:class:`~repro.common.errors.WindowVisibilityError` elsewhere.  Owned
windows advance inside the owning procedure's delivery transaction;
unowned windows advance inside the transaction that ingests the batch.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..common.errors import SchemaError
from ..common.types import ColumnType
from ..storage.schema import Column, TableKind, TableSchema
from ..storage.table import Table
from .stream import BATCH_COLUMN, SEQ_COLUMN, Stream

#: Hidden staging-state column (paper §3.2.2 "staging" state).
ACTIVE_COLUMN = "__active__"

STAGED = 0
ACTIVE = 1

_WINDOW_METADATA = (
    Column(BATCH_COLUMN, ColumnType.BIGINT, nullable=False),
    Column(SEQ_COLUMN, ColumnType.BIGINT, nullable=False),
    Column(ACTIVE_COLUMN, ColumnType.INTEGER, nullable=False, default=STAGED),
)


@dataclass(frozen=True)
class WindowSpec:
    """Size/slide discipline of one window."""

    unit: str  # "rows" | "batches"
    size: int
    slide: int

    def __post_init__(self) -> None:
        if self.unit not in ("rows", "batches"):
            raise SchemaError(f"window unit must be 'rows' or 'batches', got {self.unit!r}")
        if self.size < 1 or self.slide < 1:
            raise SchemaError(
                f"window size and slide must be >= 1 (got size={self.size}, slide={self.slide})"
            )
        if self.slide > self.size:
            raise SchemaError(
                f"window slide ({self.slide}) cannot exceed its size ({self.size})"
            )


class WindowTable(Table):
    """A :class:`Table` whose SQL visibility honours the staging flag."""

    __slots__ = ("_active_pos",)

    def __init__(self, schema: TableSchema):
        super().__init__(schema)
        self._active_pos = schema.position(ACTIVE_COLUMN)

    def is_visible(self, row: tuple) -> bool:
        return row[self._active_pos] == ACTIVE


def window_schema(name: str, source_declared: TableSchema) -> TableSchema:
    """Physical schema of a window over ``source_declared``.

    Key constraints are dropped: a window holds several batches, so a key
    that is unique per batch is not unique across the window.
    """
    return source_declared.extended(
        _WINDOW_METADATA, kind=TableKind.WINDOW, name=name, drop_constraints=True
    )


class Window:
    """One registered window: source stream, spec, owner, and its table."""

    __slots__ = ("spec", "owner", "table", "source", "_batch_pos", "_seq_pos", "_active_pos")

    def __init__(self, name: str, source: Stream, spec: WindowSpec, owner: str | None):
        self.spec = spec
        self.owner = owner
        self.source = source.name
        self.table = WindowTable(window_schema(name, source.declared))
        schema = self.table.schema
        self._batch_pos = schema.position(BATCH_COLUMN)
        self._seq_pos = schema.position(SEQ_COLUMN)
        self._active_pos = schema.position(ACTIVE_COLUMN)

    @property
    def name(self) -> str:
        return self.table.name

    # -- incremental maintenance ---------------------------------------------
    #
    # ``ops`` is the runtime's transactional mutation helper: every insert /
    # update / delete is undo-logged against the current transaction and
    # charged on the clock, so window maintenance aborts and replays with
    # the rest of the transaction.

    def absorb(self, ops, ext_rows) -> None:
        """Stage newly committed source tuples, then slide if due.

        ``ext_rows`` are stream-extended rows ``(declared..., batch, seq)``
        in arrival order.
        """
        for row in ext_rows:
            ops.insert(self.table, tuple(row) + (STAGED,))
        self.slide(ops)

    def slide(self, ops) -> int:
        """Apply every due slide; returns how many slides were performed.

        The window state is scanned **once**; the slide loop updates the
        in-memory staged/active lists as it activates and evicts, so a
        large absorb costs one scan plus the rows actually touched.
        """
        staged, active = self._rows_by_state()
        slides = 0
        if self.spec.unit == "rows":
            while len(staged) >= self.spec.slide:
                advancing = staged[: self.spec.slide]
                del staged[: self.spec.slide]
                self._activate(ops, advancing)
                active.extend(advancing)
                excess = len(active) - self.spec.size
                if excess > 0:
                    for rowid, _row in active[:excess]:
                        ops.delete(self.table, rowid)
                    del active[:excess]
                slides += 1
                ops.charge("window_slide")
            return slides

        # unit == "batches": batch ids are the (logical) time axis
        batch_pos = self._batch_pos
        while True:
            staged_batches = _ordered_batches(staged, batch_pos)
            if len(staged_batches) < self.spec.slide:
                return slides
            advancing_ids = set(staged_batches[: self.spec.slide])
            advancing = [p for p in staged if p[1][batch_pos] in advancing_ids]
            staged = [p for p in staged if p[1][batch_pos] not in advancing_ids]
            self._activate(ops, advancing)
            active.extend(advancing)
            active_batches = _ordered_batches(active, batch_pos)
            excess = len(active_batches) - self.spec.size
            if excess > 0:
                evict_ids = set(active_batches[:excess])
                for rowid, row in active:
                    if row[batch_pos] in evict_ids:
                        ops.delete(self.table, rowid)
                active = [p for p in active if p[1][batch_pos] not in evict_ids]
            slides += 1
            ops.charge("window_slide")

    def _rows_by_state(self) -> tuple[list, list]:
        """(staged, active) as ``(rowid, row)`` lists in arrival order."""
        staged, active = [], []
        pos = self._active_pos
        for rowid, row in self.table.scan():
            (active if row[pos] == ACTIVE else staged).append((rowid, row))
        return staged, active

    def _activate(self, ops, pairs) -> None:
        pos = self._active_pos
        for rowid, row in pairs:
            new = list(row)
            new[pos] = ACTIVE
            ops.update(self.table, rowid, new)

    # -- introspection ---------------------------------------------------------

    def counts(self) -> dict[str, int]:
        staged, active = self._rows_by_state()
        return {"active_rows": len(active), "staged_rows": len(staged)}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        own = f", owner={self.owner!r}" if self.owner else ""
        return (
            f"Window({self.name!r} over {self.source!r}, "
            f"{self.spec.size}/{self.spec.slide} {self.spec.unit}{own})"
        )


def _ordered_batches(pairs, batch_pos: int) -> list[int]:
    """Distinct batch ids among ``(rowid, row)`` pairs, in first-seen
    (arrival) order."""
    seen: dict[int, None] = {}
    for _rowid, row in pairs:
        seen.setdefault(row[batch_pos], None)
    return list(seen)
