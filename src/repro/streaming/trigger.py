"""EE and PE triggers: the dataflow wiring of the engine (paper §3.2.3).

Two trigger classes, mirroring S-Store's split:

* **EE (execution-engine) triggers** fire *per statement*, inside the
  transaction that inserts into their stream.  The body runs with a
  :class:`TriggerContext` — it may execute SQL and ``emit`` into other
  streams, and every effect it produces belongs to the same transaction:
  if the transaction aborts, the trigger's work is rolled back with it.
  Each firing charges ``ee_trigger_us``.

* **PE (partition-engine) triggers** fire *per transaction commit*: when a
  transaction commits an atomic batch into their stream, the firing is
  charged (``pe_trigger_us``) and queued; the body ``fn(db, batch)`` runs
  after the committing transaction has fully closed, outside any
  transaction, so it may start transactions of its own (``db.call``,
  ``db.ingest``...).  Workflow edges are PE triggers whose body is a
  stored-procedure invocation (see :mod:`repro.streaming.workflow`).

An aborted transaction publishes no batches, so it fires no PE triggers —
and any EE-trigger effects it produced are undone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Sequence

from ..sql.executor import ResultSet

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..engine.database import Database
    from ..engine.transaction import Transaction

#: EE trigger body: ``fn(ctx, rows)`` — rows are the declared-width tuples
#: just inserted into the trigger's stream.
EETriggerFn = Callable[..., Any]

#: PE trigger body: ``fn(db, batch)`` — runs post-commit, outside any txn.
PETriggerFn = Callable[..., Any]

#: EE triggers may cascade (a trigger emits into a stream that has its own
#: triggers); this caps runaway cycles.
MAX_EE_DEPTH = 8


@dataclass(frozen=True)
class EETrigger:
    name: str
    stream: str
    fn: EETriggerFn


@dataclass(frozen=True)
class PETrigger:
    name: str
    stream: str
    fn: PETriggerFn


class TriggerContext:
    """What an EE trigger body sees: its firing transaction's executor.

    Like :class:`~repro.engine.procedure.ProcedureContext` but without an
    abort escape hatch — a trigger that wants the transaction dead raises.
    """

    __slots__ = ("_db", "txn", "trigger", "batch_id")

    def __init__(self, db: "Database", txn: "Transaction", trigger: EETrigger, batch_id: int):
        self._db = db
        self.txn = txn
        self.trigger = trigger
        #: the batch id of the insert that fired this trigger
        self.batch_id = batch_id

    def execute(self, sql: str, params: Sequence[Any] = ()) -> ResultSet:
        """Run a statement inside the firing transaction (plan-cached)."""
        return self._db._execute(self._db.prepare(sql), params, self.txn)

    def query(self, sql: str, params: Sequence[Any] = ()) -> list[dict[str, Any]]:
        return self.execute(sql, params).to_dicts()

    def emit(self, stream: str, rows, batch_id: int | None = None) -> int:
        """Append an atomic batch to another stream, in this transaction."""
        return self._db.streaming.emit(self.txn, stream, rows, batch_id)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TriggerContext({self.trigger.name!r}, txn={self.txn.txn_id})"
