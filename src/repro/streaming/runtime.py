"""The streaming runtime: one partition's dataflow state and scheduler.

This module owns everything the paper layers on top of the OLTP engine
(§3.2): the stream/window registry, EE/PE trigger dispatch, the workflow
subscription table, and the batch-ordered delivery queue.  It plugs into
the engine through exactly three seams:

* the executor's **access guard** (:meth:`StreamingRuntime.guard`) — SQL
  may read streams freely, but direct DML against stream/window tables is
  rejected (ingest is the only write path), and owned windows are visible
  only inside their owning procedure (paper §3.2.2);
* the transaction's **commit hooks** — an atomic batch staged by
  ``ingest``/``emit`` is published (stream watermark advanced, PE triggers
  fired and queued) only when its transaction commits; an abort publishes
  nothing;
* the database's **procedure invocation** path — workflow deliveries run
  downstream procedures as ordinary one-transaction calls, with owned
  windows advanced inside the delivery transaction before the body runs.

Scheduling: deliveries are dispatched smallest-batch-id-first (FIFO among
equal ids), so a batch flows through its whole DAG path before the next
batch enters it.  A delivery whose transaction aborts goes back to the
head of the queue and the error propagates; ``db.drain()`` retries it —
its rolled-back effects never became visible, so the batch is processed
exactly once.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Optional, Sequence

from ..common.errors import (
    BatchOrderError,
    NoSuchTableError,
    RecoveryError,
    ScheduleViolation,
    SchemaError,
    StreamingError,
    TransactionError,
    TriggerError,
    WindowVisibilityError,
    WorkflowError,
)
from ..obs.tracing import NOOP_SPAN
from ..storage.schema import TableKind, TableSchema
from ..storage.table import Table
from .stream import BATCH_COLUMN, Batch, Stream, stream_schema
from .trigger import MAX_EE_DEPTH, EETrigger, PETrigger, TriggerContext
from .window import Window, WindowSpec
from .workflow import Workflow, find_cycle, stream_arcs

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..engine.database import Database
    from ..engine.transaction import Transaction


class _TxnOps:
    """Transactional mutation helper for the streaming layer's physical
    writes (batch inserts, window staging/activation/eviction).

    Mirrors what :class:`~repro.sql.executor.ExecutionContext` does for SQL
    writes: every mutation is appended to the transaction's undo log and
    charged on the clock, so streaming maintenance aborts and replays with
    the rest of the transaction.
    """

    __slots__ = ("_db", "_txn")

    def __init__(self, db: "Database", txn: "Transaction"):
        self._db = db
        self._txn = txn

    def insert(self, table: Table, values: Sequence[Any]) -> int:
        rowid = table.insert(values)
        self._txn.undo.on_insert(table, rowid)
        self._db.clock.charge("rows_inserted", self._db.clock.cost.sql_row_us)
        return rowid

    def insert_many(self, table: Table, rows: Sequence[Sequence[Any]]) -> range:
        """Bulk insert: one undo-log range record and one (count-aggregated)
        clock charge for the whole batch — identical events and simulated
        time as per-row inserts, amortized bookkeeping."""
        rowids = table.insert_many(rows)
        n = len(rowids)
        if n:
            self._txn.undo.on_insert_many(table, rowids.start, n)
            self._db.clock.charge(
                "rows_inserted", self._db.clock.cost.sql_row_us * n, count=n
            )
        return rowids

    def update(self, table: Table, rowid: int, values: Sequence[Any]) -> None:
        old = table.update_row(rowid, values)
        self._txn.undo.on_update(table, rowid, old)
        self._db.clock.charge("rows_updated", self._db.clock.cost.sql_row_us)

    def delete(self, table: Table, rowid: int) -> None:
        old = table.delete_row(rowid)
        self._txn.undo.on_delete(table, rowid, old)
        self._db.clock.charge("rows_deleted", self._db.clock.cost.sql_row_us)

    def charge(self, event: str) -> None:
        self._db.clock.charge_cost(event)


@dataclass
class _Delivery:
    """One queued post-commit firing: a workflow hop or a user PE trigger."""

    batch: Batch
    ext_rows: tuple  # stream-extended rows, for owned-window advancement
    kind: str        # "proc" | "pe_fn"
    target: str      # procedure name | trigger name
    fn: Any = None   # PE trigger body when kind == "pe_fn"


class StreamingRuntime:
    """All streaming state of one :class:`~repro.engine.Database`."""

    def __init__(self, db: "Database"):
        self._db = db
        self.streams: dict[str, Stream] = {}
        self.windows: dict[str, Window] = {}
        self._windows_by_source: dict[str, list[Window]] = {}
        self._ee_triggers: dict[str, list[EETrigger]] = {}
        self._pe_triggers: dict[str, list[PETrigger]] = {}
        self._trigger_names: set[str] = set()
        self.workflows: dict[str, Workflow] = {}
        #: stream name -> [(workflow name, procedure name)]
        self._subscriptions: dict[str, list[tuple[str, str]]] = {}
        #: min-heap of [batch_id, enqueue_seq, _Delivery]
        self._queue: list[list] = []
        self._enq_seq = 0
        #: batches staged by the open transaction, keyed by txn id
        self._txn_staged: dict[int, list[tuple[Stream, int, tuple]]] = {}
        self._draining = False
        self._delivering: Optional[_Delivery] = None
        self._ee_depth = 0
        #: (stream, procedure) -> last successfully delivered batch id
        self.delivered: dict[tuple[str, str], int] = {}
        self.deliveries_done = 0
        self.delivery_retries = 0
        #: lifetime rows dropped by stream garbage collection (all streams)
        self.rows_reclaimed = 0
        #: recovery-replay mode: None (normal), "strong" (watermarks only,
        #: deliveries come from the log), or "weak" (deliveries regenerate
        #: through the scheduler, user PE triggers stay suppressed — their
        #: transactional effects replay from their own log records)
        self.replay_mode: Optional[str] = None

    # -- registry lookups -----------------------------------------------------

    def _stream(self, name: str) -> Stream:
        stream = self.streams.get(name.lower())
        if stream is None:
            if self._db.catalog.has_table(name):
                raise StreamingError(
                    f"table {name!r} is a "
                    f"{self._db.catalog.table(name).schema.kind.value}, not a STREAM"
                )
            known = self._db.catalog.table_names(TableKind.STREAM)
            raise NoSuchTableError(
                f"no stream {name!r} (have: {', '.join(known) or 'none'})"
            )
        return stream

    # -- DDL ------------------------------------------------------------------

    def create_stream(self, declared: TableSchema) -> Stream:
        """Register a stream from the user's *declared* schema; the physical
        table carries the hidden ``__batch_id__``/``__seq__`` columns."""
        if declared.hidden_columns():
            raise SchemaError(
                f"stream {declared.name!r}: column names starting with '__' are "
                f"reserved for engine metadata ({', '.join(declared.hidden_columns())})"
            )
        table = Table(stream_schema(declared))
        self._db.catalog.add_table(table)
        stream = Stream(declared=declared, table=table)
        self.streams[table.name] = stream
        return stream

    def create_window(
        self,
        name: str,
        source: str,
        *,
        size: int,
        slide: int,
        unit: str = "rows",
        owner: Optional[str] = None,
    ) -> Window:
        stream = self._stream(source)
        if owner is not None:
            owner = owner.lower()
            if owner not in self._db._procedures:
                raise StreamingError(
                    f"window {name!r}: owner {owner!r} is not a registered "
                    f"stored procedure"
                )
        window = Window(name.lower(), stream, WindowSpec(unit, size, slide), owner)
        self._db.catalog.add_table(window.table)
        self.windows[window.name] = window
        self._windows_by_source.setdefault(stream.name, []).append(window)
        return window

    def create_ee_trigger(self, name: str, stream: str, fn) -> EETrigger:
        self._check_trigger_name(name)
        target = self._stream(stream)  # EE triggers attach to streams only
        trigger = EETrigger(name.lower(), target.name, fn)
        self._ee_triggers.setdefault(target.name, []).append(trigger)
        self._trigger_names.add(trigger.name)
        return trigger

    def create_pe_trigger(self, name: str, stream: str, fn) -> PETrigger:
        self._check_trigger_name(name)
        target = self._stream(stream)  # a PE trigger on a window is invalid
        trigger = PETrigger(name.lower(), target.name, fn)
        self._pe_triggers.setdefault(target.name, []).append(trigger)
        self._trigger_names.add(trigger.name)
        return trigger

    def _check_trigger_name(self, name: str) -> None:
        if not name:
            raise TriggerError("trigger name must be non-empty")
        if name.lower() in self._trigger_names:
            raise TriggerError(f"trigger {name!r} already exists")

    def create_workflow(self, name: str, edges: Sequence) -> Workflow:
        key = name.lower()
        if key in self.workflows:
            raise WorkflowError(f"workflow {name!r} already exists")
        workflow = Workflow(key, edges)
        for edge in workflow.edges:
            self._stream(edge.in_stream)
            if edge.out_stream is not None:
                self._stream(edge.out_stream)
            if edge.procedure not in self._db._procedures:
                raise WorkflowError(
                    f"workflow {name!r}: procedure {edge.procedure!r} is not "
                    f"registered"
                )
            for other_subs in self._subscriptions.get(edge.in_stream, ()):
                if other_subs[1] == edge.procedure:
                    raise WorkflowError(
                        f"workflow {name!r}: procedure {edge.procedure!r} is "
                        f"already subscribed to stream {edge.in_stream!r} by "
                        f"workflow {other_subs[0]!r}"
                    )
        # individually acyclic workflows may still close a loop together —
        # a joint cycle would re-trigger deliveries forever, so check the
        # union of every registered workflow's arcs plus the candidate's
        arcs = stream_arcs(e for wf in self.workflows.values() for e in wf.edges)
        arcs += stream_arcs(workflow.edges)
        cycle = find_cycle(arcs)
        if cycle is not None:
            raise WorkflowError(
                f"workflow {name!r} would close a cycle across workflows: "
                f"{' -> '.join(cycle)}"
            )
        self.workflows[key] = workflow
        for edge in workflow.edges:
            self._subscriptions.setdefault(edge.in_stream, []).append(
                (key, edge.procedure)
            )
        return workflow

    def unregister_table(self, name: str) -> bool:
        """Called by ``Database.drop_table``; returns True when ``name`` was
        a streaming object (and has now been unregistered)."""
        key = name.lower()
        if key in self.streams:
            dependents = [w.name for w in self._windows_by_source.get(key, ())]
            dependents += [t.name for t in self._ee_triggers.get(key, ())]
            dependents += [t.name for t in self._pe_triggers.get(key, ())]
            dependents += [
                wf.name
                for wf in self.workflows.values()
                if any(e.in_stream == key or e.out_stream == key for e in wf.edges)
            ]
            if dependents:
                raise StreamingError(
                    f"cannot drop stream {name!r}: referenced by "
                    f"{', '.join(sorted(set(dependents)))}"
                )
            del self.streams[key]
            return True
        if key in self.windows:
            window = self.windows.pop(key)
            self._windows_by_source[window.source].remove(window)
            return True
        return False

    # -- the access guard (installed as Database._guard) ----------------------

    def guard(self, table: Table, mode: str) -> None:
        kind = table.schema.kind
        if kind is TableKind.TABLE:
            return
        if mode == "write":
            if kind is TableKind.STREAM:
                raise StreamingError(
                    f"direct DML on stream {table.name!r} is not allowed; "
                    f"ingest atomic batches with db.ingest({table.name!r}, rows) "
                    f"or ctx.emit({table.name!r}, rows) inside a procedure"
                )
            raise StreamingError(
                f"direct DML on window {table.name!r} is not allowed; windows "
                f"are maintained by the streaming layer as their source "
                f"stream's batches commit"
            )
        if kind is TableKind.WINDOW:
            window = self.windows.get(table.name)
            if window is not None and window.owner is not None:
                current = self._db._current_proc
                if current != window.owner:
                    raise WindowVisibilityError(
                        f"window {table.name!r} is only visible inside its "
                        f"owning procedure {window.owner!r} "
                        f"(current: {current or 'ad-hoc SQL'})"
                    )

    # -- ingest / emit ---------------------------------------------------------

    def ingest(self, stream_name: str, rows, batch_id: Optional[int] = None) -> list[int]:
        """Ingest one atomic batch (one transaction per applied batch).

        Returns the batch ids applied — empty when the batch arrived from
        the future and was queued; several when it filled a gap and queued
        successors were applied behind it.  After applying, drains the
        delivery queue (downstream workflow procedures run here), so a
        downstream abort propagates to this caller *after* the ingested
        batch itself has committed; ``db.drain()`` retries the delivery.
        """
        db = self._db
        if db._txn is not None:
            raise TransactionError(
                "db.ingest opens its own transaction per atomic batch; finish "
                "the open transaction first (inside a procedure, use ctx.emit)"
            )
        stream = self._stream(stream_name)
        if batch_id is None:
            batch_id = stream.next_auto_batch()
        batch_id = int(batch_id)
        if batch_id <= stream.last_committed:
            raise BatchOrderError(
                f"stream {stream.name!r}: batch {batch_id} is not after the "
                f"last committed batch {stream.last_committed}"
            )
        if batch_id in stream.pending:
            if batch_id != stream.expected_batch:
                raise BatchOrderError(
                    f"stream {stream.name!r}: batch {batch_id} is already queued"
                )
            # the queued copy became applicable but failed to apply (that is
            # the only way it is still here): this explicit re-ingest is a
            # retry — replace the stuck copy instead of wedging the stream
            del stream.pending[batch_id]
        db.clock.charge_cost("client_submit")
        applied: list[int] = []
        if batch_id != stream.expected_batch:
            # Coerce rows now, against the declared schema: a malformed row
            # must fail this submission, not poison the gap-filling ingest
            # that eventually applies the queued batch.
            stream.pending[batch_id] = [self._coerce_declared(stream, r) for r in rows]
            return applied
        obs = db.obs
        with (
            obs.span("ingest", stream=stream.name, batch_id=batch_id)
            if obs.enabled
            else NOOP_SPAN
        ) as span:
            self._apply_batch(stream, batch_id, rows)
            applied.append(batch_id)
            while stream.expected_batch in stream.pending:
                nxt = stream.expected_batch
                self._apply_batch(stream, nxt, stream.pending[nxt])
                del stream.pending[nxt]
                applied.append(nxt)
            self.drain()
            span.set(applied=len(applied))
        return applied

    def _coerce_declared(self, stream: Stream, raw) -> tuple:
        """One declared-width row from user input (tuple or mapping), type-
        coerced and NOT-NULL-checked against the declared schema."""
        if isinstance(raw, dict):
            return stream.declared.row_from_mapping(raw)
        row = tuple(raw)
        if len(row) != stream.declared.arity():
            raise SchemaError(
                f"stream {stream.name!r} expects {stream.declared.arity()} "
                f"value(s) per row, got {len(row)}"
            )
        return stream.declared.coerce_row(row)

    def _apply_batch(self, stream: Stream, batch_id: int, rows) -> None:
        db = self._db
        capture = db._log_capture
        if capture is not None:
            # Coerce up front so the logged rows are the canonical declared
            # tuples a replayed ingest will re-coerce identically
            # (idempotent); the batch is the dataflow's external input, so
            # its rows must ride in the log record itself.
            rows = [self._coerce_declared(stream, raw) for raw in rows]
        txn = db._begin(implicit=True)
        if capture is not None:
            txn.log_record = {
                "op": "ingest",
                "stream": stream.name,
                "batch_id": batch_id,
                "rows": [list(r) for r in rows],
            }
        try:
            self._emit_into(txn, stream, batch_id, rows, coerced=capture is not None)
        except BaseException:
            txn.abort()
            raise
        txn.commit()

    def emit(self, txn: "Transaction", stream_name: str, rows, batch_id=None) -> int:
        """Append an atomic batch to a stream inside ``txn`` (procedures and
        EE triggers); published when the transaction commits."""
        db = self._db
        if txn is not db._txn or not txn.is_active:
            raise TransactionError(
                f"emit requires a live transaction (transaction {txn.txn_id} "
                f"is {txn.state})"
            )
        stream = self._stream(stream_name)
        last = stream.last_committed
        for staged_stream, staged_id, _rows in self._txn_staged.get(txn.txn_id, ()):
            if staged_stream is stream and staged_id > last:
                last = staged_id
        if batch_id is None:
            delivering = self._delivering
            if delivering is not None and delivering.batch.batch_id > last:
                # propagate the input batch id through the DAG
                batch_id = delivering.batch.batch_id
            else:
                batch_id = last + 1
        batch_id = int(batch_id)
        if batch_id <= last:
            raise BatchOrderError(
                f"stream {stream.name!r}: emitted batch {batch_id} is not "
                f"after batch {last}"
            )
        if stream.pending and batch_id >= min(stream.pending):
            # emitting past queued ingest batches would strand them forever
            # (their ids would fall at or below the new watermark)
            raise BatchOrderError(
                f"stream {stream.name!r}: emitted batch {batch_id} conflicts "
                f"with queued ingest batches {sorted(stream.pending)}"
            )
        self._emit_into(txn, stream, batch_id, rows)
        return batch_id

    def _emit_into(
        self,
        txn: "Transaction",
        stream: Stream,
        batch_id: int,
        rows,
        *,
        coerced: bool = False,
    ) -> None:
        """The one write path into a stream: insert the batch (undo-logged),
        advance unowned windows, fire EE triggers, stage for publication.

        ``coerced=True`` marks ``rows`` as already declared-width canonical
        tuples (the durable ingest path coerces up front for its log
        record), skipping a second per-row coercion pass."""
        db = self._db
        # Fail fast on a miswired pipeline: an owned window only advances
        # through deliveries of its source stream to its owner, so batches
        # flowing in while no such subscription exists would silently never
        # reach the window and every downstream aggregate would be wrong.
        for window in self._windows_by_source.get(stream.name, ()):
            if window.owner is not None and not any(
                procedure == window.owner
                for _workflow, procedure in self._subscriptions.get(stream.name, ())
            ):
                raise StreamingError(
                    f"window {window.name!r} is owned by procedure "
                    f"{window.owner!r}, which is not subscribed to stream "
                    f"{stream.name!r} in any workflow; its contents would "
                    f"silently never advance — wire the owner into a "
                    f"workflow before ingesting"
                )
        ops = _TxnOps(db, txn)
        db.clock.charge_cost("sql_stmt")  # the batch insert is one statement
        # Vectorized batch apply: coerce the whole batch against the
        # declared schema, stamp metadata, and bulk-insert in one pass —
        # one undo range record, one index-maintenance loop per index.
        if coerced:
            declared_rows = rows if isinstance(rows, list) else list(rows)
        else:
            declared_rows = [self._coerce_declared(stream, raw) for raw in rows]
        seq0 = stream.next_seq
        stream.next_seq = seq0 + len(declared_rows)
        table = stream.table
        rowids = ops.insert_many(
            table,
            [d + (batch_id, seq0 + i) for i, d in enumerate(declared_rows)],
        )
        frozen = tuple(table.get(rowid) for rowid in rowids)  # post-coercion rows
        for window in self._windows_by_source.get(stream.name, ()):
            if window.owner is None:
                window.absorb(ops, frozen)
        self._fire_ee(txn, stream, batch_id, frozen)
        self._stage(txn, stream, batch_id, frozen)

    # -- EE triggers (in-transaction, per statement) ---------------------------

    def _fire_ee(self, txn: "Transaction", stream: Stream, batch_id: int, ext_rows: tuple) -> None:
        triggers = self._ee_triggers.get(stream.name)
        if not triggers:
            return
        if self._ee_depth >= MAX_EE_DEPTH:
            raise TriggerError(
                f"EE trigger cascade deeper than {MAX_EE_DEPTH} levels on "
                f"stream {stream.name!r} (cyclic trigger graph?)"
            )
        db = self._db
        obs = db.obs
        declared_rows = _strip(ext_rows, stream.declared.arity())
        self._ee_depth += 1
        try:
            for trigger in triggers:
                db.clock.charge_cost("ee_trigger")
                with (
                    obs.span(
                        "trigger.ee",
                        trigger=trigger.name,
                        stream=stream.name,
                        batch_id=batch_id,
                    )
                    if obs.enabled
                    else NOOP_SPAN
                ):
                    trigger.fn(TriggerContext(db, txn, trigger, batch_id), declared_rows)
        finally:
            self._ee_depth -= 1

    # -- publication (commit hooks) and PE triggers ----------------------------

    def _stage(self, txn: "Transaction", stream: Stream, batch_id: int, ext_rows: tuple) -> None:
        staged = self._txn_staged.get(txn.txn_id)
        if staged is None:
            staged = []
            self._txn_staged[txn.txn_id] = staged
            txn.add_commit_hook(lambda txn_id=txn.txn_id: self._publish(txn_id))
        staged.append((stream, batch_id, ext_rows))

    def on_abort(self, txn: "Transaction") -> None:
        """Called by the database when a transaction aborts: its staged
        batches are discarded — an aborted ingest fires no triggers."""
        self._txn_staged.pop(txn.txn_id, None)

    def _publish(self, txn_id: int) -> None:
        """Commit hook: advance stream watermarks, fire (charge + enqueue)
        PE triggers and workflow subscriptions for every committed batch.

        During recovery replay the enqueue side is filtered: under
        **strong** replay nothing is enqueued (every delivery replays from
        its own log record; the tail the log never saw is regenerated from
        watermarks afterwards); under **weak** replay workflow deliveries
        enqueue normally — regenerating them *is* weak recovery — but user
        PE triggers stay suppressed, because their transactional effects
        were logged as their own records and replaying both would double
        them.
        """
        db = self._db
        replay = self.replay_mode
        for stream, batch_id, ext_rows in self._txn_staged.pop(txn_id, ()):
            stream.last_committed = max(stream.last_committed, batch_id)
            if replay == "strong":
                continue
            batch = Batch(stream.name, batch_id, _strip(ext_rows, stream.declared.arity()))
            if replay is None:
                for trigger in self._pe_triggers.get(stream.name, ()):
                    db.clock.charge_cost("pe_trigger")
                    self._enqueue(_Delivery(batch, ext_rows, "pe_fn", trigger.name, trigger.fn))
            for _workflow, procedure in self._subscriptions.get(stream.name, ()):
                db.clock.charge_cost("pe_trigger")
                self._enqueue(_Delivery(batch, ext_rows, "proc", procedure))

    def _enqueue(self, delivery: _Delivery) -> None:
        self._enq_seq += 1
        heapq.heappush(self._queue, [delivery.batch.batch_id, self._enq_seq, delivery])

    # -- the delivery scheduler -------------------------------------------------

    def drain(self) -> int:
        """Process queued deliveries, smallest batch id first, until the
        queue is empty; returns how many were processed.

        A failing delivery goes back to the head of the queue, the error
        propagates, and a later ``drain()`` retries it.  No-op while a
        drain is already running or a transaction is open.

        After the queue empties, stream garbage collection runs (see
        :meth:`_reclaim`): rows of batches every workflow subscriber has
        consumed are dropped, so sustained ingest holds a bounded number of
        rows per subscribed stream instead of growing without bound.
        """
        db = self._db
        if self._draining or db._txn is not None or self.replay_mode == "strong":
            # Under strong replay the scheduler is inert: deliveries (and
            # GC) re-execute from their own log records, in log order.
            return 0
        self._draining = True
        processed = 0
        try:
            while self._queue:
                entry = heapq.heappop(self._queue)
                try:
                    self._deliver(entry[2])
                except BaseException:
                    self.delivery_retries += 1
                    heapq.heappush(self._queue, entry)
                    raise
                processed += 1
                self.deliveries_done += 1
            self._reclaim()
        finally:
            self._draining = False
        return processed

    def _reclaim(self) -> int:
        """Stream GC: bulk-drop rows of fully consumed batches.

        A batch is reclaimable once **every** workflow subscription on its
        stream has delivered past it.  The newest consumed batch (the
        horizon) is retained, so the latest committed contents remain
        queryable; everything older is physically deleted through the bulk
        delete primitive (one index-maintenance loop per index).  Runs
        outside any transaction — deliveries up to the horizon have
        committed, so reclamation is post-commit maintenance (not
        undo-logged), like checkpointing.  Returns rows reclaimed.
        """
        advanced: dict[str, int] = {}
        for stream in self.streams.values():
            subs = self._subscriptions.get(stream.name)
            if not subs:
                continue  # terminal streams keep their contents
            horizon = min(
                self.delivered.get((stream.name, procedure), 0)
                for _workflow, procedure in subs
            )
            if horizon > stream.gc_horizon:
                advanced[stream.name] = horizon
        total = self.apply_gc(advanced)
        # GC timing is not derivable from the command log alone (it runs
        # when the queue happens to empty), so the horizon advance itself
        # is logged; strong replay re-applies it at the same log position,
        # keeping recovered snapshots byte-identical to pre-crash state.
        capture = self._db._log_capture
        if capture is not None and advanced:
            capture.record_gc(advanced)
        return total

    def _deliver(self, delivery: _Delivery) -> None:
        db = self._db
        obs = db.obs
        if delivery.kind == "pe_fn":
            with (
                obs.span(
                    "trigger.pe",
                    trigger=delivery.target,
                    stream=delivery.batch.stream,
                    batch_id=delivery.batch.batch_id,
                )
                if obs.enabled
                else NOOP_SPAN
            ):
                delivery.fn(db, delivery.batch)
            return
        key = (delivery.batch.stream, delivery.target)
        last = self.delivered.get(key, 0)
        if delivery.batch.batch_id <= last:
            raise ScheduleViolation(
                f"stream {delivery.batch.stream!r} -> procedure "
                f"{delivery.target!r}: batch {delivery.batch.batch_id} "
                f"scheduled after batch {last} was already processed"
            )
        procedure = db._procedures.get(delivery.target)
        if procedure is None:  # pragma: no cover - registration is validated
            raise WorkflowError(f"procedure {delivery.target!r} disappeared")
        previous = self._delivering
        self._delivering = delivery
        try:
            with (
                obs.span(
                    "delivery",
                    stream=delivery.batch.stream,
                    batch_id=delivery.batch.batch_id,
                    proc=delivery.target,
                )
                if obs.enabled
                else NOOP_SPAN
            ):
                db._call_procedure(
                    procedure,
                    (delivery.batch,),
                    before=lambda ctx: self._advance_owned_windows(ctx.txn, delivery),
                    log_record={
                        "op": "delivery",
                        "stream": delivery.batch.stream,
                        "batch_id": delivery.batch.batch_id,
                        "proc": delivery.target,
                    },
                    span=False,  # the delivery span above times this call
                )
        finally:
            self._delivering = previous
        self.delivered[key] = delivery.batch.batch_id

    def _advance_owned_windows(self, txn: "Transaction", delivery: _Delivery) -> None:
        """Inside the delivery transaction, before the procedure body:
        windows over the input stream owned by the target procedure absorb
        the batch.  An abort rolls this back; the retry re-absorbs."""
        ops = _TxnOps(self._db, txn)
        for window in self._windows_by_source.get(delivery.batch.stream, ()):
            if window.owner == delivery.target:
                window.absorb(ops, delivery.ext_rows)

    # -- recovery support --------------------------------------------------------
    #
    # The recovery manager drives these.  The split of responsibilities:
    # the *manager* owns files, record framing, and replay-mode sequencing;
    # the *runtime* owns the dataflow state being persisted/replayed —
    # watermarks, scheduler positions, and the delivery machinery itself.

    def persistent_state(self) -> dict[str, Any]:
        """The dataflow state a checkpoint must carry beyond table contents.

        Stream *rows* live in the catalog snapshot; this captures the
        runtime bookkeeping that is not recomputable from rows alone:
        per-stream watermarks (``last_committed``), arrival-sequence
        counters (``next_seq``), GC horizons, and the per-subscription
        ``delivered`` progress map the scheduler resumes from.  Queued
        out-of-order batches (``Stream.pending``) are deliberately
        excluded — they were never committed, so they are not durable;
        clients must resubmit them after a crash.
        """
        return {
            "streams": {
                s.name: {
                    "last_committed": s.last_committed,
                    "next_seq": s.next_seq,
                    "gc_horizon": s.gc_horizon,
                    "reclaimed_rows": s.reclaimed_rows,
                }
                for s in self.streams.values()
            },
            "delivered": [
                [stream, proc, batch_id]
                for (stream, proc), batch_id in sorted(self.delivered.items())
            ],
            "deliveries_done": self.deliveries_done,
            "rows_reclaimed": self.rows_reclaimed,
        }

    def restore_persistent_state(self, state: dict[str, Any]) -> None:
        """Inverse of :meth:`persistent_state`; raises
        :class:`RecoveryError` when the checkpoint names a stream the
        bootstrapped schema does not declare (deployment mismatch)."""
        for name, st in state.get("streams", {}).items():
            stream = self.streams.get(name)
            if stream is None:
                raise RecoveryError(
                    f"checkpoint references stream {name!r}, which the "
                    f"bootstrap did not create — schema and procedures must "
                    f"be re-registered before recovery"
                )
            stream.last_committed = int(st["last_committed"])
            stream.next_seq = int(st["next_seq"])
            stream.gc_horizon = int(st.get("gc_horizon", 0))
            stream.reclaimed_rows = int(st.get("reclaimed_rows", 0))
        self.delivered = {
            (stream, proc): int(batch_id)
            for stream, proc, batch_id in state.get("delivered", ())
        }
        self.deliveries_done = int(state.get("deliveries_done", 0))
        self.rows_reclaimed = int(state.get("rows_reclaimed", 0))

    def _batch_ext_rows(self, stream: Stream, batch_id: int) -> tuple:
        """Stream-extended rows of one committed batch, in arrival order,
        reconstructed from the stream table (GC keeps every batch at least
        until all subscribers consumed it, so undelivered batches are
        always reconstructable)."""
        pos = stream.table.schema.position(BATCH_COLUMN)
        return tuple(row for row in stream.table.scan_rows() if row[pos] == batch_id)

    def replay_delivery(self, stream_name: str, batch_id: int, proc_name: str) -> None:
        """Strong-recovery replay of one logged workflow delivery: rebuild
        the batch from the stream table and run the procedure exactly as
        the original delivery did (owned windows advanced inside the
        delivery transaction, batch id propagated through emits)."""
        stream = self._stream(stream_name)
        ext_rows = self._batch_ext_rows(stream, batch_id)
        batch = Batch(stream_name, batch_id, _strip(ext_rows, stream.declared.arity()))
        self._deliver(_Delivery(batch, ext_rows, "proc", proc_name))
        self.deliveries_done += 1

    def apply_gc(self, horizons: dict[str, int]) -> int:
        """Advance GC horizons and drop the rows below them.

        The single reclamation primitive: live GC (:meth:`_reclaim`)
        computes its horizons from the ``delivered`` map and delegates
        here; strong recovery calls it directly with the horizons a
        logged ``gc`` record carries — one code path, so live and
        replayed reclamation cannot diverge.  Returns rows reclaimed.
        """
        total = 0
        for name, horizon in horizons.items():
            stream = self._stream(name)
            horizon = int(horizon)
            if horizon <= stream.gc_horizon:
                continue
            table = stream.table
            batch_pos = table.schema.position(BATCH_COLUMN)
            doomed = [
                rowid for rowid, row in table.scan() if row[batch_pos] < horizon
            ]
            stream.gc_horizon = horizon
            if doomed:
                table.delete_many(doomed)
                stream.reclaimed_rows += len(doomed)
                total += len(doomed)
        self.rows_reclaimed += total
        return total

    def regenerate_deliveries(self) -> int:
        """Re-enqueue every committed-but-undelivered workflow hop.

        After replay (either mode), any batch with
        ``delivered < batch_id <= last_committed`` on some subscription
        was committed upstream but its delivery never reached the durable
        log — the crash interrupted the pipeline between stages.  Those
        deliveries are rebuilt from the stream tables and queued; they run
        on the next ``drain()`` (weak recovery drains immediately; strong
        recovery leaves them queued so the recovered state first matches
        the pre-crash committed state exactly).  Exactly-once holds: the
        lost deliveries never committed, so re-running them is the first
        time their effects become visible.  Returns how many were queued.
        """
        queued = 0
        for stream_name, subs in self._subscriptions.items():
            stream = self._stream(stream_name)
            for _workflow, procedure in subs:
                key = (stream_name, procedure)
                last = self.delivered.get(key, 0)
                for batch_id in range(last + 1, stream.last_committed + 1):
                    ext_rows = self._batch_ext_rows(stream, batch_id)
                    batch = Batch(
                        stream_name, batch_id, _strip(ext_rows, stream.declared.arity())
                    )
                    self._enqueue(_Delivery(batch, ext_rows, "proc", procedure))
                    queued += 1
        return queued

    # -- introspection -----------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        events = self._db.clock.events
        return {
            "streams": {
                s.name: {
                    # renamed from "last_batch"/"reclaimed_rows" (PR 8): stats
                    # keys mirror the attribute names and the scheduler's
                    # "rows_reclaimed" spelling — one canonical scheme
                    "last_committed": s.last_committed,
                    "pending_batches": sorted(s.pending),
                    "rows": s.table.row_count(),
                    "rows_reclaimed": s.reclaimed_rows,
                }
                for s in self.streams.values()
            },
            "windows": {
                w.name: {
                    "source": w.source,
                    "owner": w.owner,
                    "unit": w.spec.unit,
                    "size": w.spec.size,
                    "slide": w.spec.slide,
                    **w.counts(),
                }
                for w in self.windows.values()
            },
            "triggers": {
                "ee": sorted(t.name for ts in self._ee_triggers.values() for t in ts),
                "pe": sorted(t.name for ts in self._pe_triggers.values() for t in ts),
            },
            "trigger_fires": {
                "ee": events.get("ee_trigger", 0),
                "pe": events.get("pe_trigger", 0),
            },
            "workflows": {name: wf.describe() for name, wf in self.workflows.items()},
            "scheduler": {
                "pending_deliveries": len(self._queue),
                "delivered": self.deliveries_done,
                "retries": self.delivery_retries,
                "rows_reclaimed": self.rows_reclaimed,
            },
        }


def _strip(ext_rows: tuple, declared_arity: int) -> tuple:
    """Declared-width projections of stream-extended rows."""
    return tuple(row[:declared_arity] for row in ext_rows)
