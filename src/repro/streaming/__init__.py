"""Streaming layer: streams, windows, EE/PE triggers, and workflow DAGs.

The paper's §3.2 model layered on the transactional engine: streams are
time-varying tables ingested in atomic batches, windows are incrementally
maintained slices with staging-state visibility, EE triggers fire per
statement inside the inserting transaction, PE triggers fire on commit and
drive workflow DAGs of stored procedures with exactly-once, batch-id-
ordered delivery.  The :class:`~repro.streaming.runtime.StreamingRuntime`
is owned by each :class:`~repro.engine.Database` (``db.streaming``); the
public entry points live on the database facade (``db.create_stream``,
``db.ingest``, ``db.create_window``, ``db.create_workflow``, ...).
"""

from .stream import BATCH_COLUMN, SEQ_COLUMN, Batch, Stream
from .trigger import EETrigger, PETrigger, TriggerContext
from .window import ACTIVE_COLUMN, Window, WindowSpec, WindowTable
from .workflow import Workflow, WorkflowEdge

__all__ = [
    "ACTIVE_COLUMN",
    "BATCH_COLUMN",
    "Batch",
    "EETrigger",
    "PETrigger",
    "SEQ_COLUMN",
    "Stream",
    "TriggerContext",
    "Window",
    "WindowSpec",
    "WindowTable",
    "Workflow",
    "WorkflowEdge",
]
