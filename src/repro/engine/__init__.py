"""Engine layer: the :class:`Database` facade and the prepared-statement
cache that make SQL execution a compile-once, cache-always pipeline."""

from .database import Database
from .plan_cache import PlanCache

__all__ = ["Database", "PlanCache"]
