"""Engine layer: the transactional :class:`Database` front door.

All execution flows through explicit transactional scopes — explicit
``db.transaction()`` blocks, stored-procedure invocations (``db.call``),
or implicit single-statement transactions — backed by the undo-logging
:mod:`~repro.engine.transaction` machinery and the compile-once
:mod:`~repro.engine.plan_cache` / :mod:`~repro.engine.procedure` layers.
"""

from .database import Database
from .plan_cache import PlanCache
from .procedure import ProcedureContext, StoredProcedure
from .transaction import Transaction, UndoLog

__all__ = [
    "Database",
    "PlanCache",
    "ProcedureContext",
    "StoredProcedure",
    "Transaction",
    "UndoLog",
]
