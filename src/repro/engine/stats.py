"""Table statistics backing the cost-based planner.

Two freshness tiers, matching what each number costs to keep:

* **row counts are always live** — ``Table.row_count()`` is a ``len()``,
  so the planner reads it directly at plan time and never from here;
* **per-column NDV / min / max / null counts** come from an explicit
  ``ANALYZE`` (``Database.analyze()`` or the ``ANALYZE [table]``
  statement), which scans the visible rows once, or from **automatic
  refresh**: once a table has been analyzed, any later plan whose row
  count has drifted past a threshold re-analyzes it first.

Every refresh bumps :attr:`StatsCatalog.version`.  The plan cache keys
entries by this version (see :mod:`repro.engine.plan_cache`), so a stats
refresh invalidates cached plans *without* a schema-epoch bump — a
stats-stale plan is merely suboptimal, not incorrect, so execution never
rejects one; only the cache replans on the next prepare.
"""

from __future__ import annotations

from typing import Any, Optional

from ..storage.catalog import Catalog
from ..storage.table import Table

#: eq selectivity assumed for a column with no collected stats (System R's
#: classic 1/10), and the matching default distinct-value count.
DEFAULT_EQ_SELECTIVITY = 0.1
#: selectivity assumed for a range conjunct whose bounds are parameters
#: (unknown until execution) or fall outside the collected min/max.
DEFAULT_RANGE_SELECTIVITY = 0.3
#: selectivity assumed for a residual conjunct the estimator cannot read.
DEFAULT_OTHER_SELECTIVITY = 0.33


class ColumnStats:
    """Distribution summary of one column at analyze time."""

    __slots__ = ("ndv", "min", "max", "null_count")

    def __init__(self, ndv: int, min_value: Any, max_value: Any, null_count: int):
        self.ndv = ndv
        self.min = min_value
        self.max = max_value
        self.null_count = null_count

    def as_dict(self) -> dict[str, Any]:
        return {
            "ndv": self.ndv,
            "min": self.min,
            "max": self.max,
            "null_count": self.null_count,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ColumnStats(ndv={self.ndv}, min={self.min!r}, max={self.max!r})"


class TableStats:
    """One table's analyzed snapshot: row count then, columns' summaries."""

    __slots__ = ("table_name", "analyzed_rows", "columns")

    def __init__(self, table_name: str, analyzed_rows: int, columns: dict[str, ColumnStats]):
        self.table_name = table_name
        self.analyzed_rows = analyzed_rows
        self.columns = columns

    def column(self, name: str) -> Optional[ColumnStats]:
        return self.columns.get(name)

    def as_dict(self) -> dict[str, Any]:
        return {
            "analyzed_rows": self.analyzed_rows,
            "columns": {c: s.as_dict() for c, s in self.columns.items()},
        }


def analyze_table(table: Table) -> TableStats:
    """Scan ``table``'s visible rows once and summarise every column."""
    names = table.schema.column_names()
    distinct: list[set] = [set() for _ in names]
    mins: list[Any] = [None] * len(names)
    maxs: list[Any] = [None] * len(names)
    nulls = [0] * len(names)
    rows = 0
    for _rowid, row in table.scan_visible():
        rows += 1
        for i, value in enumerate(row):
            if value is None:
                nulls[i] += 1
                continue
            distinct[i].add(value)
            try:
                if mins[i] is None or value < mins[i]:
                    mins[i] = value
                if maxs[i] is None or value > maxs[i]:
                    maxs[i] = value
            except TypeError:  # mixed-type column: keep NDV, drop the range
                mins[i] = maxs[i] = None
    columns = {
        name: ColumnStats(len(distinct[i]), mins[i], maxs[i], nulls[i])
        for i, name in enumerate(names)
    }
    return TableStats(table.name, rows, columns)


class StatsCatalog:
    """All analyzed tables plus the version counter plans are keyed by.

    ``auto_refresh_fraction`` / ``auto_refresh_floor`` control the drift
    threshold: an analyzed table is re-analyzed (on the next prepare that
    checks) once its live row count differs from the analyzed count by at
    least ``max(floor, fraction * analyzed_rows)`` rows.  Tables never
    analyzed are never auto-analyzed — ``ANALYZE`` is the opt-in.
    """

    __slots__ = (
        "version",
        "refreshes",
        "auto_refreshes",
        "auto_refresh_fraction",
        "auto_refresh_floor",
        "_tables",
    )

    def __init__(
        self,
        *,
        auto_refresh_fraction: float = 0.5,
        auto_refresh_floor: int = 256,
    ):
        self.version = 0
        self.refreshes = 0
        self.auto_refreshes = 0
        self.auto_refresh_fraction = auto_refresh_fraction
        self.auto_refresh_floor = auto_refresh_floor
        self._tables: dict[str, TableStats] = {}

    # -- collection ----------------------------------------------------------

    def analyze(self, table: Table) -> TableStats:
        stats = analyze_table(table)
        self._tables[table.name] = stats
        self.refreshes += 1
        self.version += 1
        return stats

    def maybe_auto_refresh(self, catalog: Catalog) -> bool:
        """Re-analyze any analyzed table whose row count drifted past the
        threshold; True when anything refreshed (version bumped)."""
        refreshed = False
        for name, stats in list(self._tables.items()):
            try:
                table = catalog.table(name)
            except Exception:
                self._tables.pop(name, None)  # table dropped since analyze
                continue
            drift = abs(table.row_count() - stats.analyzed_rows)
            threshold = max(
                self.auto_refresh_floor,
                int(self.auto_refresh_fraction * stats.analyzed_rows),
            )
            if drift >= threshold:
                self.analyze(table)
                self.auto_refreshes += 1
                refreshed = True
        return refreshed

    # -- lookup --------------------------------------------------------------

    def get(self, table_name: str) -> Optional[TableStats]:
        return self._tables.get(table_name)

    def drop(self, table_name: str) -> None:
        self._tables.pop(table_name, None)

    def clear(self) -> None:
        self._tables.clear()

    # -- estimation ----------------------------------------------------------

    def eq_selectivity(self, table: Table, column: str) -> float:
        """Fraction of rows expected to survive ``column = <value>``."""
        live = table.row_count()
        if live == 0:
            return 0.0
        stats = self._tables.get(table.name)
        col = stats.column(column) if stats is not None else None
        if col is not None and col.ndv > 0:
            return min(1.0, 1.0 / col.ndv)
        return DEFAULT_EQ_SELECTIVITY

    def range_selectivity(
        self,
        table: Table,
        column: str,
        lo: Any,
        hi: Any,
    ) -> float:
        """Fraction expected inside ``[lo, hi]`` (either bound may be None =
        unbounded/unknown).  Numeric min/max stats interpolate; anything
        else falls back to the default."""
        stats = self._tables.get(table.name)
        col = stats.column(column) if stats is not None else None
        if (
            col is None
            or not isinstance(col.min, (int, float))
            or not isinstance(col.max, (int, float))
            or isinstance(col.min, bool)
        ):
            return DEFAULT_RANGE_SELECTIVITY
        span = col.max - col.min
        if span <= 0:
            return 1.0  # single-valued column: a covering range keeps all
        eff_lo = col.min
        eff_hi = col.max
        if isinstance(lo, (int, float)) and not isinstance(lo, bool):
            eff_lo = max(eff_lo, lo)
        elif lo is not None:
            return DEFAULT_RANGE_SELECTIVITY
        if isinstance(hi, (int, float)) and not isinstance(hi, bool):
            eff_hi = min(eff_hi, hi)
        elif hi is not None:
            return DEFAULT_RANGE_SELECTIVITY
        if eff_hi < eff_lo:
            return 0.0
        return min(1.0, max(0.0, (eff_hi - eff_lo) / span))

    # -- surfacing -----------------------------------------------------------

    def stats_section(self) -> dict[str, Any]:
        return {
            "version": self.version,
            "refreshes": self.refreshes,
            "auto_refreshes": self.auto_refreshes,
            "analyzed": {name: s.as_dict() for name, s in sorted(self._tables.items())},
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"StatsCatalog(version={self.version}, "
            f"analyzed={sorted(self._tables)})"
        )
