"""Transactions: the undo log and the single-partition serial transaction.

S-Store keeps H-Store's transaction model (paper §3.1): each partition is
single-threaded and executes transactions **serially**, so there is never
more than one open transaction per :class:`~repro.engine.Database`, no
lock manager, and no interleaving to reason about.  What remains of ACID
on this substrate is atomicity + durability machinery, and atomicity is
this module: an undo log replayed in reverse on abort.

The :class:`UndoLog` is the engine's implementation of the executor's
``WriteObserver`` protocol — every physical mutation a statement performs
(:meth:`ExecutionContext.insert` / ``delete`` / ``update``) is appended as
one undo record.  Undo is purely physical and uses ``Table``'s reversible
primitives:

===========  =========================================
forward      undo
===========  =========================================
insert       ``Table.delete_row(rowid)``
insert_many  ``Table.delete_range(first_rowid, count)``
delete       ``Table.restore_row(rowid, old_row)``
update       ``Table.update_row(rowid, old_row)``
===========  =========================================

A bulk insert is recorded as **one compact range record** (contiguous
rowids), not one record per row — the undo log stays O(statements), and
reverse replay restores physical state identical to the per-row path.

Replaying the records **in reverse order** restores the exact prior
physical state — data, indexes, and arrival order — which the tests
assert via ``Catalog.snapshot()`` equality.  Rowids consumed by aborted
inserts are never reused (``Table._next_rowid`` only moves forward).

:class:`Transaction` is the handle returned by ``Database.begin()`` and
``with db.transaction():``.  The serial model makes its life cycle strict:
begin → (statements) → commit | abort, nesting is an error, and DDL inside
a transaction is rejected.  Boundary costs (``txn_begin_us`` /
``txn_commit_us`` / ``txn_abort_us``) are charged on the database's
:class:`~repro.common.clock.SimClock`; an abort additionally charges
``sql_row_us`` per undo record replayed (``rows_undone`` events).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from ..common.errors import TransactionError
from ..storage.table import Table

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .database import Database


class UndoLog:
    """Append-only log of physical mutations, replayed in reverse to undo.

    Implements the executor's ``WriteObserver`` protocol; the ``Database``
    facade installs the open transaction's undo log as the observer of
    every :class:`~repro.sql.executor.ExecutionContext` it creates.
    """

    __slots__ = ("_entries",)

    _INSERT = 0
    _DELETE = 1
    _UPDATE = 2
    _INSERT_MANY = 3

    def __init__(self) -> None:
        #: (kind, table, rowid, extra), oldest first; ``extra`` is the old
        #: row for delete/update, the row count for insert_many, else None
        self._entries: list[tuple[int, Table, int, Any]] = []

    # -- WriteObserver protocol ----------------------------------------------

    def on_insert(self, table: Table, rowid: int) -> None:
        self._entries.append((self._INSERT, table, rowid, None))

    def on_insert_many(self, table: Table, first_rowid: int, count: int) -> None:
        """One compact range record for a bulk insert of ``count`` rows at
        contiguous rowids — O(1) log space however large the batch."""
        self._entries.append((self._INSERT_MANY, table, first_rowid, count))

    def on_delete(self, table: Table, rowid: int, old_row: tuple) -> None:
        self._entries.append((self._DELETE, table, rowid, old_row))

    def on_update(self, table: Table, rowid: int, old_row: tuple) -> None:
        self._entries.append((self._UPDATE, table, rowid, old_row))

    # -- replay ----------------------------------------------------------------

    def mark(self) -> int:
        """Current log position — a statement-level savepoint."""
        return len(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def rollback_to(self, mark: int) -> int:
        """Undo (and drop) every record past ``mark``, newest first.

        ``mark=0`` undoes the whole transaction; a statement's pre-execution
        mark undoes just that statement's writes (statement-level atomicity
        for multi-row DML that fails midway).  Returns the number of *rows*
        replayed — a range record counts all its rows — so the caller can
        charge ``rows_undone`` identically to the per-row path.
        """
        undone = 0
        entries = self._entries
        while len(entries) > mark:
            kind, table, rowid, extra = entries.pop()
            if kind == self._INSERT:
                table.delete_row(rowid)
                undone += 1
            elif kind == self._DELETE:
                table.restore_row(rowid, extra)
                undone += 1
            elif kind == self._UPDATE:
                table.update_row(rowid, extra)
                undone += 1
            else:  # _INSERT_MANY: one compact record, ``extra`` rows
                undone += table.delete_range(rowid, extra)
        return undone

    def clear(self) -> None:
        """Forget all records (commit: the writes become permanent)."""
        self._entries.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"UndoLog({len(self._entries)} records)"


class Transaction:
    """One serial transaction on one partition.

    Obtained from :meth:`Database.begin` (manual commit/abort) or
    ``with db.transaction():`` (commit on clean exit, abort on exception).
    Statements executed through the database while the transaction is open
    — ``db.execute(...)`` and friends — automatically run inside it; there
    is no per-statement opt-in.

    The handle is single-use: once committed or aborted it cannot be
    reused, and a new transaction must be begun.
    """

    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"

    __slots__ = (
        "txn_id",
        "undo",
        "state",
        "implicit",
        "wrote",
        "log_record",
        "log_cmds",
        "_db",
        "_commit_hooks",
    )

    def __init__(self, db: "Database", txn_id: int, *, implicit: bool = False):
        self._db = db
        self.txn_id = txn_id
        self.undo = UndoLog()
        self.state = self.ACTIVE
        #: True for the auto-commit wrapper around a bare ``db.execute()``
        self.implicit = implicit
        #: True once committed with at least one physical write (captured
        #: before the undo log is cleared); read-only transactions need no
        #: command-log record.
        self.wrote = False
        #: Preset logical command-log record for this transaction (set by
        #: the ingest / procedure-call / workflow-delivery paths); when
        #: None, the record is assembled from :attr:`log_cmds` instead.
        self.log_record = None
        #: Captured ad-hoc statements ``("sql"|"many", text, params)`` in
        #: execution order — the logical command list of an explicit or
        #: implicit client transaction.  Discarded on abort.
        self.log_cmds: list = []
        #: Callables run once, after a successful commit has fully closed the
        #: transaction (the paper's PE-trigger firing point, §3.2.3).  An
        #: abort discards them unrun — an aborted ingest fires no triggers.
        self._commit_hooks: list = []

    @property
    def is_active(self) -> bool:
        return self.state == self.ACTIVE

    def _require_active(self, op: str) -> None:
        if self.state != self.ACTIVE:
            raise TransactionError(
                f"cannot {op} transaction {self.txn_id}: it is already {self.state}"
            )

    def add_commit_hook(self, fn) -> None:
        """Register ``fn()`` to run after this transaction commits.

        Hooks run *outside* the transaction (it is already closed), in
        registration order; the streaming layer uses them to publish
        committed stream batches and fire PE triggers.  On abort the hooks
        are discarded without running.
        """
        self._require_active("attach a commit hook to")
        self._commit_hooks.append(fn)

    def commit(self) -> None:
        """Make the transaction's writes permanent and close it."""
        self._require_active("commit")
        self.wrote = len(self.undo) > 0
        self.undo.clear()
        self.state = self.COMMITTED
        self._db._txn_closed(self, "txn_commit")
        hooks, self._commit_hooks = self._commit_hooks, []
        for fn in hooks:
            fn()

    def abort(self) -> None:
        """Replay the undo log in reverse and close the transaction."""
        self._require_active("abort")
        self._commit_hooks.clear()
        db = self._db
        db._charge_undone(self.undo.rollback_to(0))
        self.state = self.ABORTED
        db._txn_closed(self, "txn_abort")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "implicit" if self.implicit else "explicit"
        return f"Transaction(id={self.txn_id}, {kind}, {self.state}, undo={len(self.undo)})"
