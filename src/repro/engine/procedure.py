"""Stored procedures: the unit of transaction (paper §2, §3.1).

S-Store's computational model is built on H-Store stored procedures: a
named body of logic whose SQL is **planned once at registration/first
invocation** and whose every invocation runs as **exactly one
transaction** — commit on return, rollback on exception.  This module
supplies both halves:

* :class:`StoredProcedure` owns the procedure function and a *pin table*
  of its :class:`~repro.sql.planner.PreparedStatement`\\ s.  The first time
  a statement text is executed the plan comes from the database's plan
  cache (charging the usual cold-plan or cache-hit cost); thereafter the
  pinned plan is used directly with **zero** planning or cache-lookup
  cost — the H-Store deploy-time-planning behaviour.  A schema-epoch
  change (any DDL) invalidates the pin table wholesale; statements re-pin
  lazily through the plan cache on their next execution.
* :class:`ProcedureContext` is the only capability a procedure body
  receives: statement execution inside the procedure's transaction, plus
  an explicit :meth:`~ProcedureContext.abort` escape hatch.  Bodies have
  the signature ``fn(ctx, *args)``.

Registration and invocation go through the ``Database`` facade::

    @db.register_procedure("vote")
    def vote(ctx, contestant_id):
        ctx.execute("UPDATE votes SET n = n + 1 WHERE id = ?", (contestant_id,))
        return ctx.execute("SELECT n FROM votes WHERE id = ?", (contestant_id,)).scalar()

    db.call("vote", 3)   # one transaction: commit on return, rollback on raise

**Determinism is the recovery contract** (paper §3.1/§4.4): with
``recovery_dir=`` the command log records a committed ``db.call`` as just
``(name, args)`` and crash recovery *re-invokes the body* — so a body
must be a deterministic function of its arguments and database state (no
wall-clock reads, no randomness, no external I/O), and its arguments
must be JSON-serialisable.  Statements run through ``ctx.execute`` are
deliberately **not** logged individually; the invocation record covers
them.  The same applies to workflow deliveries, which are procedure
invocations whose argument is a replayable
:class:`~repro.streaming.stream.Batch`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Sequence

from ..common.errors import UserAbort
from ..sql.executor import ResultSet
from ..sql.planner import PreparedStatement

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .database import Database
    from .transaction import Transaction

ProcedureFn = Callable[..., Any]


class StoredProcedure:
    """A registered procedure and its pinned (compile-once) statements."""

    __slots__ = ("name", "fn", "_pinned", "_pinned_epoch", "_pinned_stats_version")

    def __init__(self, name: str, fn: ProcedureFn):
        self.name = name
        self.fn = fn
        self._pinned: dict[str, PreparedStatement] = {}
        self._pinned_epoch = -1  # never matches a real epoch: pin lazily
        self._pinned_stats_version = -1

    def statement(self, db: "Database", sql: str) -> PreparedStatement:
        """The pinned plan for ``sql``, (re-)pinning through the plan cache.

        On a pin-table hit this is a dict lookup — no plan-cache traffic,
        no clock charge.  After DDL bumps the schema epoch — or an ANALYZE
        bumps the statistics version, making the pinned costing stale —
        the whole pin table is dropped and each statement re-pins on next
        use.
        """
        if (
            self._pinned_epoch != db.schema_epoch
            or self._pinned_stats_version != db.table_stats.version
        ):
            self._pinned.clear()
            self._pinned_epoch = db.schema_epoch
            self._pinned_stats_version = db.table_stats.version
        stmt = self._pinned.get(sql)
        if stmt is None:
            stmt = db.prepare(sql)
            self._pinned[sql] = stmt
        return stmt

    def pinned_count(self) -> int:
        return len(self._pinned)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"StoredProcedure({self.name!r}, pinned={len(self._pinned)})"


class ProcedureContext:
    """What a procedure body sees: its transaction's statement executor.

    Deliberately narrow — no DDL, no begin/commit/abort of other
    transactions, no direct catalog access.  Everything executed here runs
    inside the invocation's transaction and is undone if it aborts.
    """

    __slots__ = ("_db", "_proc", "txn")

    def __init__(self, db: "Database", proc: StoredProcedure, txn: "Transaction"):
        self._db = db
        self._proc = proc
        self.txn = txn

    def execute(self, sql: str, params: Sequence[Any] = ()) -> ResultSet:
        """Run one of the procedure's statements (pinned plan) in its txn."""
        stmt = self._proc.statement(self._db, sql)
        return self._db._execute(stmt, params, self.txn)

    def query(self, sql: str, params: Sequence[Any] = ()) -> list[dict[str, Any]]:
        """Convenience: execute and return rows as dicts."""
        return self.execute(sql, params).to_dicts()

    def emit(self, stream: str, rows, batch_id: int | None = None) -> int:
        """Append an atomic batch to ``stream`` inside this transaction.

        The batch is published — watermark advanced, PE triggers and
        downstream workflow procedures fired — only when the transaction
        commits; a rollback emits nothing.  Inside a workflow delivery the
        batch id defaults to the input batch's id, so ids flow through the
        DAG unchanged; otherwise it defaults to the next id of ``stream``.
        Returns the batch id used.
        """
        return self._db.streaming.emit(self.txn, stream, rows, batch_id)

    def abort(self, message: str = "aborted by stored procedure") -> None:
        """Abort the invocation: raises :class:`UserAbort`, which rolls the
        transaction back and propagates (unwrapped) to the caller."""
        raise UserAbort(message)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ProcedureContext({self._proc.name!r}, txn={self.txn.txn_id})"
