"""The :class:`Database` facade: catalog + clock + plan cache + execution.

This is the single-partition engine front door.  It wires together the
layers the seed shipped disconnected:

* a :class:`~repro.storage.catalog.Catalog` owning all tables,
* a :class:`~repro.common.clock.SimClock` / :class:`~repro.common.clock.CostModel`
  pair converting architectural event counts into deterministic simulated
  time, and
* a :class:`~repro.engine.plan_cache.PlanCache` so repeated SQL text skips
  the lexer, parser, and planner entirely.

Cost accounting per :meth:`execute`:

* plan-cache **miss** → one ``sql_plan`` charge (cold lex+parse+plan);
* plan-cache **hit** → one (much cheaper) ``plan_cache_hit`` charge;
* every execution → one ``sql_stmt`` charge, plus per-event charges
  derived from the :class:`~repro.sql.executor.ExecutionContext` counters:
  ``rows_scanned`` and each written row at ``sql_row_us``, and
  ``index_probes`` at ``index_probe_us``.

Event tallies therefore line up one-to-one with the counters the executor
produces, which is what the tier-1 tests assert on and what the benchmark
harness turns into throughput numbers.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Iterable, Optional, Sequence

from ..common.clock import CostModel, SimClock
from ..common.errors import PlanningError
from ..sql.executor import AccessGuard, ExecutionContext, ResultSet, WriteObserver
from ..sql.planner import PreparedStatement, prepare
from ..storage.catalog import Catalog
from ..storage.schema import TableSchema
from ..storage.table import Table
from .plan_cache import PlanCache

#: (counter name, CostModel attribute charged per occurrence)
_EXECUTION_CHARGES: tuple[tuple[str, str], ...] = (
    ("rows_scanned", "sql_row_us"),
    ("index_probes", "index_probe_us"),
    ("rows_inserted", "sql_row_us"),
    ("rows_updated", "sql_row_us"),
    ("rows_deleted", "sql_row_us"),
)


class Database:
    """One partition's engine: schema DDL, SQL execution, cost accounting."""

    def __init__(
        self,
        *,
        cost: Optional[CostModel] = None,
        clock: Optional[SimClock] = None,
        plan_cache_size: int = 256,
    ):
        if cost is not None and clock is not None:
            raise ValueError(
                "pass either cost= or clock=, not both (a SimClock carries "
                "its own CostModel)"
            )
        self.clock = clock if clock is not None else SimClock(cost or CostModel.calibrated())
        self.catalog = Catalog()
        self.plan_cache = PlanCache(plan_cache_size)
        #: bumped on every DDL; prepared statements are stamped with it so
        #: stale plans held across a schema change fail fast (see
        #: :meth:`execute_prepared`) instead of reading the wrong schema.
        self.schema_epoch = 0
        #: lifetime aggregate of per-execution counters
        self.counters: Counter[str] = Counter()
        #: counters of the most recent execution (for tests and tooling)
        self.last_counters: Counter[str] = Counter()

    # -- DDL -----------------------------------------------------------------

    def create_table(self, schema: TableSchema) -> Table:
        """Create a table; invalidates all cached plans (schema change)."""
        table = self.catalog.create_table(schema)
        self._schema_changed()
        return table

    def drop_table(self, name: str) -> None:
        self.catalog.drop_table(name)
        self._schema_changed()

    def create_index(
        self,
        table_name: str,
        index_name: str,
        key_columns: Sequence[str],
        *,
        unique: bool = False,
        ordered: bool = False,
    ):
        """Create a secondary index; invalidates cached plans so future
        statements can pick the new access path."""
        index = self.catalog.table(table_name).create_index(
            index_name, key_columns, unique=unique, ordered=ordered
        )
        self._schema_changed()
        return index

    def drop_index(self, table_name: str, index_name: str) -> None:
        """Drop an index; invalidates cached plans so statements compiled
        against it replan onto a different access path.  Always drop
        indexes through this method, not ``Table.drop_index`` directly —
        stale cached plans would keep probing the dropped index."""
        self.catalog.table(table_name).drop_index(index_name)
        self._schema_changed()

    def _schema_changed(self) -> None:
        """After any DDL: drop every cached plan and advance the epoch so
        externally held prepared statements are rejected as stale."""
        self.plan_cache.clear()
        self.schema_epoch += 1

    # -- statement preparation -----------------------------------------------

    def prepare(self, sql: str) -> PreparedStatement:
        """Fetch the prepared statement for ``sql``, planning it on a cache
        miss.  A hit charges ``plan_cache_hit_us``; a miss charges the full
        ``sql_plan_us`` compile cost."""
        stmt = self.plan_cache.get(sql)
        if stmt is not None:
            self.clock.charge_cost("plan_cache_hit")
            return stmt
        self.clock.charge_cost("sql_plan")
        stmt = prepare(sql, self.catalog)
        stmt.epoch = self.schema_epoch
        self.plan_cache.put(sql, stmt)
        return stmt

    # -- execution -------------------------------------------------------------

    def execute(
        self,
        sql: str,
        params: Sequence[Any] = (),
        *,
        observer: Optional[WriteObserver] = None,
        guard: Optional[AccessGuard] = None,
    ) -> ResultSet:
        """Execute one statement (through the plan cache) and charge costs."""
        stmt = self.prepare(sql)
        return self.execute_prepared(stmt, params, observer=observer, guard=guard)

    def execute_prepared(
        self,
        stmt: PreparedStatement,
        params: Sequence[Any] = (),
        *,
        observer: Optional[WriteObserver] = None,
        guard: Optional[AccessGuard] = None,
    ) -> ResultSet:
        """Execute an already-prepared statement (no cache interaction).

        Rejects statements prepared before the last schema change — a
        stale plan could silently read the wrong columns or probe a
        dropped index.  Re-prepare (or go through :meth:`execute`) after
        DDL."""
        if stmt.epoch is not None and stmt.epoch != self.schema_epoch:
            raise PlanningError(
                f"prepared statement is stale (schema changed since it was "
                f"prepared): {stmt.sql!r}; re-prepare it"
            )
        ctx = ExecutionContext(self.catalog, params, observer=observer, guard=guard)
        result = stmt.execute(ctx)
        self._charge(ctx.counters)
        self.last_counters = ctx.counters
        self.counters.update(ctx.counters)
        return result

    def executemany(
        self,
        sql: str,
        param_rows: Iterable[Sequence[Any]],
        *,
        observer: Optional[WriteObserver] = None,
        guard: Optional[AccessGuard] = None,
    ) -> int:
        """Run one statement for each parameter row; returns total rowcount.

        The statement goes through :meth:`prepare` exactly once, so this is
        the bulk-load fast path the benchmark harness measures.
        """
        stmt = self.prepare(sql)
        total = 0
        for params in param_rows:
            result = self.execute_prepared(stmt, params, observer=observer, guard=guard)
            total += result.rowcount
        return total

    def query(self, sql: str, params: Sequence[Any] = ()) -> list[dict[str, Any]]:
        """Convenience: execute and return rows as dicts."""
        return self.execute(sql, params).to_dicts()

    # -- accounting ------------------------------------------------------------

    def _charge(self, counters: Counter[str]) -> None:
        cost = self.clock.cost
        clock = self.clock
        clock.charge("sql_stmt", cost.sql_stmt_us)
        for event, attr in _EXECUTION_CHARGES:
            n = counters.get(event, 0)
            if n:
                clock.charge(event, getattr(cost, attr) * n, count=n)

    def stats(self) -> dict[str, Any]:
        """One snapshot for dashboards/benchmarks: time, events, cache."""
        return {
            "sim_time_us": self.clock.now_us,
            "events": dict(self.clock.events),
            "counters": dict(self.counters),
            "plan_cache": self.plan_cache.stats(),
            "tables": {t.name: t.row_count() for t in self.catalog.tables()},
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Database(tables={self.catalog.table_names()}, "
            f"cache={self.plan_cache!r})"
        )
