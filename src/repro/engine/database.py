"""The :class:`Database` facade: a transactional front door for one partition.

This is the engine's public API, redesigned around the paper's central
claim (§2, §3.1): **all state lives under ACID transactions, and the
stored procedure is the unit of transaction**.  Every statement executed
through this facade runs inside a transaction — there is no
non-transactional path:

* ``with db.transaction(): ...`` / ``txn = db.begin()`` — an explicit
  transaction; statements executed while it is open join it; commit on
  clean ``with``-exit (or ``txn.commit()``), undo-log rollback on
  exception (or ``txn.abort()``).
* ``db.call(name, *args)`` — a stored-procedure invocation (registered
  via :meth:`register_procedure`): the whole body is one transaction with
  compile-once pinned statements; commit on return, rollback on raise.
* ``db.execute(sql)`` with no transaction open — an **implicit
  single-statement transaction** (auto-commit).  A statement that fails
  midway (e.g. a unique violation on row 3 of a multi-row INSERT) leaves
  no partial writes behind.

The single-partition serial model (§3.1) keeps this strict: at most one
open transaction, nested ``begin()`` is an error, and DDL inside a
transaction is rejected.

Internally every path converges on :meth:`_execute`, which builds the
:class:`~repro.sql.executor.ExecutionContext` with the open transaction's
:class:`~repro.engine.transaction.UndoLog` as the write observer and the
engine's (private) access guard.  Observer and guard are **not** part of
the public signatures — they are the seams the trigger, window-visibility,
and command-logging layers plug into.

Cost accounting per statement (on the deterministic
:class:`~repro.common.clock.SimClock`):

* plan-cache **miss** → one ``sql_plan`` charge; **hit** → one (much
  cheaper) ``plan_cache_hit`` charge; a procedure's *pinned* statement →
  no planning charge at all after the first invocation;
* every execution → one ``sql_stmt`` charge plus per-event charges from
  the execution counters (``rows_scanned``/written at ``sql_row_us``,
  ``index_probes`` at ``index_probe_us``);
* transaction boundaries → ``txn_begin`` / ``txn_commit`` / ``txn_abort``
  charges, the abort adding ``sql_row_us`` per undo record replayed
  (``rows_undone`` events).
"""

from __future__ import annotations

from collections import Counter
from contextlib import contextmanager
from typing import Any, Iterable, Iterator, Optional, Sequence

from pathlib import Path

from ..common.clock import CostModel, SimClock
from ..common.errors import (
    NoSuchProcedureError,
    PlanningError,
    ProcedureError,
    RecoveryError,
    SchemaError,
    TransactionAborted,
    TransactionError,
)
from ..obs import observability
from ..recovery.manager import RecoveryManager
from ..sql.executor import ExecutionContext, ResultSet
from ..sql.planner import JOIN_STRATEGIES, PreparedStatement, prepare
from ..storage.catalog import Catalog
from ..storage.schema import TableKind, TableSchema
from ..storage.table import Table
from ..streaming.runtime import StreamingRuntime
from ..streaming.stream import Stream
from ..streaming.trigger import EETrigger, PETrigger
from ..streaming.window import Window
from ..streaming.workflow import Workflow
from .plan_cache import PlanCache
from .procedure import ProcedureContext, ProcedureFn, StoredProcedure
from .stats import StatsCatalog
from .transaction import Transaction

#: (counter name, CostModel attribute charged per occurrence)
_EXECUTION_CHARGES: tuple[tuple[str, str], ...] = (
    ("rows_scanned", "sql_row_us"),
    ("index_probes", "index_probe_us"),
    ("rows_inserted", "sql_row_us"),
    ("rows_updated", "sql_row_us"),
    ("rows_deleted", "sql_row_us"),
)

#: keys always present in ``stats()["transactions"]``
_TXN_STAT_KEYS = ("begun", "committed", "aborted", "implicit", "procedure_calls")


def _safe_section(thunk) -> Any:
    """Evaluate a registered stats-section thunk, degrading a raising
    thunk to an ``{"error": ...}`` value so one broken section can never
    take down the whole ``stats()`` snapshot."""
    try:
        return thunk()
    except Exception as exc:  # noqa: BLE001 - stats must never raise
        return {"error": f"{type(exc).__name__}: {exc}"}


def _copy_plan_info(info: Any) -> Any:
    """Deep-copy a plan_info tree (dicts/lists/scalars only) so EXPLAIN
    callers can annotate and mutate their copy without corrupting the
    cached plan's tree."""
    if isinstance(info, dict):
        return {k: _copy_plan_info(v) for k, v in info.items()}
    if isinstance(info, list):
        return [_copy_plan_info(v) for v in info]
    return info


def _annotate_actual(info: Any, counts: dict[int, int]) -> None:
    """Write each operator's actual emitted-row count (keyed by plan
    ``op_id``) into its node of the EXPLAIN tree."""
    if isinstance(info, dict):
        op_id = info.get("op_id")
        if op_id is not None:
            info["actual_rows"] = counts.get(op_id, 0)
        for value in info.values():
            _annotate_actual(value, counts)
    elif isinstance(info, list):
        for value in info:
            _annotate_actual(value, counts)


class Database:
    """One partition's engine: DDL, transactions, procedures, accounting."""

    def __init__(
        self,
        *,
        cost: Optional[CostModel] = None,
        clock: Optional[SimClock] = None,
        plan_cache_size: int = 256,
        recovery_dir: Optional[str | Path] = None,
        recovery: str = "strong",
        bootstrap=None,
        group_commit: int = 8,
        group_commit_bytes: int = 64 * 1024,
        verify_recovery: bool = False,
        readonly: bool = False,
        obs=None,
    ):
        """Open one partition's engine.

        Args:
            cost: cost table for the simulated clock (mutually exclusive
                with ``clock``); defaults to ``CostModel.calibrated()``.
            clock: an externally owned :class:`SimClock` to charge on.
            plan_cache_size: LRU capacity of the plan cache (SQL texts).
            recovery_dir: directory for the command log and checkpoints.
                When given, the database is **durable**: every committed
                transaction is command-logged, ``checkpoint()`` works,
                and opening runs crash recovery (see ``recovery``).
            recovery: ``"strong"`` replays every logged transaction
                exactly; ``"weak"`` replays only dataflow inputs and
                re-drives workflow DAGs through the scheduler (paper
                §4.4).  Ignored without ``recovery_dir``.
            bootstrap: ``fn(db)`` that re-creates the deployment — all
                DDL (tables, streams, windows, indexes, workflows) and
                procedure/trigger registrations.  DDL is *not* logged
                (H-Store's model: schema and procedures are deployed,
                commands are replayed against them), so with
                ``recovery_dir`` all DDL belongs in the bootstrap.  Runs
                before recovery; also runs when given without
                ``recovery_dir`` (pure convenience).
            group_commit: command-log records buffered per fsync (1 =
                synchronous logging; the default batches 8).
            group_commit_bytes: byte threshold that also forces a flush.
            verify_recovery: with ``recovery="weak"``, additionally run
                strong recovery on a read-only shadow and raise
                :class:`RecoveryError` unless both reach the identical
                ``Catalog.snapshot()``.
            readonly: recover state but never write to the recovery
                directory (no log appends, no checkpoints) — for
                inspection and weak-recovery verification.
            obs: observability handle — an
                :class:`~repro.obs.Observability`, ``"metrics"``,
                ``"full"``, or ``None``/``"off"`` (the default: the
                shared no-op, near-zero cost).  When enabled, its
                registry surfaces as the ``"obs"`` :meth:`stats` section
                and pipeline stages emit wall-clock trace spans.

        Raises:
            ValueError: both ``cost`` and ``clock`` given, or an unknown
                ``recovery`` mode.
            RecoveryError: the log or a checkpoint is damaged beyond the
                torn-tail contract, or references schema objects the
                bootstrap did not create.
        """
        if cost is not None and clock is not None:
            raise ValueError(
                "pass either cost= or clock=, not both (a SimClock carries "
                "its own CostModel)"
            )
        self.clock = clock if clock is not None else SimClock(cost or CostModel.calibrated())
        #: the observability handle; DISABLED (a shared no-op) by default.
        #: Instrumentation sites guard on ``self.obs.enabled`` so the
        #: disabled path costs one attribute load and a branch.
        self.obs = observability(obs, process="engine")
        #: the span covering the currently open transaction, if tracing
        self._txn_span = None
        self.catalog = Catalog()
        self.plan_cache = PlanCache(plan_cache_size)
        #: bumped on every DDL; prepared statements are stamped with it so
        #: stale plans held across a schema change fail fast (see
        #: :meth:`execute_prepared`) instead of reading the wrong schema.
        self.schema_epoch = 0
        #: column statistics feeding the cost-based planner; populated by
        #: :meth:`analyze` / ``ANALYZE``, version-stamped into every plan
        #: so a refresh invalidates cached plans (cache replan, never an
        #: execution-time rejection — see :class:`PlanCache`).
        self.table_stats = StatsCatalog()
        #: forced join algorithm for differential testing (None = cost-based)
        self._force_join: Optional[str] = None
        #: per-plan tallies surfaced by the ``planner`` stats section
        self._planner_stats: Counter[str] = Counter()
        #: EXPLAIN's per-operator actual-row sink; threaded into the
        #: ExecutionContext of statements run under :meth:`explain`
        self._explain_counts: Optional[dict[int, int]] = None
        #: lifetime aggregate of per-execution counters
        self.counters: Counter[str] = Counter()
        #: counters of the most recent execution — for :meth:`executemany`,
        #: the aggregate over **all** parameter rows of the batch
        self.last_counters: Counter[str] = Counter()
        #: transaction life-cycle tallies (begun/committed/aborted/...)
        self.txn_stats: Counter[str] = Counter()
        self._txn: Optional[Transaction] = None
        self._next_txn_id = 1
        self._procedures: dict[str, StoredProcedure] = {}
        #: name of the stored procedure whose invocation is currently on the
        #: stack (window-visibility checks key off this); None for ad-hoc SQL
        self._current_proc: Optional[str] = None
        #: the streaming layer (paper §3.2): streams, windows, triggers,
        #: workflow DAGs, and the batch-ordered delivery scheduler
        self.streaming = StreamingRuntime(self)
        #: the executor's access-guard hook, occupied by the streaming
        #: layer's visibility/DML rules; deliberately not exposed through
        #: any public signature.
        self._guard = self.streaming.guard
        #: extra :meth:`stats` sections contributed by attached subsystems
        #: (e.g. a network server registers ``"server"``); name → thunk
        self._stats_sections: dict[str, Any] = {}
        # the metrics registry *backs* stats() through the same hook any
        # attached subsystem uses — one snapshot API, no parallel channel
        self._stats_sections["obs"] = lambda: self.obs.stats_section()
        # the planner section rides the same subsystem hook: plan tallies,
        # join-algorithm mix, and the statistics catalog behind them
        self.add_stats_section("planner", self._planner_stats_section)
        #: durability sidecar (command log + checkpoints); None = memory-only
        self._recovery: Optional[RecoveryManager] = None
        if recovery_dir is not None:
            self._recovery = RecoveryManager(
                self,
                recovery_dir,
                mode=recovery,
                bootstrap=bootstrap,
                group_size=group_commit,
                group_bytes=group_commit_bytes,
                verify=verify_recovery,
                readonly=readonly,
            )
            self._recovery.open()
        elif bootstrap is not None:
            bootstrap(self)

    @property
    def _log_capture(self) -> Optional[RecoveryManager]:
        """The recovery manager, iff it is capturing commits right now
        (None while memory-only, replaying, or read-only) — the engine's
        single check before paying any logging cost."""
        recovery = self._recovery
        if recovery is not None and recovery.active:
            return recovery
        return None

    # -- DDL -----------------------------------------------------------------

    def create_table(self, schema: TableSchema) -> Table:
        """Create a table; invalidates all cached plans (schema change)."""
        self._reject_ddl_in_txn("CREATE TABLE")
        if schema.kind is not TableKind.TABLE:
            raise SchemaError(
                f"create_table only creates plain tables; use "
                f"db.create_stream(...) / db.create_window(...) for "
                f"{schema.kind.value} tables"
            )
        if schema.hidden_columns():
            # '__'-prefixed names are engine metadata, hidden from SELECT *
            # and stats(); a user column by that name would silently vanish
            raise SchemaError(
                f"table {schema.name!r}: column names starting with '__' are "
                f"reserved for engine metadata "
                f"({', '.join(schema.hidden_columns())})"
            )
        table = self.catalog.create_table(schema)
        self._schema_changed()
        return table

    def drop_table(self, name: str) -> None:
        """Drop a table, stream, or window (streams with dependent windows,
        triggers, or workflow edges are rejected)."""
        self._reject_ddl_in_txn("DROP TABLE")
        self.catalog.table(name)  # raises NoSuchTableError before unregistering
        self.streaming.unregister_table(name)
        self.catalog.drop_table(name)
        self.table_stats.drop(name)
        self._schema_changed()

    # -- streaming DDL (paper §3.2) -------------------------------------------

    def create_stream(self, schema: TableSchema) -> Stream:
        """Create a stream from a *declared* schema (paper §3.2.1).

        The physical table is the declared schema extended with the hidden
        ``__batch_id__``/``__seq__`` metadata columns; ``SELECT *`` and
        ``stats()`` keep showing the declared shape.  Write access is
        exclusively through :meth:`ingest` / ``ctx.emit`` atomic batches.
        Like all DDL, not command-logged: with recovery enabled, create
        streams in the ``bootstrap``.

        Returns:
            The registered :class:`Stream`.

        Raises:
            SchemaError: a declared column name uses the reserved ``__``
                prefix.
            DuplicateTableError: the name is taken.
            TransactionError: called inside a transaction (DDL is
                auto-commit only).
        """
        self._reject_ddl_in_txn("CREATE STREAM")
        stream = self.streaming.create_stream(schema)
        self._schema_changed()
        return stream

    def create_window(
        self,
        name: str,
        source: str,
        *,
        size: int,
        slide: int,
        unit: str = "rows",
        owner: Optional[str] = None,
    ) -> Window:
        """Create a sliding window over stream ``source`` (paper §3.2.2).

        ``unit="rows"`` slides every ``slide`` tuples over the last ``size``
        tuples; ``unit="batches"`` slides every ``slide`` atomic batches
        over the last ``size`` batches (batch ids are the logical time
        axis).  With ``owner=`` the window is visible only to SQL inside
        that stored procedure's invocations and advances inside the owner's
        workflow-delivery transactions; unowned windows advance inside the
        transaction that ingests each batch.

        Returns:
            The registered :class:`Window`.

        Raises:
            SchemaError: invalid size/slide/unit combination.
            StreamingError: ``source`` is not a stream, or ``owner`` is
                not a registered procedure.
            TransactionError: called inside a transaction.
        """
        self._reject_ddl_in_txn("CREATE WINDOW")
        window = self.streaming.create_window(
            name, source, size=size, slide=slide, unit=unit, owner=owner
        )
        self._schema_changed()
        return window

    def create_ee_trigger(self, name: str, stream: str, fn) -> EETrigger:
        """Attach an EE trigger: ``fn(ctx, rows)`` fires per batch-insert
        statement on ``stream``, inside the inserting transaction
        (paper §3.2.3); charged at ``ee_trigger_us`` per firing."""
        self._reject_ddl_in_txn("CREATE TRIGGER")
        return self.streaming.create_ee_trigger(name, stream, fn)

    def create_pe_trigger(self, name: str, stream: str, fn) -> PETrigger:
        """Attach a PE trigger: ``fn(db, batch)`` fires after a transaction
        commits an atomic batch into ``stream``, outside any transaction
        (paper §3.2.3); charged at ``pe_trigger_us`` per firing."""
        self._reject_ddl_in_txn("CREATE TRIGGER")
        return self.streaming.create_pe_trigger(name, stream, fn)

    def create_workflow(self, name: str, edges: Sequence) -> Workflow:
        """Wire stored procedures into a dataflow DAG (paper §2, §3.2).

        ``edges`` are ``(in_stream, procedure)`` or
        ``(in_stream, procedure, out_stream)`` tuples: each committed batch
        in ``in_stream`` runs ``procedure`` once, as one transaction, with
        that :class:`~repro.streaming.stream.Batch`.  Deliveries are
        exactly-once in batch-id order — a guarantee that survives crashes
        when recovery is enabled; cycles are rejected.

        Returns:
            The validated :class:`Workflow`.

        Raises:
            WorkflowError: malformed edge, unknown stream/procedure,
                duplicate subscription, or a cycle (including across
                previously registered workflows).
            TransactionError: called inside a transaction.
        """
        self._reject_ddl_in_txn("CREATE WORKFLOW")
        return self.streaming.create_workflow(name, edges)

    # -- streaming data plane ----------------------------------------------------

    def ingest(self, stream: str, rows, batch_id: Optional[int] = None) -> list[int]:
        """Ingest one atomic batch into ``stream`` as one transaction.

        Committed batches trigger downstream workflow procedures before
        this call returns (see :meth:`drain`).  With recovery enabled,
        each *applied* batch is command-logged with its rows — ingests
        are the dataflow's border inputs, the records weak recovery
        replays.  Batches queued for the future are **not** durable until
        applied; after a crash the client must resubmit them.

        Args:
            stream: target stream name (created via :meth:`create_stream`).
            rows: the batch — tuples in declared-column order, or
                column→value mappings.
            batch_id: explicit atomic-batch id; defaults to the next id
                after the newest batch the stream has seen.

        Returns:
            The batch ids applied, in order: ``[batch_id]`` normally,
            ``[]`` when the batch was queued (arrived from the future),
            or several ids when this batch filled a gap and queued
            successors were applied behind it.

        Raises:
            BatchOrderError: ``batch_id`` is at or before the stream's
                committed watermark, or duplicates a queued batch.
            SchemaError: a row does not match the declared schema.
            NoSuchTableError | StreamingError: ``stream`` is unknown or
                not a stream.
            TransactionError: called while a transaction is open (each
                batch is its own transaction; use ``ctx.emit`` inside
                procedures).
        """
        return self.streaming.ingest(stream, rows, batch_id)

    def drain(self) -> int:
        """Run pending workflow/PE-trigger deliveries to completion.

        A delivery whose transaction aborts stays queued and the error
        propagates — call ``drain()`` again to retry it (exactly-once:
        the aborted attempt rolled back, so the retry's effects happen
        once).  After a **strong** recovery, regenerated
        committed-but-undelivered hops wait in the queue; the first
        ``drain()`` resumes the dataflow where the crash cut it.

        After the queue empties, stream garbage collection drops rows of
        batches that every workflow subscriber has fully consumed (keeping
        the newest consumed batch), so sustained ingest does not grow
        memory without bound; ``stats()["streaming"]`` reports per-stream
        and total ``rows_reclaimed``.

        Returns:
            How many deliveries were processed.

        Raises:
            ProcedureError | TransactionAborted: a delivery's procedure
                failed; the delivery stays queued for retry.
            ScheduleViolation: the scheduler observed a non-monotonic
                batch id for a subscription (internal invariant).
        """
        return self.streaming.drain()

    # -- durability (paper §3.1, §4.4) ----------------------------------------

    def checkpoint(self, path: Optional[str | Path] = None) -> Path:
        """Write a checkpoint of all durable state; returns its path.

        A checkpoint is one checksummed file holding the full
        ``Catalog.snapshot()`` (tables, streams, windows — rowids, rows,
        next-rowid) plus the streaming runtime's watermarks and scheduler
        positions.  With no ``path``, the checkpoint is *managed*: it
        lands in the recovery directory, the command log is truncated up
        to the checkpoint's LSN, and older checkpoints are pruned (the
        newest two are kept — the predecessor is the fallback should a
        crash tear the newest).  With an explicit ``path``, the snapshot
        is exported there and the log is left untouched.

        Args:
            path: optional export destination (outside the managed
                recovery directory).

        Returns:
            The path of the written checkpoint file.

        Raises:
            TransactionError: a transaction is open (checkpoints are
                consistent cuts between transactions).
            RecoveryError: the database has no ``recovery_dir`` and no
                explicit ``path`` was given, or it was opened
                ``readonly``.

        Charges ``snapshot_row_us`` per serialised row.
        """
        if self._txn is not None:
            raise TransactionError(
                f"cannot checkpoint while transaction {self._txn.txn_id} is "
                f"open (checkpoints are consistent cuts between transactions)"
            )
        if self._recovery is not None:
            return self._recovery.checkpoint(path)
        if path is None:
            raise RecoveryError(
                "this database has no recovery_dir; pass an explicit path "
                "to export a standalone checkpoint"
            )
        from ..recovery.checkpoint import write_checkpoint

        return write_checkpoint(
            path,
            {
                "lsn": 0,
                "catalog": self.catalog.snapshot(),
                "streaming": self.streaming.persistent_state(),
            },
            self.clock,
        )

    def flush_log(self) -> None:
        """Force the command log's group-commit buffer to disk (one
        batched fsync).  The durability window closes here: everything
        committed so far survives a crash.  No-op without recovery."""
        if self._recovery is not None:
            self._recovery.flush()

    def close(self) -> None:
        """Flush and close the command log.  The database remains
        queryable in memory, but further commits are no longer captured;
        idempotent, and a no-op without recovery."""
        if self._recovery is not None:
            self._recovery.close()

    def create_index(
        self,
        table_name: str,
        index_name: str,
        key_columns: Sequence[str],
        *,
        unique: bool = False,
        ordered: bool = False,
    ):
        """Create a secondary index; invalidates cached plans so future
        statements can pick the new access path."""
        self._reject_ddl_in_txn("CREATE INDEX")
        index = self.catalog.table(table_name).create_index(
            index_name, key_columns, unique=unique, ordered=ordered
        )
        self._schema_changed()
        return index

    def drop_index(self, table_name: str, index_name: str) -> None:
        """Drop an index; invalidates cached plans so statements compiled
        against it replan onto a different access path.  Always drop
        indexes through this method, not ``Table.drop_index`` directly —
        stale cached plans would keep probing the dropped index."""
        self._reject_ddl_in_txn("DROP INDEX")
        self.catalog.table(table_name).drop_index(index_name)
        self._schema_changed()

    def _reject_ddl_in_txn(self, what: str) -> None:
        """DDL is auto-commit only: the undo log records physical row
        mutations, not schema changes, so DDL cannot be rolled back."""
        if self._txn is not None:
            raise TransactionError(
                f"{what} is not allowed inside a transaction "
                f"(txn {self._txn.txn_id} is open; DDL is auto-commit only)"
            )

    def _schema_changed(self) -> None:
        """After any DDL: drop every cached plan and advance the epoch so
        externally held prepared statements (and procedure pin tables) are
        invalidated."""
        self.plan_cache.clear()
        self.schema_epoch += 1

    # -- transactions ----------------------------------------------------------

    def begin(self) -> Transaction:
        """Open an explicit transaction.

        The caller owns the handle and must :meth:`~Transaction.commit`
        or :meth:`~Transaction.abort` it; prefer ``with
        db.transaction():`` which does so automatically.  With recovery
        enabled, the statements that wrote are logged as one ``txn``
        record when the transaction commits.

        Returns:
            The open :class:`Transaction` handle.

        Raises:
            TransactionError: a transaction is already open
                (single-partition serial model: no nesting).
        """
        return self._begin(implicit=False)

    @contextmanager
    def transaction(self) -> Iterator[Transaction]:
        """Scope one transaction: commit on clean exit, abort on exception.

        A transaction already finished inside the block (manual
        ``txn.abort()``/``txn.commit()``) is left as-is on exit.

        Yields:
            The open :class:`Transaction` handle.

        Raises:
            TransactionError: a transaction is already open.
        """
        txn = self.begin()
        try:
            yield txn
        except BaseException:
            if txn.is_active:
                txn.abort()
            raise
        if txn.is_active:
            txn.commit()

    @contextmanager
    def _implicit_txn(self) -> Iterator[Transaction]:
        """Auto-commit scope for one statement (or one batch): begin an
        implicit transaction, abort on exception, commit on clean exit."""
        txn = self._begin(implicit=True)
        try:
            yield txn
        except BaseException:
            txn.abort()
            raise
        txn.commit()

    def _begin(self, *, implicit: bool) -> Transaction:
        if self._txn is not None:
            raise TransactionError(
                f"transaction {self._txn.txn_id} is already open "
                f"(single-partition serial model: one transaction at a time)"
            )
        txn = Transaction(self, self._next_txn_id, implicit=implicit)
        self._next_txn_id += 1
        self._txn = txn
        self.clock.charge_cost("txn_begin")
        self.txn_stats["begun"] += 1
        if implicit:
            self.txn_stats["implicit"] += 1
        obs = self.obs
        if obs.enabled:
            # open until _txn_closed, so trigger/log spans nest inside it
            self._txn_span = obs.span("txn", txn_id=txn.txn_id, implicit=implicit)
        return txn

    def _txn_closed(self, txn: Transaction, event: str) -> None:
        """Called by :class:`Transaction` after commit/abort settles state."""
        self._txn = None
        self.clock.charge_cost(event)
        try:
            if event == "txn_commit":
                self.txn_stats["committed"] += 1
                # Command logging rides the commit path, before post-commit
                # hooks fire, so parent records precede the downstream
                # deliveries they trigger.
                capture = self._log_capture
                if capture is not None:
                    capture.on_commit(txn)
            else:
                self.txn_stats["aborted"] += 1
                # aborted transactions publish no stream batches (no PE triggers)
                self.streaming.on_abort(txn)
        finally:
            span = self._txn_span
            if span is not None:
                self._txn_span = None
                span.finish(outcome="commit" if event == "txn_commit" else "abort")

    # -- stored procedures -----------------------------------------------------

    def register_procedure(self, name, fn: Optional[ProcedureFn] = None):
        """Register ``fn(ctx, *args)`` as stored procedure ``name``.

        Three equivalent forms::

            db.register_procedure("vote", vote_fn)      # direct

            @db.register_procedure("vote")              # named decorator
            def vote_fn(ctx, contestant_id): ...

            @db.register_procedure                      # bare decorator
            def vote(ctx, contestant_id): ...           # name = fn.__name__

        Procedure names are case-insensitive and must be unique.  With
        recovery enabled, bodies must be **deterministic** — recovery
        re-invokes them with the logged arguments and expects identical
        effects.

        Returns:
            ``fn`` (so the decorator forms compose), or the decorator
            itself in the named-decorator form.

        Raises:
            ValueError: the name is already registered.
        """
        if callable(name) and fn is None:  # bare-decorator form
            return self.register_procedure(name.__name__, name)
        if fn is None:
            def decorate(f: ProcedureFn) -> ProcedureFn:
                self.register_procedure(name, f)
                return f
            return decorate
        key = name.lower()
        if key in self._procedures:
            raise ValueError(f"stored procedure {name!r} is already registered")
        self._procedures[key] = StoredProcedure(key, fn)
        return fn

    def call(self, name: str, *args: Any) -> Any:
        """Invoke a stored procedure as one transaction.

        The body runs with a :class:`ProcedureContext`; its statements use
        the procedure's pinned compile-once plans.  On return the
        transaction commits (and, with recovery enabled, a ``call``
        record with ``name`` and ``args`` is command-logged — replay
        re-invokes the procedure, so bodies must be deterministic and
        args JSON-safe).  On exception the transaction rolls back.

        Args:
            name: registered procedure name (case-insensitive).
            args: positional arguments passed to the body after ``ctx``.

        Returns:
            The body's return value.

        Raises:
            NoSuchProcedureError: ``name`` is not registered.
            TransactionAborted: the body aborted (including
                :class:`UserAbort` from ``ctx.abort()``); propagates
                unwrapped after rollback.
            ProcedureError: the body raised any other exception; wrapped
                with the original as ``__cause__`` after rollback.
            TransactionError: a transaction is already open (serial
                model: procedures cannot nest inside transactions).
            RecoveryError: recovery is enabled and ``args`` are not
                JSON-serialisable.
        """
        proc = self._procedures.get(name.lower())
        if proc is None:
            known = ", ".join(sorted(self._procedures)) or "none"
            raise NoSuchProcedureError(f"no stored procedure {name!r} (have: {known})")
        result = self._call_procedure(proc, args)
        # A committed call may have emitted stream batches; run the
        # downstream workflow deliveries before handing control back.
        self.streaming.drain()
        return result

    def _call_procedure(
        self,
        proc: StoredProcedure,
        args: Sequence[Any],
        *,
        before=None,
        log_record: Optional[dict] = None,
        span: bool = True,
    ) -> Any:
        """Run one procedure invocation as one transaction.

        ``before(ctx)``, when given, runs inside the transaction ahead of
        the body — the streaming runtime uses it to advance owned windows
        within a workflow-delivery transaction, so an abort rolls the
        window back together with the body's writes.

        ``log_record`` overrides the command-log record written when the
        transaction commits: workflow deliveries pass their
        ``{"op": "delivery", ...}`` record so replay re-drives the
        delivery (batch rebuilt from the stream table) instead of
        treating it as a client ``call``.

        ``span=False`` skips the ``procedure`` trace span — the streaming
        runtime's ``delivery`` span already times this exact invocation
        (same bounds, same proc tag), so a second span would only add
        hot-path cost and a redundant tree level.
        """
        if self._txn is not None:
            raise TransactionError(
                f"cannot invoke procedure {proc.name!r}: transaction "
                f"{self._txn.txn_id} is already open (serial model)"
            )
        capture = self._log_capture
        if capture is not None and log_record is None:
            # build + validate the record while nothing has happened yet:
            # unserialisable args must fail before the transaction opens
            log_record = capture.call_record(proc.name, args)
        obs = self.obs
        proc_span = obs.span("procedure", proc=proc.name) if span and obs.enabled else None
        try:
            txn = self._begin(implicit=False)
            if capture is not None:
                txn.log_record = log_record
            self.txn_stats["procedure_calls"] += 1
            ctx = ProcedureContext(self, proc, txn)
            prev_proc = self._current_proc
            self._current_proc = proc.name
            try:
                try:
                    if before is not None:
                        before(ctx)
                    result = proc.fn(ctx, *args)
                except TransactionAborted:
                    if txn.is_active:
                        txn.abort()
                    raise
                except Exception as exc:
                    if txn.is_active:
                        txn.abort()
                    raise ProcedureError(
                        f"procedure {proc.name!r} failed and was rolled back: "
                        f"{type(exc).__name__}: {exc}"
                    ) from exc
                except BaseException:
                    if txn.is_active:
                        txn.abort()
                    raise
                if txn.is_active:
                    txn.commit()
            finally:
                self._current_proc = prev_proc
        finally:
            if proc_span is not None:
                proc_span.finish()
        return result

    def call_in_txn(self, name: str, *args: Any) -> Any:
        """Run a stored procedure's **body** inside the open explicit
        transaction, without committing it.

        This is the cross-partition prepare seam (paper §4.7): a
        :class:`~repro.partition.PartitionedDatabase` coordinator begins an
        explicit transaction on each participant partition, runs procedure
        fragments through this method, and only then commits every
        participant in its globally assigned order — so all fragments
        commit or none do.  Unlike :meth:`call`, the transaction stays
        open on return: the caller owns commit/abort.

        The body runs with the usual :class:`ProcedureContext` (pinned
        plans, ``ctx.emit`` staging into the open transaction, owned-window
        visibility).  On failure the body's writes are rolled back to a
        savepoint taken at entry — the enclosing transaction stays
        consistent and usable, exactly like a failed statement.  With
        recovery enabled the invocation is captured as one ``callx``
        command in the transaction's log record, so replay re-invokes the
        body deterministically at the same point of the transaction.

        Args:
            name: registered procedure name (case-insensitive).
            args: positional arguments passed to the body after ``ctx``.

        Returns:
            The body's return value.

        Raises:
            NoSuchProcedureError: ``name`` is not registered.
            TransactionError: no explicit transaction is open (use
                :meth:`call` for the ordinary one-invocation-one-
                transaction path).
            TransactionAborted: the body called ``ctx.abort()``; its
                writes are rolled back, the transaction stays open.
            ProcedureError: the body raised; writes rolled back likewise.
            RecoveryError: recovery is enabled and ``args`` are not
                JSON-serialisable (raised before the body runs).
        """
        proc = self._procedures.get(name.lower())
        if proc is None:
            known = ", ".join(sorted(self._procedures)) or "none"
            raise NoSuchProcedureError(f"no stored procedure {name!r} (have: {known})")
        txn = self._txn
        if txn is None or txn.implicit:
            raise TransactionError(
                f"call_in_txn({name!r}) requires an open explicit transaction "
                f"(the caller owns commit/abort); use db.call() for the "
                f"auto-commit form"
            )
        capture = self._log_capture
        cmd_mark = len(txn.log_cmds)
        if capture is not None:
            # validate serialisability before any effect, like db.call;
            # a rolled-back fragment deletes its own entry below
            capture.record_call_in_txn(txn, proc.name, args)
        self.txn_stats["procedure_calls"] += 1
        ctx = ProcedureContext(self, proc, txn)
        prev_proc = self._current_proc
        self._current_proc = proc.name
        mark = txn.undo.mark()
        try:
            return proc.fn(ctx, *args)
        except TransactionAborted:
            self._charge_undone(txn.undo.rollback_to(mark))
            del txn.log_cmds[cmd_mark:]
            raise
        except Exception as exc:
            self._charge_undone(txn.undo.rollback_to(mark))
            del txn.log_cmds[cmd_mark:]
            raise ProcedureError(
                f"procedure {proc.name!r} failed and was rolled back to its "
                f"savepoint: {type(exc).__name__}: {exc}"
            ) from exc
        except BaseException:
            self._charge_undone(txn.undo.rollback_to(mark))
            del txn.log_cmds[cmd_mark:]
            raise
        finally:
            self._current_proc = prev_proc

    # -- statement preparation -----------------------------------------------

    def prepare(self, sql: str) -> PreparedStatement:
        """Fetch the prepared statement for ``sql``, planning it on a cache
        miss.  A hit charges ``plan_cache_hit_us``; a miss charges the full
        ``sql_plan_us`` compile cost.

        Args:
            sql: one statement (the exact text is the cache key).

        Returns:
            The compiled :class:`PreparedStatement`, stamped with the
            current schema epoch.

        Raises:
            LexError | ParseError | PlanningError: the SQL is invalid
                against the current schema.
        """
        stats = self.table_stats
        # analyzed tables whose row count drifted past the threshold are
        # re-analyzed first; the version bump makes the cache lookup below
        # miss for every plan costed under the old numbers
        stats.maybe_auto_refresh(self.catalog)
        stmt = self.plan_cache.get(sql, stats.version)
        if stmt is not None:
            self.clock.charge_cost("plan_cache_hit")
            return stmt
        self.clock.charge_cost("sql_plan")
        span = self.obs.span("plan.compile", sql=sql[:120]) if self.obs.enabled else None
        try:
            stmt = prepare(
                sql, self.catalog, stats=stats, force_join=self._force_join
            )
        finally:
            if span is not None:
                span.finish()
        stmt.epoch = self.schema_epoch
        stmt.stats_version = stats.version
        self.plan_cache.put(sql, stmt)
        self._tally_plan(stmt.plan_info)
        return stmt

    _JOIN_OP_TALLY = {
        "HashJoin": "join_hash",
        "MergeJoin": "join_merge",
        "IndexNestedLoopJoin": "join_inl",
        "BlockNestedLoopJoin": "join_bnl",
        "NestedLoopJoin": "join_nested",
    }

    def _tally_plan(self, info: dict[str, Any]) -> None:
        self._planner_stats["plans_costed"] += 1
        node = info
        while node is not None:
            for join in node.get("joins", ()):
                key = self._JOIN_OP_TALLY.get(join.get("op"))
                if key is not None:
                    self._planner_stats[key] += 1
            node = node.get("select")  # descend into INSERT ... SELECT

    def _planner_stats_section(self) -> dict[str, Any]:
        joins = {
            key.removeprefix("join_"): self._planner_stats.get(key, 0)
            for key in self._JOIN_OP_TALLY.values()
        }
        return {
            "plans_costed": self._planner_stats.get("plans_costed", 0),
            "joins": joins,
            "force_join": self._force_join,
            "stats": self.table_stats.stats_section(),
        }

    @property
    def force_join(self) -> Optional[str]:
        """Forced join algorithm (``"inl"``/``"hash"``/``"merge"``/``"bnl"``)
        or None for cost-based selection.  Setting it clears the plan cache
        so already-cached plans do not leak the previous strategy — this is
        the differential-testing hook, not a tuning knob."""
        return self._force_join

    @force_join.setter
    def force_join(self, value: Optional[str]) -> None:
        if value is not None and value not in JOIN_STRATEGIES:
            raise PlanningError(
                f"unknown join strategy {value!r} "
                f"(expected one of {', '.join(JOIN_STRATEGIES)})"
            )
        if value != self._force_join:
            self._force_join = value
            self.plan_cache.clear()

    def analyze(self, table: Optional[str] = None) -> dict[str, int]:
        """Collect column statistics (NDV, min/max, null counts) for one
        table or — with no argument — every table; the SQL spelling is
        ``ANALYZE [table]``.

        Each analyzed table is scanned once (charged per row like a
        sequential scan).  The statistics version bump invalidates every
        cached plan, so subsequent statements are re-costed against the
        fresh numbers.

        Returns:
            ``{table_name: analyzed_row_count}`` for the analyzed tables.

        Raises:
            NoSuchTableError: ``table`` names no existing table.
        """
        targets = (
            [self.catalog.table(table)] if table is not None else list(self.catalog.tables())
        )
        out: dict[str, int] = {}
        cost = self.clock.cost
        for t in targets:
            snap = self.table_stats.analyze(t)
            out[t.name] = snap.analyzed_rows
            if snap.analyzed_rows:
                self.clock.charge(
                    "rows_scanned",
                    cost.sql_row_us * snap.analyzed_rows,
                    count=snap.analyzed_rows,
                )
        return out

    def explain(self, sql: str, params: Sequence[Any] = ()) -> dict[str, Any]:
        """The plan tree for ``sql`` with estimated — and, for SELECT,
        **actual** — per-operator row counts.

        SELECT statements are executed (with ``params``) so every operator
        can report the rows it actually emitted next to the planner's
        estimate; DML statements are planned but **not** executed (EXPLAIN
        must never mutate), so their nodes carry estimates only.

        Returns:
            A JSON-safe dict: the statement's ``plan_info`` tree where
            each operator node has ``op``, ``est_rows``, ``cost``, the
            alternatives ``considered``, and (SELECT only) ``actual_rows``.
        """
        stmt = self.prepare(sql)
        info = _copy_plan_info(stmt.plan_info)
        if stmt.kind == "select":
            prev = self._explain_counts
            self._explain_counts = counts = {}
            try:
                result = self.execute_prepared(stmt, params)
            finally:
                self._explain_counts = prev
            _annotate_actual(info, counts)
            info["actual_rows"] = len(result)
        return info

    # -- execution -------------------------------------------------------------

    def execute(self, sql: str, params: Sequence[Any] = ()) -> ResultSet:
        """Execute one SQL statement (through the plan cache).

        Joins the open transaction if there is one; otherwise runs as an
        implicit single-statement transaction (auto-commit), so even a
        multi-row statement that fails midway leaves no partial writes.
        With recovery enabled, a statement that wrote is captured in the
        transaction's command-log record at commit.

        Args:
            sql: one statement (SELECT/INSERT/UPDATE/DELETE); ``?``
                placeholders bind positionally.
            params: bind values, one per ``?`` (JSON-safe values required
                when recovery is enabled).

        Returns:
            A :class:`ResultSet` — rows and column names for SELECT, a
            ``rowcount`` for DML.

        Raises:
            LexError | ParseError | PlanningError: the SQL is invalid.
            ConstraintViolation: a NOT NULL / UNIQUE / PRIMARY KEY rule
                was violated (the statement's writes are rolled back).
            StreamingError: direct DML against a stream or window table
                (use :meth:`ingest` / ``ctx.emit``).
            WindowVisibilityError: reading an owned window outside its
                owning procedure.
            TransactionError: the enclosing transaction is no longer live.
        """
        # ANALYZE is a utility statement, not a plannable one; intercept it
        # before the plan cache (cheap guard: first letter then full check)
        if sql.lstrip()[:1] in ("a", "A"):
            head = sql.strip().rstrip(";").rstrip()
            if head.lower() == "analyze" or (
                head[:7].lower() == "analyze" and head[7:8].isspace()
            ):
                analyzed = self.analyze(head[7:].strip() or None)
                return ResultSet(
                    ("table_name", "analyzed_rows"), sorted(analyzed.items())
                )
        return self.execute_prepared(self.prepare(sql), params)

    def execute_prepared(
        self, stmt: PreparedStatement, params: Sequence[Any] = ()
    ) -> ResultSet:
        """Execute an already-prepared statement (no cache interaction).

        Same transactional behaviour, capture, and errors as
        :meth:`execute`, plus: rejects statements prepared before the
        last schema change (:class:`PlanningError`) — a stale plan could
        silently read the wrong columns or probe a dropped index;
        re-prepare (or go through :meth:`execute`) after DDL."""
        txn = self._txn
        capture = self._log_capture
        if txn is not None:
            if capture is None:
                return self._execute(stmt, params, txn)
            mark = len(txn.undo)
            result = self._execute(stmt, params, txn)
            if len(txn.undo) > mark:
                try:
                    capture.record_statement(txn, stmt.sql, params)
                except RecoveryError:
                    # uncapturable params: undo this statement so the open
                    # transaction stays consistent with its eventual record
                    self._charge_undone(txn.undo.rollback_to(mark))
                    raise
            return result
        with self._implicit_txn() as txn:
            result = self._execute(stmt, params, txn)
            if capture is not None and len(txn.undo) > 0:
                capture.record_statement(txn, stmt.sql, params)
        return result

    def executemany(self, sql: str, param_rows: Iterable[Sequence[Any]]) -> int:
        """Apply one statement across a batch of parameter rows; returns the
        total rowcount.

        The statement goes through :meth:`prepare` exactly once, and — for
        statements that support it (``INSERT ... VALUES``) — the whole batch
        is applied **vectorized** as one statement execution: every row is
        bound up front, the storage layer bulk-inserts with one index
        maintenance loop per index, and the undo log records one compact
        range entry.  Per-invocation overhead is paid once per batch, not
        once per row (paper §3.2.1: the batch is the atomic unit).  The
        batch is always atomic: a failure anywhere rolls back every row —
        inside an explicit transaction the batch acts as one statement with
        its own savepoint, leaving the transaction usable.  Statements with
        no vectorized binder fall back to one execution per parameter row
        (still one prepare, still atomic).  After the batch,
        :attr:`last_counters` holds the **aggregate** counters across all
        parameter rows.

        Args:
            sql: one statement with ``?`` placeholders.
            param_rows: an iterable of bind-value rows (materialised up
                front when recovery is enabled, so the whole batch can
                ride in one command-log record).

        Returns:
            The total rowcount across the batch.

        Raises:
            Everything :meth:`execute` can raise; a failure anywhere in
            the batch rolls back the entire batch.
        """
        stmt = self.prepare(sql)
        txn = self._txn
        capture = self._log_capture
        if capture is not None:
            # the logical command is (sql, all rows): materialise so the
            # batch can ride in one command-log record
            param_rows = [list(row) for row in param_rows]
        if stmt.run_many is not None:
            if txn is not None:
                mark = len(txn.undo)
                total = self._execute_bulk(stmt, param_rows, txn)
                if capture is not None and len(txn.undo) > mark:
                    try:
                        capture.record_many(txn, sql, param_rows)
                    except RecoveryError:
                        self._charge_undone(txn.undo.rollback_to(mark))
                        raise
                return total
            with self._implicit_txn() as txn:
                total = self._execute_bulk(stmt, param_rows, txn)
                if capture is not None and len(txn.undo) > 0:
                    capture.record_many(txn, sql, param_rows)
            return total
        batch: Counter[str] = Counter()
        if txn is not None:
            # batch-level savepoint: the whole batch rolls back together,
            # keeping the atomicity contract uniform with the bulk path
            mark = txn.undo.mark()
            try:
                total = self._execute_batch(stmt, param_rows, txn, batch)
                if capture is not None and len(txn.undo) > mark:
                    capture.record_many(txn, sql, param_rows)
            except BaseException:
                self._charge_undone(txn.undo.rollback_to(mark))
                raise
        else:
            with self._implicit_txn() as txn:
                total = self._execute_batch(stmt, param_rows, txn, batch)
                if capture is not None and len(txn.undo) > 0:
                    capture.record_many(txn, sql, param_rows)
        self.last_counters = batch
        return total

    def _execute_batch(
        self,
        stmt: PreparedStatement,
        param_rows: Iterable[Sequence[Any]],
        txn: Transaction,
        batch: Counter[str],
    ) -> int:
        total = 0
        for params in param_rows:
            result = self._execute(stmt, params, txn)
            total += result.rowcount
            batch.update(self.last_counters)
        return total

    def _execute_bulk(
        self,
        stmt: PreparedStatement,
        param_rows: Iterable[Sequence[Any]],
        txn: Transaction,
    ) -> int:
        """One vectorized statement execution over a whole parameter batch
        (mirrors :meth:`_execute`: same liveness/staleness checks, same
        savepoint semantics, same accounting — amortized across the batch)."""
        self._check_executable(stmt, txn)
        ctx = ExecutionContext(
            self.catalog, (), observer=txn.undo, guard=self._guard, obs=self.obs
        )
        mark = txn.undo.mark()
        try:
            total = stmt.run_many(ctx, param_rows)
        except BaseException:
            self._charge_undone(txn.undo.rollback_to(mark))
            raise
        self._charge(ctx.counters)
        self.last_counters = ctx.counters
        self.counters.update(ctx.counters)
        return total

    def query(self, sql: str, params: Sequence[Any] = ()) -> list[dict[str, Any]]:
        """Convenience wrapper over :meth:`execute`.

        Args:
            sql: one statement; ``?`` placeholders bind positionally.
            params: bind values, one per ``?``.

        Returns:
            The result rows as ``{column: value}`` dicts.

        Raises:
            Everything :meth:`execute` can raise.
        """
        return self.execute(sql, params).to_dicts()

    def _execute(
        self, stmt: PreparedStatement, params: Sequence[Any], txn: Transaction
    ) -> ResultSet:
        """The single internal execution path: every statement, from every
        public entry point, runs here inside ``txn``.

        The transaction's undo log observes all writes; a statement that
        raises is rolled back to its own savepoint (statement-level
        atomicity) before the exception propagates, leaving the enclosing
        transaction consistent and usable."""
        self._check_executable(stmt, txn)
        ctx = ExecutionContext(
            self.catalog,
            params,
            observer=txn.undo,
            guard=self._guard,
            obs=self.obs,
            explain_counts=self._explain_counts,
        )
        mark = txn.undo.mark()
        try:
            result = stmt.execute(ctx)
        except BaseException:
            self._charge_undone(txn.undo.rollback_to(mark))
            raise
        self._charge(ctx.counters)
        self.last_counters = ctx.counters
        self.counters.update(ctx.counters)
        return result

    def _check_executable(self, stmt: PreparedStatement, txn: Transaction) -> None:
        """Shared preconditions of every execution path: a live current
        transaction and a non-stale prepared statement."""
        if txn is not self._txn or not txn.is_active:
            # e.g. a ProcedureContext that escaped its db.call() scope:
            # executing on it would write outside any live transaction.
            raise TransactionError(
                f"transaction {txn.txn_id} is {txn.state} and is not the "
                f"database's current transaction; statements must run inside "
                f"a live transaction scope"
            )
        if stmt.epoch is not None and stmt.epoch != self.schema_epoch:
            raise PlanningError(
                f"prepared statement is stale (schema changed since it was "
                f"prepared): {stmt.sql!r}; re-prepare it"
            )

    # -- accounting ------------------------------------------------------------

    def _charge_undone(self, undone: int) -> None:
        """Charge the replay cost of ``undone`` undo-log records (statement
        savepoint rollback and full abort share this accounting)."""
        if undone:
            self.clock.charge(
                "rows_undone", self.clock.cost.sql_row_us * undone, count=undone
            )

    def _charge(self, counters: Counter[str]) -> None:
        cost = self.clock.cost
        clock = self.clock
        clock.charge("sql_stmt", cost.sql_stmt_us)
        for event, attr in _EXECUTION_CHARGES:
            n = counters.get(event, 0)
            if n:
                clock.charge(event, getattr(cost, attr) * n, count=n)

    def add_stats_section(self, name: str, thunk) -> None:
        """Attach an extra section to :meth:`stats`.

        ``thunk()`` is called on every stats snapshot and its return value
        appears under ``name``.  This is how subsystems that *front* the
        engine (the network server's ``"server"`` counters, the
        observability registry's ``"obs"`` section) surface their state
        through the one stats API benchmarks and dashboards already read.
        Re-registering a name replaces the previous thunk; a registered
        section shadows any built-in key of the same name.  A thunk that
        raises does **not** break :meth:`stats` — its section becomes
        ``{"error": "<class>: <message>"}``.
        """
        self._stats_sections[name] = thunk

    def remove_stats_section(self, name: str) -> None:
        """Detach a section added by :meth:`add_stats_section` (no-op if
        absent)."""
        self._stats_sections.pop(name, None)

    def _builtin_stats_sections(self) -> dict[str, Any]:
        """Name → thunk for every built-in :meth:`stats` section, so a
        selective ``stats(section=...)`` computes only what it returns."""
        return {
            "sim_time_us": lambda: self.clock.now_us,
            "schema_epoch": lambda: self.schema_epoch,
            "events": lambda: dict(self.clock.events),
            "counters": lambda: dict(self.counters),
            "transactions": lambda: {
                **{key: self.txn_stats.get(key, 0) for key in _TXN_STAT_KEYS},
                "open": self._txn is not None,
            },
            "procedures": lambda: {
                name: proc.pinned_count()
                for name, proc in sorted(self._procedures.items())
            },
            "plan_cache": self.plan_cache.stats,
            "tables": lambda: {
                t.name: {
                    "rows": t.row_count(),
                    "kind": t.schema.kind.value,
                    "columns": list(t.schema.declared_columns()),
                }
                for t in self.catalog.tables()
            },
            "streaming": self.streaming.stats,
            "recovery": lambda: (
                self._recovery.stats() if self._recovery is not None else None
            ),
        }

    def stats(self, section: Optional[str] = None) -> Any:
        """One snapshot for dashboards/benchmarks — or one section of it.

        Args:
            section: fetch just this section's value (computing only it —
                wire clients poll one section without the engine
                serialising the whole snapshot).  Registered sections
                shadow built-ins, matching the full-snapshot behaviour.

        Returns:
            With ``section=None``, a dict with ``sim_time_us`` (simulated
            clock), ``events`` (architectural event tallies),
            ``schema_epoch``, ``counters`` (lifetime execution counters),
            ``transactions`` (begun/committed/aborted/implicit/
            procedure_calls/open), ``procedures`` (pinned-plan counts),
            ``plan_cache`` (hits/misses/evictions), ``tables``
            (row counts, kinds, declared columns), ``streaming``
            (watermarks, windows, trigger fires, scheduler state),
            ``recovery`` (command-log/checkpoint state and what the
            open-time recovery replayed; None when memory-only), plus one
            key per attached :meth:`add_stats_section` section (always
            including ``obs``).  With ``section=``, that section's value
            alone.

        Raises:
            KeyError: ``section`` names no built-in or registered section.

        Table column listings show the *declared* schema only — hidden
        ``__``-prefixed metadata columns are engine-internal.  The full
        snapshot never raises (a failing registered thunk degrades to an
        ``{"error": ...}`` section); safe to call between statements.
        """
        builtins = self._builtin_stats_sections()
        if section is not None:
            thunk = self._stats_sections.get(section)
            if thunk is not None:
                return _safe_section(thunk)
            builtin = builtins.get(section)
            if builtin is not None:
                return builtin()
            known = sorted(set(builtins) | set(self._stats_sections))
            raise KeyError(
                f"unknown stats section {section!r} (have: {', '.join(known)})"
            )
        snapshot = {name: thunk() for name, thunk in builtins.items()}
        for name, thunk in self._stats_sections.items():
            snapshot[name] = _safe_section(thunk)
        return snapshot

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        open_txn = self._txn.txn_id if self._txn is not None else None
        return (
            f"Database(tables={self.catalog.table_names()}, "
            f"procedures={sorted(self._procedures)}, open_txn={open_txn}, "
            f"cache={self.plan_cache!r})"
        )
