"""LRU cache of prepared statements, keyed by SQL text.

H-Store-style engines execute the same handful of statements millions of
times (every stored-procedure invocation reuses the procedure's SQL), so
repeated statements must skip the lexer, parser, and planner entirely.
The cache is a plain ``OrderedDict`` LRU: a hit moves the entry to the
MRU end; inserting past capacity evicts the LRU entry.

Hits, misses, and evictions are counted so the benchmark harness can
report the cache hit rate and tests can assert that a repeated statement
was planned exactly once.

Entries are additionally validated against the **statistics version**: a
cached plan stamped with an older :attr:`StatsCatalog.version` than the
caller's is evicted and reported as a miss (counted separately as a
``stats_invalidation``), so an ANALYZE or automatic stats refresh causes
replanning without a schema-epoch bump.  This matters because schema
epochs *reject* stale plans at execution; stats staleness must only ever
trigger a replan — a stats-stale plan is suboptimal, never incorrect.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Optional

from ..sql.planner import PreparedStatement


class PlanCache:
    """Bounded LRU mapping ``sql text -> PreparedStatement``."""

    __slots__ = (
        "capacity", "hits", "misses", "evictions", "stats_invalidations", "_entries",
    )

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise ValueError("plan cache capacity must be >= 1")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.stats_invalidations = 0
        self._entries: OrderedDict[str, PreparedStatement] = OrderedDict()

    def get(self, sql: str, stats_version: Optional[int] = None) -> Optional[PreparedStatement]:
        """Look up a plan; ``stats_version`` (when given) must match the
        version the cached plan was costed under, else the entry is stale
        — evicted and reported as a miss so the caller replans."""
        stmt = self._entries.get(sql)
        if stmt is None:
            self.misses += 1
            return None
        if (
            stats_version is not None
            and stmt.stats_version is not None
            and stmt.stats_version != stats_version
        ):
            del self._entries[sql]
            self.stats_invalidations += 1
            self.misses += 1
            return None
        self._entries.move_to_end(sql)
        self.hits += 1
        return stmt

    def put(self, sql: str, stmt: PreparedStatement) -> None:
        self._entries[sql] = stmt
        self._entries.move_to_end(sql)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def invalidate(self, sql: str) -> None:
        self._entries.pop(sql, None)

    def clear(self) -> None:
        """Drop all entries (schema changes invalidate every plan)."""
        self._entries.clear()

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict[str, Any]:
        return {
            "capacity": self.capacity,
            "size": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "stats_invalidations": self.stats_invalidations,
            "hit_rate": self.hit_rate(),
        }

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, sql: str) -> bool:
        return sql in self._entries

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PlanCache(size={len(self._entries)}/{self.capacity}, "
            f"hits={self.hits}, misses={self.misses})"
        )
