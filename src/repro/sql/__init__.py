"""SQL front-end: lexer → parser → planner → executor.

The public surface most callers want is :func:`prepare` (compile SQL text
into a reusable :class:`PreparedStatement`) plus the executor's runtime
types; the :class:`~repro.engine.Database` facade wraps all of this behind
a prepared-statement cache.
"""

from .ast import Statement
from .executor import ExecutionContext, ResultSet
from .lexer import tokenize
from .parser import parse, parse_expression
from .planner import PreparedStatement, plan, prepare

__all__ = [
    "ExecutionContext",
    "PreparedStatement",
    "ResultSet",
    "Statement",
    "parse",
    "parse_expression",
    "plan",
    "prepare",
    "tokenize",
]
