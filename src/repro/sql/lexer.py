"""SQL lexer.

Turns SQL text into a stream of :class:`Token`.  Identifiers and keywords
are case-insensitive; string literals use single quotes with ``''`` as the
escape; ``?`` is a positional parameter placeholder (H-Store stored
procedures bind parameters positionally).  ``--`` starts a line comment.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Iterator

from ..common.errors import LexError

KEYWORDS = frozenset(
    """
    select insert update delete from where group by having order limit offset
    distinct as and or not in between like is null true false values into set
    join inner left on asc desc case when then else end exists primary key
    create table unique all union count sum avg min max
    """.split()
)


class TokenType(enum.Enum):
    KEYWORD = "KEYWORD"
    IDENT = "IDENT"
    NUMBER = "NUMBER"
    STRING = "STRING"
    PARAM = "PARAM"
    OP = "OP"
    EOF = "EOF"


@dataclass(frozen=True)
class Token:
    type: TokenType
    value: Any
    position: int

    def is_keyword(self, *names: str) -> bool:
        return self.type is TokenType.KEYWORD and self.value in names

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Token({self.type.value}, {self.value!r}@{self.position})"


_TWO_CHAR_OPS = ("<=", ">=", "<>", "!=")
_ONE_CHAR_OPS = "+-*/%=<>(),.;"


def tokenize(text: str) -> list[Token]:
    """Tokenise ``text``; raises :class:`LexError` on illegal input."""
    tokens: list[Token] = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "-" and i + 1 < n and text[i + 1] == "-":
            nl = text.find("\n", i)
            i = n if nl == -1 else nl + 1
            continue
        if ch == "?":
            tokens.append(Token(TokenType.PARAM, None, i))
            i += 1
            continue
        if ch == "'":
            value, i = _read_string(text, i)
            tokens.append(Token(TokenType.STRING, value, i))
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            value, j = _read_number(text, i)
            tokens.append(Token(TokenType.NUMBER, value, i))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i + 1
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j].lower()
            if word in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, word, i))
            else:
                tokens.append(Token(TokenType.IDENT, word, i))
            i = j
            continue
        two = text[i : i + 2]
        if two in _TWO_CHAR_OPS:
            tokens.append(Token(TokenType.OP, "<>" if two == "!=" else two, i))
            i += 2
            continue
        if ch in _ONE_CHAR_OPS:
            tokens.append(Token(TokenType.OP, ch, i))
            i += 1
            continue
        raise LexError(f"illegal character {ch!r} at position {i}", i)
    tokens.append(Token(TokenType.EOF, None, n))
    return tokens


def _read_string(text: str, start: int) -> tuple[str, int]:
    """Read a single-quoted string starting at ``start``; returns
    (value, index-after-closing-quote)."""
    parts: list[str] = []
    i = start + 1
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == "'":
            if i + 1 < n and text[i + 1] == "'":
                parts.append("'")
                i += 2
                continue
            return "".join(parts), i + 1
        parts.append(ch)
        i += 1
    raise LexError(f"unterminated string literal starting at {start}", start)


def _read_number(text: str, start: int) -> tuple[int | float, int]:
    i = start
    n = len(text)
    seen_dot = False
    seen_exp = False
    while i < n:
        ch = text[i]
        if ch.isdigit():
            i += 1
        elif ch == "." and not seen_dot and not seen_exp:
            seen_dot = True
            i += 1
        elif ch in "eE" and not seen_exp and i > start:
            nxt = text[i + 1] if i + 1 < n else ""
            if nxt.isdigit() or (nxt in "+-" and i + 2 < n and text[i + 2].isdigit()):
                seen_exp = True
                i += 2 if nxt in "+-" else 1
            else:
                break
        else:
            break
    literal = text[start:i]
    if seen_dot or seen_exp:
        return float(literal), i
    return int(literal), i


def token_stream(text: str) -> Iterator[Token]:
    yield from tokenize(text)
