"""Expression compilation and evaluation with SQL three-valued logic.

Expressions are compiled once (at statement-preparation time) into Python
closures of signature ``(row, params) -> value`` where ``row`` is the flat
tuple produced by the current plan node and ``params`` is the positional
bind list.  NULL (``None``) propagates through arithmetic and comparisons;
``AND``/``OR``/``NOT`` follow Kleene three-valued logic; a WHERE clause
treats ``NULL`` as not-satisfied.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence

from ..common.errors import ExpressionError, NoSuchColumnError, PlanningError
from .ast import (
    Between,
    Binary,
    Case,
    ColumnRef,
    Expr,
    FuncCall,
    InList,
    IsNull,
    Like,
    Literal,
    Param,
    Unary,
)

Compiled = Callable[[Sequence[Any], Sequence[Any]], Any]


@dataclass(frozen=True)
class SlotRef(Expr):
    """Internal node: a direct reference into the current row tuple.

    The planner substitutes these for group keys and computed aggregates
    when compiling HAVING / ORDER BY / projection over grouped rows.
    """

    slot: int


class Scope:
    """Resolves column references to slots in the current flat row.

    Built from the FROM clause: each source contributes its columns at an
    offset.  Unqualified names must be unambiguous across sources.
    """

    def __init__(self) -> None:
        #: binding name -> (offset, schema)
        self.sources: dict[str, tuple[int, Any]] = {}
        self.width = 0

    def add_source(self, binding: str, schema) -> int:
        binding = binding.lower()
        if binding in self.sources:
            raise PlanningError(f"duplicate table binding {binding!r} in FROM clause")
        offset = self.width
        self.sources[binding] = (offset, schema)
        self.width += schema.arity()
        return offset

    def resolve(self, name: str, qualifier: Optional[str]) -> int:
        name = name.lower()
        if qualifier is not None:
            qualifier = qualifier.lower()
            if qualifier not in self.sources:
                raise PlanningError(f"unknown table or alias {qualifier!r}")
            offset, schema = self.sources[qualifier]
            return offset + schema.position(name)
        matches = []
        for binding, (offset, schema) in self.sources.items():
            if schema.has_column(name):
                matches.append(offset + schema.position(name))
        if not matches:
            raise PlanningError(f"unknown column {name!r}")
        if len(matches) > 1:
            raise PlanningError(f"ambiguous column {name!r}; qualify it")
        return matches[0]

    def columns_of(self, binding: str) -> list[tuple[str, int]]:
        offset, schema = self.sources[binding.lower()]
        return [(c, offset + schema.position(c)) for c in schema.column_names()]

    def all_columns(self) -> list[tuple[str, int]]:
        out = []
        for binding in self.sources:
            out.extend(self.columns_of(binding))
        return out


# ---------------------------------------------------------------------------
# Scalar function registry
# ---------------------------------------------------------------------------

def _fn_abs(v):
    return None if v is None else abs(v)


def _fn_floor(v):
    return None if v is None else math.floor(v)


def _fn_ceil(v):
    return None if v is None else math.ceil(v)


def _fn_round(v, digits=0):
    if v is None:
        return None
    result = round(v, int(digits))
    return result


def _fn_length(v):
    return None if v is None else len(v)


def _fn_upper(v):
    return None if v is None else str(v).upper()


def _fn_lower(v):
    return None if v is None else str(v).lower()


def _fn_mod(a, b):
    if a is None or b is None:
        return None
    if b == 0:
        raise ExpressionError("MOD by zero")
    return math.fmod(a, b) if isinstance(a, float) or isinstance(b, float) else int(math.fmod(a, b))


def _fn_coalesce(*args):
    for a in args:
        if a is not None:
            return a
    return None


def _fn_nullif(a, b):
    return None if a == b else a


def _fn_greatest(*args):
    present = [a for a in args if a is not None]
    return max(present) if present else None


def _fn_least(*args):
    present = [a for a in args if a is not None]
    return min(present) if present else None


def _fn_power(a, b):
    if a is None or b is None:
        return None
    return math.pow(a, b)


def _fn_sqrt(a):
    if a is None:
        return None
    if a < 0:
        raise ExpressionError("SQRT of negative value")
    return math.sqrt(a)


SCALAR_FUNCTIONS: dict[str, Callable[..., Any]] = {
    "abs": _fn_abs,
    "floor": _fn_floor,
    "ceil": _fn_ceil,
    "ceiling": _fn_ceil,
    "round": _fn_round,
    "length": _fn_length,
    "char_length": _fn_length,
    "upper": _fn_upper,
    "lower": _fn_lower,
    "mod": _fn_mod,
    "coalesce": _fn_coalesce,
    "nullif": _fn_nullif,
    "greatest": _fn_greatest,
    "least": _fn_least,
    "power": _fn_power,
    "sqrt": _fn_sqrt,
}


# ---------------------------------------------------------------------------
# Arithmetic / comparison with NULL propagation
# ---------------------------------------------------------------------------

def _arith(op: str, a: Any, b: Any) -> Any:
    if a is None or b is None:
        return None
    try:
        if op == "+":
            return a + b
        if op == "-":
            return a - b
        if op == "*":
            return a * b
        if op == "/":
            if b == 0:
                raise ExpressionError("division by zero")
            if isinstance(a, int) and isinstance(b, int):
                # SQL integer division truncates toward zero
                q = abs(a) // abs(b)
                return q if (a >= 0) == (b >= 0) else -q
            return a / b
        if op == "%":
            if b == 0:
                raise ExpressionError("modulo by zero")
            if isinstance(a, int) and isinstance(b, int):
                r = abs(a) % abs(b)
                return r if a >= 0 else -r
            return math.fmod(a, b)
    except TypeError:
        raise ExpressionError(
            f"invalid operands for {op!r}: {type(a).__name__}, {type(b).__name__}"
        ) from None
    raise ExpressionError(f"unknown arithmetic operator {op!r}")  # pragma: no cover


def _compare(op: str, a: Any, b: Any) -> Optional[bool]:
    if a is None or b is None:
        return None
    try:
        if op == "=":
            return a == b
        if op == "<>":
            return a != b
        if op == "<":
            return a < b
        if op == "<=":
            return a <= b
        if op == ">":
            return a > b
        if op == ">=":
            return a >= b
    except TypeError:
        raise ExpressionError(
            f"cannot compare {type(a).__name__} with {type(b).__name__}"
        ) from None
    raise ExpressionError(f"unknown comparison operator {op!r}")  # pragma: no cover


_LIKE_CACHE: dict[str, re.Pattern] = {}


def like_match(value: Any, pattern: Any) -> Optional[bool]:
    """SQL LIKE with ``%`` and ``_`` wildcards (NULL-propagating)."""
    if value is None or pattern is None:
        return None
    compiled = _LIKE_CACHE.get(pattern)
    if compiled is None:
        regex = "".join(
            ".*" if ch == "%" else "." if ch == "_" else re.escape(ch) for ch in pattern
        )
        compiled = re.compile(f"^{regex}$", re.DOTALL)
        if len(_LIKE_CACHE) < 1024:
            _LIKE_CACHE[pattern] = compiled
    return compiled.match(str(value)) is not None


# ---------------------------------------------------------------------------
# Compiler
# ---------------------------------------------------------------------------

def compile_expr(expr: Expr, scope: Scope) -> Compiled:
    """Compile ``expr`` into a ``(row, params) -> value`` closure.

    Aggregate function calls must have been substituted away (into
    :class:`SlotRef`) by the planner before compilation; encountering one
    here is a planning bug surfaced as :class:`PlanningError`.
    """
    if isinstance(expr, Literal):
        value = expr.value
        return lambda row, params: value

    if isinstance(expr, SlotRef):
        slot = expr.slot
        return lambda row, params: row[slot]

    if isinstance(expr, ColumnRef):
        try:
            slot = scope.resolve(expr.name, expr.qualifier)
        except NoSuchColumnError as exc:
            raise PlanningError(str(exc)) from None
        return lambda row, params: row[slot]

    if isinstance(expr, Param):
        index = expr.index
        def eval_param(row, params, index=index):
            try:
                return params[index]
            except IndexError:
                raise ExpressionError(
                    f"statement requires at least {index + 1} parameters, got {len(params)}"
                ) from None
        return eval_param

    if isinstance(expr, Unary):
        inner = compile_expr(expr.operand, scope)
        if expr.op == "not":
            def eval_not(row, params):
                v = inner(row, params)
                if v is None:
                    return None
                return not _truthy(v)
            return eval_not
        if expr.op == "-":
            def eval_neg(row, params):
                v = inner(row, params)
                return None if v is None else -v
            return eval_neg
        if expr.op == "+":
            return inner
        raise PlanningError(f"unknown unary operator {expr.op!r}")  # pragma: no cover

    if isinstance(expr, Binary):
        op = expr.op
        left = compile_expr(expr.left, scope)
        right = compile_expr(expr.right, scope)
        if op == "and":
            def eval_and(row, params):
                a = left(row, params)
                if a is not None and not _truthy(a):
                    return False
                b = right(row, params)
                if b is not None and not _truthy(b):
                    return False
                if a is None or b is None:
                    return None
                return True
            return eval_and
        if op == "or":
            def eval_or(row, params):
                a = left(row, params)
                if a is not None and _truthy(a):
                    return True
                b = right(row, params)
                if b is not None and _truthy(b):
                    return True
                if a is None or b is None:
                    return None
                return False
            return eval_or
        if op in ("=", "<>", "<", "<=", ">", ">="):
            return lambda row, params: _compare(op, left(row, params), right(row, params))
        return lambda row, params: _arith(op, left(row, params), right(row, params))

    if isinstance(expr, FuncCall):
        from .ast import AGGREGATE_FUNCTIONS

        if expr.name in AGGREGATE_FUNCTIONS:
            raise PlanningError(
                f"aggregate {expr.name.upper()}() not allowed in this context"
            )
        fn = SCALAR_FUNCTIONS.get(expr.name)
        if fn is None:
            raise PlanningError(f"unknown function {expr.name!r}")
        arg_fns = [compile_expr(a, scope) for a in expr.args]
        return lambda row, params: fn(*[f(row, params) for f in arg_fns])

    if isinstance(expr, InList):
        target = compile_expr(expr.expr, scope)
        item_fns = [compile_expr(e, scope) for e in expr.items]
        negated = expr.negated
        def eval_in(row, params):
            v = target(row, params)
            if v is None:
                return None
            saw_null = False
            for f in item_fns:
                item = f(row, params)
                if item is None:
                    saw_null = True
                elif item == v:
                    return not negated
            if saw_null:
                return None
            return negated
        return eval_in

    if isinstance(expr, Between):
        target = compile_expr(expr.expr, scope)
        low = compile_expr(expr.low, scope)
        high = compile_expr(expr.high, scope)
        negated = expr.negated
        def eval_between(row, params):
            v = target(row, params)
            lo = low(row, params)
            hi = high(row, params)
            a = _compare(">=", v, lo)
            b = _compare("<=", v, hi)
            if a is None or b is None:
                if a is False or b is False:
                    return negated
                return None
            result = a and b
            return (not result) if negated else result
        return eval_between

    if isinstance(expr, IsNull):
        inner = compile_expr(expr.expr, scope)
        negated = expr.negated
        return lambda row, params: (inner(row, params) is not None) == negated

    if isinstance(expr, Like):
        target = compile_expr(expr.expr, scope)
        pattern = compile_expr(expr.pattern, scope)
        negated = expr.negated
        def eval_like(row, params):
            result = like_match(target(row, params), pattern(row, params))
            if result is None:
                return None
            return (not result) if negated else result
        return eval_like

    if isinstance(expr, Case):
        compiled_whens = [
            (compile_expr(cond, scope), compile_expr(val, scope)) for cond, val in expr.whens
        ]
        else_fn = compile_expr(expr.else_, scope) if expr.else_ is not None else None
        def eval_case(row, params):
            for cond_fn, val_fn in compiled_whens:
                cond = cond_fn(row, params)
                if cond is not None and _truthy(cond):
                    return val_fn(row, params)
            return else_fn(row, params) if else_fn is not None else None
        return eval_case

    raise PlanningError(f"cannot compile expression node {type(expr).__name__}")


def _truthy(value: Any) -> bool:
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return value != 0
    raise ExpressionError(f"value {value!r} is not a boolean condition")


def predicate(compiled: Compiled) -> Callable[[Sequence[Any], Sequence[Any]], bool]:
    """Wrap a compiled expression as a WHERE predicate: NULL → not satisfied."""
    def check(row, params):
        v = compiled(row, params)
        if v is None:
            return False
        return _truthy(v)
    return check


def transform(expr: Expr, fn: Callable[[Expr], Optional[Expr]]) -> Expr:
    """Structure-preserving top-down rewrite of an expression tree.

    ``fn`` is offered every node: returning a replacement node substitutes
    that whole subtree (no further descent); returning ``None`` descends
    into the children.  The planner builds its column-resolution and
    grouped-row rewrites on this single walker so the per-node-type
    recursion lives in exactly one place.
    """
    replaced = fn(expr)
    if replaced is not None:
        return replaced
    if isinstance(expr, Unary):
        return Unary(expr.op, transform(expr.operand, fn))
    if isinstance(expr, Binary):
        return Binary(expr.op, transform(expr.left, fn), transform(expr.right, fn))
    if isinstance(expr, FuncCall):
        return FuncCall(
            expr.name,
            tuple(transform(a, fn) for a in expr.args),
            distinct=expr.distinct,
            star=expr.star,
        )
    if isinstance(expr, InList):
        return InList(
            transform(expr.expr, fn),
            tuple(transform(i, fn) for i in expr.items),
            negated=expr.negated,
        )
    if isinstance(expr, Between):
        return Between(
            transform(expr.expr, fn),
            transform(expr.low, fn),
            transform(expr.high, fn),
            negated=expr.negated,
        )
    if isinstance(expr, IsNull):
        return IsNull(transform(expr.expr, fn), negated=expr.negated)
    if isinstance(expr, Like):
        return Like(
            transform(expr.expr, fn),
            transform(expr.pattern, fn),
            negated=expr.negated,
        )
    if isinstance(expr, Case):
        return Case(
            tuple((transform(c, fn), transform(v, fn)) for c, v in expr.whens),
            transform(expr.else_, fn) if expr.else_ is not None else None,
        )
    return expr


