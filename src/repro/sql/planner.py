"""Compile-once SQL planner: AST → :class:`PreparedStatement`.

This is the layer H-Store (and therefore S-Store) leans on for its core
performance premise: a stored procedure's SQL is planned **once** and the
resulting plan is executed many times with fresh parameters.  Planning does
all name resolution, expression compilation (to *generated Python code*,
see :mod:`repro.sql.compile`), and — critically — access-path and
join-algorithm selection up front, so the execution hot path is a chain of
precompiled single-frame callables with no AST walking, no string
handling, and no dictionary lookups per row.

Physical choices are **priced by a cost model** over table statistics
(:mod:`repro.engine.stats`) instead of picked purely by rule:

* Access paths (paper §4.6.3: "a lookup rather than a table scan"):
  sargable equality conjuncts matched against hash indexes, range
  conjuncts against ordered indexes, sequential scan as the floor — each
  candidate priced as probe cost + estimated rows fetched, cheapest wins
  (ties prefer the more selective path, preserving the classic rule).
* Join algorithms per step: index-nested-loop (probe an inner-table
  index per outer row), hash join (build on the estimated-smaller side),
  sort-merge, and block-nested-loop as the universal fallback.  The
  estimate of rows flowing *into* each step is carried left-to-right, so
  the same ON clause can plan differently for a selective vs. a broad
  outer.  ``force_join`` pins one algorithm for differential testing.

Conjuncts not consumed by the chosen access path are ANDed into a compiled
*residual* predicate evaluated per row.  UPDATE and DELETE run the same
access-path machinery, then **materialise the matching rowids before the
first mutation** — this is what lets :meth:`Table.scan` iterate without a
defensive copy.

Every plan carries a ``plan_info`` tree (operator, estimated rows, cost,
alternatives considered) that ``Database.explain`` surfaces with actual
row counts.

Entry points: :func:`prepare` (SQL text → prepared statement) and
:func:`plan` (parsed AST → prepared statement).  Statements are planned
against a catalog for schema information but re-resolve tables by name at
run time through the :class:`~repro.sql.executor.ExecutionContext`, so one
prepared statement works on every partition with the same schema.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Iterable, Iterator, Optional, Sequence

from ..common.errors import PlanningError
from ..storage.catalog import Catalog
from ..storage.schema import TableSchema, is_hidden_column
from ..storage.table import Table
from .ast import (
    AGGREGATE_FUNCTIONS,
    Between,
    Binary,
    ColumnRef,
    Delete,
    Expr,
    FuncCall,
    Insert,
    Literal,
    Select,
    SelectItem,
    Statement,
    Update,
    contains_aggregate,
    max_param_index,
    walk,
)
from .compile import compile_expr, compile_predicate
from .executor import (
    ExecutionContext,
    IndexRangeScan,
    IndexScan,
    ResultSet,
    Scan,
    SeqScan,
    null_safe_key,
    sort_rows,
)
from .expressions import Compiled, Scope, SlotRef, transform
from .functions import make_accumulator
from .joins import BlockNestedLoopStep, HashJoinStep, MergeJoinStep
from .parser import parse

#: Scope with no sources: compiles expressions over (params, literals) only.
#: Column references against it raise PlanningError, which is exactly the
#: check we want for INSERT VALUES rows, index key expressions, and LIMIT.
_VALUE_SCOPE = Scope()

Runner = Callable[[ExecutionContext], ResultSet]

#: join strategies accepted by ``force_join``
JOIN_STRATEGIES = ("inl", "hash", "merge", "bnl")

# ---------------------------------------------------------------------------
# Cost model.  The unit is "one sequential row visit" = 1.0; everything else
# is priced relative to it.  Constants are deliberately coarse — what
# matters is the *asymptotic* ordering (probe ≪ scan, hash build linear,
# nested loop quadratic), which is what flips plans at scale.
# ---------------------------------------------------------------------------

_COST_ROW = 1.0          # visiting one row sequentially
_COST_PROBE = 0.4        # one hash/index lookup
_COST_BUILD_ROW = 1.5    # inserting one row into a join hash table
_COST_PAIR = 0.25        # evaluating a predicate on one candidate pair
_COST_SORT_FACTOR = 1.2  # per-element sort factor (× log2 n)

#: fallback selectivity of a conjunct the estimator cannot read
_OTHER_SELECTIVITY = 0.33


def _sort_cost(n: float) -> float:
    return _COST_SORT_FACTOR * n * math.log2(n + 2)


_FALLBACK_STATS = None


def _default_stats():
    """Statistics catalog used when planning outside a Database (tests,
    direct ``prepare`` calls): never analyzed, so every estimate uses the
    documented defaults.  Imported lazily — :mod:`repro.engine` imports
    this module at package-import time."""
    global _FALLBACK_STATS
    if _FALLBACK_STATS is None:
        from ..engine.stats import StatsCatalog

        _FALLBACK_STATS = StatsCatalog()
    return _FALLBACK_STATS


class _PlanEnv:
    """Planning-time environment: statistics + forced join strategy."""

    __slots__ = ("stats", "force_join")

    def __init__(self, stats, force_join: Optional[str]):
        if force_join is not None and force_join not in JOIN_STRATEGIES:
            raise PlanningError(
                f"unknown join strategy {force_join!r} "
                f"(expected one of {', '.join(JOIN_STRATEGIES)})"
            )
        self.stats = stats if stats is not None else _default_stats()
        self.force_join = force_join


class PreparedStatement:
    """An immutable, compiled statement ready for repeated execution.

    Holds the original SQL (the plan-cache key), the statement kind
    (``select``/``insert``/``update``/``delete``), the number of ``?``
    parameters the statement requires, the output column names
    (``columns``; empty for DML — known statically at plan time), a
    compiled runner closure, and ``plan_info`` — the JSON-safe plan tree
    (access path, join algorithms, estimated rows/costs) that
    ``Database.explain`` renders.

    ``epoch`` and ``stats_version`` are the mutable fields: the
    :class:`~repro.engine.Database` facade stamps them at prepare time.
    A schema-epoch mismatch **rejects** execution (a stale plan could
    read the wrong columns); a stats-version mismatch merely causes the
    plan cache to replan (a stats-stale plan is suboptimal, not
    incorrect).  Both are ``None`` for statements planned outside a
    Database.

    ``run_many`` is the vectorized batch binder, present only on statements
    that support bulk execution (INSERT ... VALUES): called as
    ``run_many(ctx, param_rows)`` it binds every parameter row, bulk-inserts
    the whole batch as **one** statement execution, and returns the
    rowcount.  ``Database.executemany`` routes through it when available.
    """

    __slots__ = (
        "sql",
        "kind",
        "param_count",
        "columns",
        "epoch",
        "stats_version",
        "plan_info",
        "_runner",
        "run_many",
    )

    def __init__(
        self,
        sql: str,
        kind: str,
        param_count: int,
        runner: Runner,
        columns: tuple[str, ...] = (),
        run_many: Optional[Callable[[ExecutionContext, Iterable[Sequence]], int]] = None,
        plan_info: Optional[dict[str, Any]] = None,
    ):
        self.sql = sql
        self.kind = kind
        self.param_count = param_count
        self.columns = columns
        self.epoch: Optional[int] = None
        self.stats_version: Optional[int] = None
        self.plan_info: dict[str, Any] = plan_info if plan_info is not None else {"kind": kind}
        self._runner = runner
        self.run_many = run_many

    def execute(self, ctx: ExecutionContext) -> ResultSet:
        if len(ctx.params) < self.param_count:
            raise PlanningError(
                f"statement requires {self.param_count} parameter(s), "
                f"got {len(ctx.params)}: {self.sql!r}"
            )
        return self._runner(ctx)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PreparedStatement({self.kind}, {self.sql!r})"


def prepare(
    sql: str,
    catalog: Catalog,
    *,
    stats=None,
    force_join: Optional[str] = None,
) -> PreparedStatement:
    """Lex + parse + plan ``sql`` against ``catalog``.

    ``stats`` is a :class:`~repro.engine.stats.StatsCatalog` (cardinality
    and selectivity estimates; defaults apply without one).  ``force_join``
    pins every join step to one algorithm — ``"inl"``, ``"hash"``,
    ``"merge"``, or ``"bnl"`` — falling back to the nearest feasible
    algorithm when the forced one cannot run the join shape.
    """
    return plan(parse(sql), catalog, sql=sql, stats=stats, force_join=force_join)


def plan(
    stmt: Statement,
    catalog: Catalog,
    *,
    sql: str = "",
    stats=None,
    force_join: Optional[str] = None,
) -> PreparedStatement:
    """Compile a parsed statement into a :class:`PreparedStatement`."""
    env = _PlanEnv(stats, force_join)
    if isinstance(stmt, Select):
        return _plan_select(stmt, catalog, sql, env)
    if isinstance(stmt, Insert):
        return _plan_insert(stmt, catalog, sql, env)
    if isinstance(stmt, Update):
        return _plan_update(stmt, catalog, sql, env)
    if isinstance(stmt, Delete):
        return _plan_delete(stmt, catalog, sql, env)
    raise PlanningError(f"cannot plan statement of type {type(stmt).__name__}")


# ---------------------------------------------------------------------------
# WHERE-clause analysis
# ---------------------------------------------------------------------------

_RANGE_OPS = frozenset({"<", "<=", ">", ">="})
_FLIP = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}


def split_conjuncts(expr: Optional[Expr]) -> list[Expr]:
    """Flatten a WHERE tree into its top-level AND-conjuncts."""
    if expr is None:
        return []
    out: list[Expr] = []
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, Binary) and node.op == "and":
            stack.append(node.right)
            stack.append(node.left)
        else:
            out.append(node)
    # stack order above preserves left-to-right conjunct order
    return out


def _is_value_expr(expr: Expr) -> bool:
    """True when ``expr`` references no columns (params/literals only)."""
    return not any(isinstance(n, (ColumnRef, SlotRef)) for n in walk(expr))


def _base_column(expr: Expr, scope: Scope, base_arity: int, schema: TableSchema) -> Optional[str]:
    """If ``expr`` is a column reference resolving into the base table,
    return its (lower-cased) column name; else None."""
    if not isinstance(expr, ColumnRef):
        return None
    try:
        slot = scope.resolve(expr.name, expr.qualifier)
    except PlanningError:
        return None
    if slot >= base_arity:
        return None
    return schema.column_names()[slot]


class _Sarg:
    """One classified conjunct."""

    __slots__ = ("kind", "column", "exprs", "conjunct")

    def __init__(self, kind: str, column: Optional[str], exprs: tuple, conjunct: Expr):
        self.kind = kind          # 'eq' | 'cmp_lo' | 'cmp_hi' | 'between' | 'other'
        self.column = column
        self.exprs = exprs        # ('eq': (value,)) ('cmp': (op, value)) ('between': (lo, hi))
        self.conjunct = conjunct


def _classify(conjunct: Expr, scope: Scope, base_arity: int, schema: TableSchema) -> _Sarg:
    if isinstance(conjunct, Binary) and conjunct.op == "=":
        col = _base_column(conjunct.left, scope, base_arity, schema)
        value = conjunct.right
        if col is None:
            col = _base_column(conjunct.right, scope, base_arity, schema)
            value = conjunct.left
        if col is not None and _is_value_expr(value):
            return _Sarg("eq", col, (value,), conjunct)
    elif isinstance(conjunct, Binary) and conjunct.op in _RANGE_OPS:
        col = _base_column(conjunct.left, scope, base_arity, schema)
        op, value = conjunct.op, conjunct.right
        if col is None:
            col = _base_column(conjunct.right, scope, base_arity, schema)
            op, value = _FLIP[conjunct.op], conjunct.left
        if col is not None and _is_value_expr(value):
            kind = "cmp_lo" if op in (">", ">=") else "cmp_hi"
            return _Sarg(kind, col, (op, value), conjunct)
    elif isinstance(conjunct, Between) and not conjunct.negated:
        col = _base_column(conjunct.expr, scope, base_arity, schema)
        if col is not None and _is_value_expr(conjunct.low) and _is_value_expr(conjunct.high):
            return _Sarg("between", col, (conjunct.low, conjunct.high), conjunct)
    return _Sarg("other", None, (), conjunct)


def _literal_value(expr: Expr) -> Any:
    """The plan-time value of a literal bound, or None when unknown
    (parameter / arithmetic — estimated with defaults)."""
    return expr.value if isinstance(expr, Literal) else None


def _sarg_selectivity(sarg: _Sarg, table: Table, env: _PlanEnv) -> float:
    """Estimated fraction of rows surviving one conjunct."""
    stats = env.stats
    if sarg.kind == "eq":
        return stats.eq_selectivity(table, sarg.column)
    if sarg.kind == "cmp_lo":
        return stats.range_selectivity(table, sarg.column, _literal_value(sarg.exprs[1]), None)
    if sarg.kind == "cmp_hi":
        return stats.range_selectivity(table, sarg.column, None, _literal_value(sarg.exprs[1]))
    if sarg.kind == "between":
        return stats.range_selectivity(
            table,
            sarg.column,
            _literal_value(sarg.exprs[0]),
            _literal_value(sarg.exprs[1]),
        )
    return _OTHER_SELECTIVITY


def _choose_equality_index(table: Table, eq_cols: Sequence[str]):
    """Best index whose key columns are all bound by equality conjuncts —
    :meth:`Table.find_equality_index` in subset mode, so e.g.
    ``WHERE pk = ? AND flag = 1`` still probes the primary key."""
    if not eq_cols:
        return None
    return table.find_equality_index(eq_cols, subset=True)


def _build_scan_costed(
    where: Optional[Expr],
    table: Table,
    scope: Scope,
    base_arity: int,
    env: _PlanEnv,
    *,
    extra_conjuncts: Sequence[Expr] = (),
) -> tuple[Scan, float, dict[str, Any]]:
    """Pick the physical access path for one table given its WHERE conjuncts.

    ``extra_conjuncts`` are pre-split conjuncts (used by SELECT-with-joins,
    which pushes only base-table conjuncts down into the scan); ``where``
    is the raw clause for the single-table statements.  Candidates —
    equality-index probe, ordered-index range scan, sequential scan — are
    priced as probe cost + estimated rows fetched, and the cheapest wins
    (ties break toward the probe, which also matches the legacy rule).

    Returns ``(scan, estimated_output_rows, plan_info_node)``; the scan's
    residual predicate covers every conjunct the access path itself does
    not guarantee.
    """
    schema = table.schema
    conjuncts = list(extra_conjuncts) if extra_conjuncts else split_conjuncts(where)
    sargs = [_classify(c, scope, base_arity, schema) for c in conjuncts]
    live = table.row_count()

    # candidate: (cost, tie_order, fetch_est, consumed, make_scan, info)
    candidates: list[tuple] = []

    # 1. equality index probe
    eq_by_col: dict[str, int] = {}  # column -> sarg position (first wins)
    for i, s in enumerate(sargs):
        if s.kind == "eq" and s.column not in eq_by_col:
            eq_by_col[s.column] = i
    index = _choose_equality_index(table, list(eq_by_col))
    if index is not None:
        consumed = {eq_by_col[col] for col in index.key_columns}
        if index.unique:
            fetch = min(1.0, float(live))
        else:
            sel = 1.0
            for col in index.key_columns:
                sel *= env.stats.eq_selectivity(table, col)
            fetch = live * sel
        cost = _COST_PROBE + fetch * _COST_ROW

        def make_eq_scan(consumed=consumed, index=index):
            key_fns = [
                compile_expr(sargs[eq_by_col[col]].exprs[0], _VALUE_SCOPE)
                for col in index.key_columns
            ]
            residual = _compile_residual(sargs, consumed, scope)
            return IndexScan(table.name, index.name, key_fns, residual)

        candidates.append(
            (cost, 0, fetch, consumed, make_eq_scan,
             {"op": "IndexScan", "table": table.name, "index": index.name,
              "unique": index.unique})
        )

    # 2. ordered (range) index — first range-eligible column with one
    for i, s in enumerate(sargs):
        if s.kind not in ("cmp_lo", "cmp_hi", "between"):
            continue
        ordered = table.find_ordered_index(s.column)
        if ordered is None:
            continue
        consumed = set()
        lo_expr = hi_expr = None
        lo_inc = hi_inc = True
        if s.kind == "between":
            lo_expr, hi_expr = s.exprs
            consumed.add(i)
        else:
            for j, other in enumerate(sargs):
                if other.column != s.column:
                    continue
                if other.kind == "cmp_lo" and lo_expr is None:
                    op, value = other.exprs
                    lo_expr, lo_inc = value, op == ">="
                    consumed.add(j)
                elif other.kind == "cmp_hi" and hi_expr is None:
                    op, value = other.exprs
                    hi_expr, hi_inc = value, op == "<="
                    consumed.add(j)
        sel = env.stats.range_selectivity(
            table,
            s.column,
            _literal_value(lo_expr) if lo_expr is not None else None,
            _literal_value(hi_expr) if hi_expr is not None else None,
        )
        fetch = live * sel
        cost = _COST_PROBE + fetch * _COST_ROW

        def make_range_scan(consumed=consumed, ordered=ordered,
                            lo_expr=lo_expr, hi_expr=hi_expr,
                            lo_inc=lo_inc, hi_inc=hi_inc):
            lo_fn = compile_expr(lo_expr, _VALUE_SCOPE) if lo_expr is not None else None
            hi_fn = compile_expr(hi_expr, _VALUE_SCOPE) if hi_expr is not None else None
            residual = _compile_residual(sargs, consumed, scope)
            return IndexRangeScan(
                table.name, ordered.name, lo_fn, hi_fn, lo_inc, hi_inc, residual
            )

        candidates.append(
            (cost, 1, fetch, consumed, make_range_scan,
             {"op": "IndexRangeScan", "table": table.name, "index": ordered.name})
        )
        break  # one range candidate (first eligible column), as before

    # 3. full scan with everything as residual
    candidates.append(
        (live * _COST_ROW, 2, float(live), set(),
         lambda: SeqScan(table.name, _compile_residual(sargs, set(), scope)),
         {"op": "SeqScan", "table": table.name})
    )

    cost, _order, fetch, consumed, make_scan, info = min(
        candidates, key=lambda c: (c[0], c[1])
    )
    # rows *out* of the scan: fetched rows thinned by the residual conjuncts
    est = fetch
    for i, s in enumerate(sargs):
        if i not in consumed:
            est *= _sarg_selectivity(s, table, env)
    info = dict(info)
    info["est_rows"] = int(round(est))
    info["cost"] = round(cost, 1)
    info["considered"] = {c[5]["op"]: round(c[0], 1) for c in candidates}
    return make_scan(), est, info


def build_scan(
    where: Optional[Expr],
    table: Table,
    scope: Scope,
    base_arity: int,
    *,
    extra_conjuncts: Sequence[Expr] = (),
    stats=None,
) -> Scan:
    """Access-path selection without the cost/estimate plumbing — the
    compatibility entry point (tests drive it directly)."""
    env = _PlanEnv(stats, None)
    scan, _est, _info = _build_scan_costed(
        where, table, scope, base_arity, env, extra_conjuncts=extra_conjuncts
    )
    return scan


def combine_conjuncts(conjuncts: Sequence[Expr], scope: Scope):
    """AND pre-split conjuncts back together and compile as a WHERE-style
    predicate (NULL → not satisfied); None when there is nothing to test."""
    if not conjuncts:
        return None
    combined = conjuncts[0]
    for c in conjuncts[1:]:
        combined = Binary("and", combined, c)
    return compile_predicate(combined, scope)


def _compile_residual(sargs: list[_Sarg], consumed: set[int], scope: Scope):
    return combine_conjuncts(
        [s.conjunct for i, s in enumerate(sargs) if i not in consumed], scope
    )


# ---------------------------------------------------------------------------
# Join planning — algorithm choice priced per step
# ---------------------------------------------------------------------------


class _JoinStep:
    """Legacy nested-loop join: rescans the inner table per outer row.

    Never chosen by the cost model (:class:`BlockNestedLoopStep` strictly
    dominates it) but kept as the fallback for ``force_join="inl"`` when
    no usable index exists, so the pre-cost-model plan stays available to
    the differential tests."""

    __slots__ = ("table_name", "arity", "on_pred", "kind", "op_id", "_null_pad")

    def __init__(self, table_name: str, arity: int, on_pred, kind: str):
        self.table_name = table_name
        self.arity = arity
        self.on_pred = on_pred
        self.kind = kind
        self.op_id = -1
        self._null_pad = (None,) * arity

    def apply(self, rows: Iterator[tuple], ctx: ExecutionContext) -> Iterator[tuple]:
        table = ctx.read_table(self.table_name)
        on_pred = self.on_pred
        params = ctx.params
        left_outer = self.kind == "left"
        scanned = 0
        emitted = 0
        # finally for the same reason as SeqScan: early generator close
        # (LIMIT) must not lose the rows already visited.
        try:
            for left in rows:
                matched = False
                for _rowid, right in table.scan_visible():
                    scanned += 1
                    combined = left + right
                    if on_pred is None or on_pred(combined, params):
                        matched = True
                        emitted += 1
                        yield combined
                if left_outer and not matched:
                    emitted += 1
                    yield left + self._null_pad
        finally:
            ctx.count("rows_scanned", scanned)
            if ctx.explain_counts is not None:
                ctx.explain_counts[self.op_id] = (
                    ctx.explain_counts.get(self.op_id, 0) + emitted
                )


class _IndexJoinStep:
    """Index-nested-loop join: per outer row, probe an inner-table equality
    index with key values computed from the outer row, instead of scanning
    the whole inner table.  Residual ON conjuncts (those not covered by the
    index key) are evaluated on the combined row."""

    __slots__ = (
        "table_name", "arity", "index_name", "key_fns", "residual", "kind",
        "op_id", "_null_pad",
    )

    def __init__(
        self,
        table_name: str,
        arity: int,
        index_name: str,
        key_fns: Sequence[Compiled],
        residual,
        kind: str,
    ):
        self.table_name = table_name
        self.arity = arity
        self.index_name = index_name
        self.key_fns = tuple(key_fns)
        self.residual = residual
        self.kind = kind
        self.op_id = -1
        self._null_pad = (None,) * arity

    def apply(self, rows: Iterator[tuple], ctx: ExecutionContext) -> Iterator[tuple]:
        table = ctx.read_table(self.table_name)
        index = table.index(self.index_name)
        residual = self.residual
        params = ctx.params
        left_outer = self.kind == "left"
        visible = table.is_visible
        emitted = 0
        try:
            for left in rows:
                matched = False
                key = tuple(fn(left, params) for fn in self.key_fns)
                ctx.count("index_probes")
                if not any(v is None for v in key):  # col = NULL never matches
                    for rowid in index.lookup(key):
                        right = table.get(rowid)
                        if right is None or not visible(right):
                            continue
                        ctx.count("rows_scanned")
                        combined = left + right
                        if residual is None or residual(combined, params):
                            matched = True
                            emitted += 1
                            yield combined
                if left_outer and not matched:
                    emitted += 1
                    yield left + self._null_pad
        finally:
            if ctx.explain_counts is not None:
                ctx.explain_counts[self.op_id] = (
                    ctx.explain_counts.get(self.op_id, 0) + emitted
                )


JoinStep = (
    _JoinStep | _IndexJoinStep | HashJoinStep | MergeJoinStep | BlockNestedLoopStep
)


def _plan_join_step(
    join,
    right: Table,
    right_offset: int,
    scope: Scope,
    env: _PlanEnv,
    outer_est: float,
) -> tuple[Any, float, dict[str, Any]]:
    """Compile one join step, choosing the algorithm by estimated cost.

    An ON conjunct is *equi* when it has the shape ``inner_column =
    expr-over-earlier-tables``: the inner side resolves into the
    just-added source, and every column the other side references
    resolves to a slot *before* it (so the key is computable from the
    outer row alone).  Equi conjuncts can drive an index-nested-loop
    (via an inner-table equality index), a hash join, or a sort-merge
    join; everything else stays in the residual predicate.  Without any
    equi conjunct the block-nested-loop fallback evaluates the full ON
    clause per pair.

    Returns ``(step, estimated_output_rows, plan_info_node)``.
    """
    arity = right.schema.arity()
    inner_live = right.row_count()
    kind = join.kind

    def slot_of(expr) -> Optional[int]:
        if not isinstance(expr, ColumnRef):
            return None
        try:
            return scope.resolve(expr.name, expr.qualifier)
        except PlanningError:
            return None

    def outer_only(expr: Expr) -> bool:
        for node in walk(expr):
            if isinstance(node, ColumnRef):
                slot = slot_of(node)
                if slot is None or slot >= right_offset:
                    return False
            elif isinstance(node, SlotRef):
                return False
        return True

    conjuncts = split_conjuncts(join.on)
    eq_by_col: dict[str, tuple[int, Expr]] = {}  # inner col -> (conjunct pos, outer expr)
    for i, c in enumerate(conjuncts):
        if not (isinstance(c, Binary) and c.op == "="):
            continue
        for inner_side, outer_side in ((c.left, c.right), (c.right, c.left)):
            slot = slot_of(inner_side)
            if slot is None or not right_offset <= slot < right_offset + arity:
                continue
            if not outer_only(outer_side):
                continue
            col = right.schema.column_names()[slot - right_offset]
            eq_by_col.setdefault(col, (i, outer_side))
            break

    index = _choose_equality_index(right, list(eq_by_col))

    # -- cardinality estimates ------------------------------------------------
    eq_cols = list(eq_by_col)
    eq_sel = 1.0
    for col in eq_cols:
        eq_sel *= env.stats.eq_selectivity(right, col)
    if eq_cols:
        match_est = max(inner_live * eq_sel, 1.0 if inner_live else 0.0)
        residual_count = len(conjuncts) - len(eq_cols)
    else:
        match_est = inner_live * (_OTHER_SELECTIVITY if conjuncts else 1.0)
        residual_count = 0
    est_out = outer_est * match_est * (_OTHER_SELECTIVITY ** max(residual_count, 0))
    if kind == "left":
        est_out = max(est_out, outer_est)

    # -- candidate costs ------------------------------------------------------
    considered: dict[str, float] = {}
    if index is not None:
        idx_match = 1.0 if index.unique else max(
            inner_live * eq_sel, 1.0 if inner_live else 0.0
        )
        considered["inl"] = outer_est * (_COST_PROBE + idx_match * _COST_ROW)
    if eq_cols:
        build = min(outer_est, float(inner_live))
        probe = max(outer_est, float(inner_live))
        considered["hash"] = (
            _COST_BUILD_ROW * build + _COST_PROBE * probe + est_out * _COST_PAIR
        )
        considered["merge"] = (
            _sort_cost(outer_est) + _sort_cost(inner_live)
            + (outer_est + inner_live) * _COST_ROW + est_out * _COST_PAIR
        )
    considered["bnl"] = (
        inner_live * _COST_ROW + outer_est * inner_live * _COST_PAIR
    )

    # -- constructors ---------------------------------------------------------
    def make_inl():
        consumed = set()
        key_fns = []
        for col in index.key_columns:
            pos, outer_expr = eq_by_col[col]
            key_fns.append(compile_expr(outer_expr, scope))
            consumed.add(pos)
        residual = combine_conjuncts(
            [c for i, c in enumerate(conjuncts) if i not in consumed], scope
        )
        return _IndexJoinStep(right.name, arity, index.name, key_fns, residual, kind)

    def make_equi(cls, **kw):
        consumed = set()
        outer_key_fns = []
        inner_key_slots = []
        for col, (pos, outer_expr) in eq_by_col.items():
            outer_key_fns.append(compile_expr(outer_expr, scope))
            inner_key_slots.append(right.schema.position(col))
            consumed.add(pos)
        residual = combine_conjuncts(
            [c for i, c in enumerate(conjuncts) if i not in consumed], scope
        )
        return cls(right.name, arity, outer_key_fns, inner_key_slots, residual, kind, **kw)

    def make_bnl():
        pred = compile_predicate(join.on, scope) if join.on is not None else None
        return BlockNestedLoopStep(right.name, arity, pred, kind)

    def make_legacy():
        pred = compile_predicate(join.on, scope) if join.on is not None else None
        return _JoinStep(right.name, arity, pred, kind)

    build_inner = inner_live <= outer_est

    # -- choice ---------------------------------------------------------------
    forced = env.force_join
    if forced is not None:
        if forced == "hash" and eq_cols:
            algo = "hash"
        elif forced == "merge" and eq_cols:
            algo = "merge"
        elif forced == "inl":
            algo = "inl" if index is not None else "nested"
        else:  # bnl, or an infeasible hash/merge force (non-equi join)
            algo = "bnl"
    else:
        # tie order: inl < hash < merge < bnl (most index-exploiting first)
        order = {"inl": 0, "hash": 1, "merge": 2, "bnl": 3}
        algo = min(considered, key=lambda a: (considered[a], order[a]))

    if algo == "inl":
        step = make_inl()
        op = "IndexNestedLoopJoin"
    elif algo == "hash":
        step = make_equi(HashJoinStep, build_inner=build_inner)
        op = "HashJoin"
    elif algo == "merge":
        step = make_equi(MergeJoinStep)
        op = "MergeJoin"
    elif algo == "nested":
        step = make_legacy()
        op = "NestedLoopJoin"
    else:
        step = make_bnl()
        op = "BlockNestedLoopJoin"

    info: dict[str, Any] = {
        "op": op,
        "table": right.name,
        "join_kind": kind,
        "est_rows": int(round(est_out)),
        "cost": round(considered.get(algo, 0.0), 1),
        "considered": {a: round(c, 1) for a, c in sorted(considered.items())},
    }
    if forced is not None:
        info["forced"] = forced
    if algo == "inl":
        info["index"] = index.name
    if algo == "hash":
        info["build_side"] = "inner" if build_inner else "outer"
    return step, est_out, info


class _AggSpec:
    """One aggregate call: its argument compiler and accumulator factory."""

    __slots__ = ("call", "arg_fn", "star", "distinct", "name")

    def __init__(self, call: FuncCall, scope: Scope):
        self.call = call
        self.name = call.name
        self.star = call.star
        self.distinct = call.distinct
        if call.star:
            self.arg_fn = None
        else:
            if len(call.args) != 1:
                raise PlanningError(
                    f"aggregate {call.name.upper()}() takes exactly one argument"
                )
            self.arg_fn = compile_expr(call.args[0], scope)

    def fresh(self):
        return make_accumulator(self.name, star=self.star, distinct=self.distinct)


def _resolve_columns(expr: Expr, scope: Scope) -> Expr:
    """Rewrite every :class:`ColumnRef` into its resolved :class:`SlotRef`.

    Grouped queries match expressions by AST equality (``GROUP BY g`` must
    cover both ``g`` and ``t.g`` in the select list); resolving columns to
    slots first makes that matching semantic rather than syntactic.
    """
    def resolve(node: Expr) -> Optional[Expr]:
        if isinstance(node, ColumnRef):
            return SlotRef(scope.resolve(node.name, node.qualifier))
        return None

    return transform(expr, resolve)


def _collect_aggregates(exprs: Sequence[Optional[Expr]]) -> list[FuncCall]:
    """Aggregate calls from the given (resolved) expressions, in first-seen
    order, deduplicated by AST equality."""
    seen: list[FuncCall] = []
    for expr in exprs:
        if expr is None:
            continue
        for node in walk(expr):
            if isinstance(node, FuncCall) and node.name in AGGREGATE_FUNCTIONS:
                if node not in seen:
                    seen.append(node)
    return seen


def _rewrite_grouped(expr: Expr, mapping: dict[Expr, int], scope: Scope, what: str) -> Expr:
    """Rewrite ``expr`` to read the grouped row.

    Subtrees matching a group key or a collected aggregate call — compared
    by *resolved* AST (see :func:`_resolve_columns`), so ``GROUP BY g``
    covers both ``g`` and ``t.g`` — become :class:`SlotRef`\\ s into the
    grouped row.  A column reference outside any matched subtree is the
    classic ungrouped-column error, reported with the offending name.
    """
    def rewrite(node: Expr) -> Optional[Expr]:
        try:
            key = _resolve_columns(node, scope)
        except PlanningError:
            key = None  # contains an unresolvable column; descend to its leaf
        if key is not None:
            slot = mapping.get(key)
            if slot is not None:
                return SlotRef(slot)
        if isinstance(node, ColumnRef):
            try:
                scope.resolve(node.name, node.qualifier)
            except PlanningError as exc:
                raise PlanningError(f"{what}: {exc}") from None
            raise PlanningError(
                f"{what}: column {node.display()!r} must appear in GROUP BY "
                f"or inside an aggregate"
            )
        if isinstance(node, FuncCall) and node.name in AGGREGATE_FUNCTIONS:
            try:
                _resolve_columns(node, scope)
            except PlanningError as exc:
                raise PlanningError(f"{what}: {exc}") from None
            raise PlanningError(f"{what}: aggregates cannot be nested")
        return None

    return transform(expr, rewrite)


def _output_name(item: SelectItem, position: int) -> str:
    if item.alias:
        return item.alias.lower()
    if isinstance(item.expr, ColumnRef):
        return item.expr.name.lower()
    if isinstance(item.expr, FuncCall):
        return item.expr.name.lower()
    return f"expr_{position}"


def _compile_limit(expr: Optional[Expr], what: str):
    if expr is None:
        return None
    fn = compile_expr(expr, _VALUE_SCOPE)

    def bound(params) -> int:
        value = fn((), params)
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            raise PlanningError(f"{what} must be a non-negative integer, got {value!r}")
        return value

    return bound


def _plan_select(stmt: Select, catalog: Catalog, sql: str, env: _PlanEnv) -> PreparedStatement:
    param_count = max_param_index(stmt)

    # SELECT without FROM: evaluate the items once against an empty row.
    if stmt.table is None:
        if any(item.star for item in stmt.items):
            raise PlanningError("SELECT * requires a FROM clause")
        if stmt.group_by or stmt.having is not None or stmt.joins:
            raise PlanningError("GROUP BY/HAVING/JOIN require a FROM clause")
        names = tuple(_output_name(item, i) for i, item in enumerate(stmt.items))
        fns = [compile_expr(item.expr, _VALUE_SCOPE) for item in stmt.items]
        where_pred = (
            compile_predicate(stmt.where, _VALUE_SCOPE)
            if stmt.where is not None
            else None
        )
        const_limit = _compile_limit(stmt.limit, "LIMIT")
        const_offset = _compile_limit(stmt.offset, "OFFSET")

        def run_const(ctx: ExecutionContext) -> ResultSet:
            params = ctx.params
            # WHERE before projection: a false filter must suppress the row
            # (and any errors its select list would raise).
            if where_pred is not None and not where_pred((), params):
                out: list[tuple] = []
            else:
                out = [tuple(fn((), params) for fn in fns)]
            if const_offset is not None:
                out = out[const_offset(params):]
            if const_limit is not None:
                out = out[: const_limit(params)]
            return ResultSet(names, out)

        plan_info = {"kind": "select", "scan": None, "estimated_rows": 1}
        return PreparedStatement(
            sql, "select", param_count, run_const, columns=names, plan_info=plan_info
        )

    # -- resolve FROM sources ------------------------------------------------
    scope = Scope()
    base_table = catalog.table(stmt.table.name)
    base_binding = stmt.table.binding
    scope.add_source(base_binding, base_table.schema)
    base_arity = base_table.schema.arity()

    join_specs: list[tuple] = []
    for join in stmt.joins:
        right = catalog.table(join.table.name)
        right_offset = scope.add_source(join.table.binding, right.schema)
        if join.on is None and join.kind == "inner":
            raise PlanningError("INNER JOIN requires an ON condition")
        join_specs.append((join, right, right_offset))

    # -- WHERE: push base-table conjuncts into the scan ----------------------
    conjuncts = split_conjuncts(stmt.where)
    if join_specs:
        base_only, post_join = [], []
        for c in conjuncts:
            if all(
                _base_column(n, scope, base_arity, base_table.schema) is not None
                for n in walk(c)
                if isinstance(n, ColumnRef)
            ):
                base_only.append(c)
            else:
                post_join.append(c)
    else:
        base_only, post_join = conjuncts, []

    if any(
        isinstance(n, FuncCall) and n.name in AGGREGATE_FUNCTIONS
        for c in conjuncts
        for n in walk(c)
    ):
        raise PlanningError("aggregates are not allowed in WHERE")

    scan, est, scan_info = _build_scan_costed(
        None, base_table, scope, base_arity, env, extra_conjuncts=base_only
    )
    scan.op_id = 0
    scan_info["op_id"] = 0

    join_steps = []
    join_infos: list[dict[str, Any]] = []
    for op_id, (join, right, right_offset) in enumerate(join_specs, start=1):
        step, est, jinfo = _plan_join_step(join, right, right_offset, scope, env, est)
        step.op_id = op_id
        jinfo["op_id"] = op_id
        join_steps.append(step)
        join_infos.append(jinfo)

    post_pred = combine_conjuncts(post_join, scope)
    est *= _OTHER_SELECTIVITY ** len(post_join)

    # -- grouping / aggregation ---------------------------------------------
    agg_exprs: list[Expr] = [item.expr for item in stmt.items if not item.star]
    if stmt.having is not None:
        agg_exprs.append(stmt.having)
    agg_exprs.extend(o.expr for o in stmt.order_by)
    grouped = bool(stmt.group_by) or any(contains_aggregate(e) for e in agg_exprs)

    if grouped:
        if any(item.star for item in stmt.items):
            raise PlanningError("SELECT * cannot be combined with GROUP BY / aggregates")
        # Everything is matched in resolved-AST space so that syntactically
        # different spellings of the same column (``g`` vs ``t.g``) unify.
        resolved_keys = [_resolve_columns(g, scope) for g in stmt.group_by]
        resolved_for_aggs = []
        for e in agg_exprs:
            try:
                resolved_for_aggs.append(_resolve_columns(e, scope))
            except PlanningError:
                # e.g. an ORDER BY select-list alias; handled by _compile_order
                continue
        agg_calls = _collect_aggregates(resolved_for_aggs)
        key_fns = [compile_expr(g, scope) for g in resolved_keys]
        agg_specs = [_AggSpec(call, scope) for call in agg_calls]
        mapping: dict[Expr, int] = {}
        for i, g in enumerate(resolved_keys):
            mapping.setdefault(g, i)
        for i, call in enumerate(agg_calls):
            mapping[call] = len(resolved_keys) + i

        def over_group(expr: Expr, what: str) -> Compiled:
            return compile_expr(_rewrite_grouped(expr, mapping, scope, what), _VALUE_SCOPE)

        def over_group_pred(expr: Expr, what: str):
            return compile_predicate(
                _rewrite_grouped(expr, mapping, scope, what), _VALUE_SCOPE
            )

        out_names = tuple(_output_name(item, i) for i, item in enumerate(stmt.items))
        out_fns = [over_group(item.expr, "select list") for item in stmt.items]
        having_pred = (
            over_group_pred(stmt.having, "HAVING") if stmt.having is not None else None
        )
        order_fns = _compile_order(stmt, out_names, lambda e: over_group(e, "ORDER BY"))
    else:
        if stmt.having is not None:
            raise PlanningError("HAVING requires GROUP BY or an aggregate")
        out_names_list: list[str] = []
        out_fns = []
        for i, item in enumerate(stmt.items):
            if item.star:
                if item.star_qualifier:
                    if item.star_qualifier.lower() not in scope.sources:
                        raise PlanningError(
                            f"unknown table or alias {item.star_qualifier!r}"
                        )
                    columns = scope.columns_of(item.star_qualifier)
                else:
                    columns = scope.all_columns()
                # ``SELECT *`` projects the *declared* schema: engine-managed
                # metadata columns (stream batch ids, window staging flags)
                # stay hidden unless referenced by explicit name.
                columns = [(n, s) for n, s in columns if not is_hidden_column(n)]
                for name, slot in columns:
                    out_names_list.append(name)
                    out_fns.append(compile_expr(SlotRef(slot), scope))
            else:
                out_names_list.append(_output_name(item, i))
                out_fns.append(compile_expr(item.expr, scope))
        out_names = tuple(out_names_list)
        having_pred = None
        key_fns = []
        agg_specs = []
        order_fns = _compile_order(stmt, out_names, lambda e: compile_expr(e, scope))

    limit_fn = _compile_limit(stmt.limit, "LIMIT")
    offset_fn = _compile_limit(stmt.offset, "OFFSET")
    distinct = stmt.distinct
    descending = tuple(o.descending for o in stmt.order_by)

    plan_info: dict[str, Any] = {
        "kind": "select",
        "scan": scan_info,
        "joins": join_infos,
        "estimated_rows": int(round(est)),
        "grouped": grouped,
        "distinct": distinct,
        "order_by": bool(stmt.order_by),
        "post_join_filter": len(post_join),
    }

    def run(ctx: ExecutionContext) -> ResultSet:
        params = ctx.params
        rows: Iterator[tuple] = (row for _rowid, row in scan(ctx))
        for step in join_steps:
            rows = step.apply(rows, ctx)
        if post_pred is not None:
            rows = (r for r in rows if post_pred(r, params))

        if grouped:
            groups: dict[tuple, list] = {}
            for row in rows:
                key = tuple(fn(row, params) for fn in key_fns)
                accs = groups.get(key)
                if accs is None:
                    accs = [spec.fresh() for spec in agg_specs]
                    groups[key] = accs
                for spec, acc in zip(agg_specs, accs):
                    acc.add(True if spec.star else spec.arg_fn(row, params))
            if not groups and not key_fns:
                # global aggregate over an empty input still yields one row
                groups[()] = [spec.fresh() for spec in agg_specs]
            source_rows: Iterator[tuple] = (
                key + tuple(acc.result() for acc in accs)
                for key, accs in groups.items()
            )
            if having_pred is not None:
                source_rows = (r for r in source_rows if having_pred(r, params))
        else:
            source_rows = rows

        seen: Optional[set] = set() if distinct else None
        if order_fns:
            pairs: list[tuple[tuple, tuple]] = []
            for row in source_rows:
                out = tuple(fn(row, params) for fn in out_fns)
                if seen is not None:
                    if out in seen:
                        continue
                    seen.add(out)
                key = tuple(
                    null_safe_key(out[slot] if is_output else fn(row, params))
                    for is_output, slot, fn in order_fns
                )
                pairs.append((key, out))
            out_rows = sort_rows(pairs, descending)
        else:
            # No ORDER BY: emit directly (no per-row sort-key allocation)
            # and stop consuming the pipeline once LIMIT+OFFSET rows are
            # collected — a bounded query must not pay for the whole table.
            bound = None
            if limit_fn is not None:
                bound = limit_fn(params) + (offset_fn(params) if offset_fn is not None else 0)
            out_rows = []
            for row in source_rows:
                out = tuple(fn(row, params) for fn in out_fns)
                if seen is not None:
                    if out in seen:
                        continue
                    seen.add(out)
                out_rows.append(out)
                if bound is not None and len(out_rows) >= bound:
                    close = getattr(source_rows, "close", None)
                    if close is not None:
                        close()  # flush scan counters deterministically
                    break

        if offset_fn is not None:
            out_rows = out_rows[offset_fn(params):]
        if limit_fn is not None:
            out_rows = out_rows[: limit_fn(params)]
        return ResultSet(out_names, out_rows)

    return PreparedStatement(
        sql, "select", param_count, run, columns=out_names, plan_info=plan_info
    )


def _compile_order(
    stmt: Select,
    out_names: tuple[str, ...],
    compile_fn: Callable[[Expr], Compiled],
) -> list[tuple[bool, int, Optional[Compiled]]]:
    """Compile ORDER BY items.

    Each entry is ``(is_output, slot, fn)``: output-relative keys (select
    aliases and 1-based ordinals) read slot ``slot`` of the projected row;
    expression keys evaluate ``fn`` against the pre-projection row.
    """
    order: list[tuple[bool, int, Optional[Compiled]]] = []
    for item in stmt.order_by:
        expr = item.expr
        if isinstance(expr, Literal) and isinstance(expr.value, int) and not isinstance(expr.value, bool):
            ordinal = expr.value
            if not 1 <= ordinal <= len(out_names):
                raise PlanningError(
                    f"ORDER BY position {ordinal} is out of range (1..{len(out_names)})"
                )
            order.append((True, ordinal - 1, None))
            continue
        if isinstance(expr, ColumnRef) and expr.qualifier is None and expr.name.lower() in out_names:
            name = expr.name.lower()
            if out_names.count(name) > 1:
                raise PlanningError(
                    f"ORDER BY {name!r} is ambiguous: several output columns "
                    f"share that name; qualify it or use an ordinal"
                )
            order.append((True, out_names.index(name), None))
            continue
        order.append((False, -1, compile_fn(expr)))
    return order


# ---------------------------------------------------------------------------
# INSERT planning
# ---------------------------------------------------------------------------


def _plan_insert(stmt: Insert, catalog: Catalog, sql: str, env: _PlanEnv) -> PreparedStatement:
    table = catalog.table(stmt.table.name)
    schema = table.schema
    param_count = max_param_index(stmt)

    if stmt.columns:
        target_cols = tuple(c.lower() for c in stmt.columns)
        for c in target_cols:
            schema.position(c)  # raises on unknown columns
        if len(set(target_cols)) != len(target_cols):
            raise PlanningError(f"duplicate column in INSERT column list: {target_cols}")
    else:
        target_cols = schema.column_names()

    table_name = table.name
    plan_info = {"kind": "insert", "table": table_name}
    # Plan-time column permutation: target column i of the INSERT lands in
    # row slot ``slots[i]``; unmentioned columns take their default.  The
    # hot path then builds each full-width row with list indexing only —
    # no per-row dict construction (``Table.insert`` still coerces types
    # and enforces NOT NULL/unique constraints).
    slots = tuple(schema.position(c) for c in target_cols)
    defaults = tuple(col.default for col in schema.columns)

    if stmt.select is not None:
        inner = _plan_select(stmt.select, catalog, sql, env)
        if len(inner.columns) != len(target_cols):
            raise PlanningError(
                f"INSERT ... SELECT arity mismatch: {len(target_cols)} target "
                f"column(s), SELECT produces {len(inner.columns)}"
            )

        def run_insert_select(ctx: ExecutionContext) -> ResultSet:
            result = inner.execute(ctx)  # materialised — safe for self-insert
            t = ctx.write_table(table_name)
            full_rows = []
            for row in result.rows:
                full = list(defaults)
                for slot, value in zip(slots, row):
                    full[slot] = value
                full_rows.append(full)
            n = len(ctx.insert_many(t, full_rows))
            return ResultSet((), [], rowcount=n)

        plan_info["select"] = inner.plan_info
        return PreparedStatement(
            sql, "insert", param_count, run_insert_select, plan_info=plan_info
        )

    row_fns: list[list[Compiled]] = []
    for row in stmt.rows:
        if len(row) != len(target_cols):
            raise PlanningError(
                f"INSERT row has {len(row)} value(s), expected {len(target_cols)}"
            )
        row_fns.append([compile_expr(e, _VALUE_SCOPE) for e in row])

    def run_insert(ctx: ExecutionContext) -> ResultSet:
        t = ctx.write_table(table_name)
        params = ctx.params
        if len(row_fns) == 1:  # the single-row OLTP hot path: no batch setup
            full = list(defaults)
            for slot, fn in zip(slots, row_fns[0]):
                full[slot] = fn((), params)
            ctx.insert(t, full)
            return ResultSet((), [], rowcount=1)
        full_rows = []
        for fns in row_fns:
            full = list(defaults)
            for slot, fn in zip(slots, fns):
                full[slot] = fn((), params)
            full_rows.append(full)
        n = len(ctx.insert_many(t, full_rows))
        return ResultSet((), [], rowcount=n)

    # Plan-time fact for the batch binder: a single VALUES row whose target
    # list covers every column in schema order binds straight to a full row
    # (no defaults template, no slot permutation) — the common bulk-load shape.
    # An in-order *prefix* of the columns does not qualify: the unmentioned
    # trailing columns still need their defaults.
    full_width_in_order = (
        len(row_fns) == 1
        and len(slots) == len(defaults)
        and slots == tuple(range(len(slots)))
    )

    def run_insert_many(ctx: ExecutionContext, param_rows: Iterable[Sequence]) -> int:
        """Vectorized batch binder for ``executemany``: bind every parameter
        row, then apply the whole batch as **one** bulk insert (one undo-log
        range record, per-row work in tight loops)."""
        t = ctx.write_table(table_name)
        empty: tuple = ()
        full_rows = []
        if full_width_in_order:
            fns = row_fns[0]
            for params in param_rows:
                if len(params) < param_count:
                    raise PlanningError(
                        f"statement requires {param_count} parameter(s), "
                        f"got {len(params)}: {sql!r}"
                    )
                full_rows.append([fn(empty, params) for fn in fns])
        else:
            for params in param_rows:
                if len(params) < param_count:
                    raise PlanningError(
                        f"statement requires {param_count} parameter(s), "
                        f"got {len(params)}: {sql!r}"
                    )
                for fns in row_fns:
                    full = list(defaults)
                    for slot, fn in zip(slots, fns):
                        full[slot] = fn(empty, params)
                    full_rows.append(full)
        return len(ctx.insert_many(t, full_rows))

    return PreparedStatement(sql, "insert", param_count, run_insert,
                             run_many=run_insert_many, plan_info=plan_info)


# ---------------------------------------------------------------------------
# UPDATE / DELETE planning — index-aware, materialise-then-mutate
# ---------------------------------------------------------------------------


def _plan_update(stmt: Update, catalog: Catalog, sql: str, env: _PlanEnv) -> PreparedStatement:
    table = catalog.table(stmt.table.name)
    schema = table.schema
    param_count = max_param_index(stmt)

    scope = Scope()
    scope.add_source(stmt.table.binding, schema)
    scan, est, scan_info = _build_scan_costed(
        stmt.where, table, scope, schema.arity(), env
    )
    scan.op_id = 0
    scan_info["op_id"] = 0

    assignments: list[tuple[int, Compiled]] = []
    seen_cols: set[int] = set()
    for a in stmt.assignments:
        pos = schema.position(a.column)
        if pos in seen_cols:
            raise PlanningError(f"column {a.column!r} assigned twice in UPDATE")
        seen_cols.add(pos)
        assignments.append((pos, compile_expr(a.value, scope)))

    table_name = table.name
    plan_info = {
        "kind": "update",
        "table": table_name,
        "scan": scan_info,
        "estimated_rows": int(round(est)),
    }

    def run(ctx: ExecutionContext) -> ResultSet:
        t = ctx.write_table(table_name)
        params = ctx.params
        # Materialise matches before the first mutation: Table.scan() hands
        # out a live iterator over its row dict (see table.py).
        targets = list(scan(ctx))
        n = 0
        for rowid, row in targets:
            new = list(row)
            for pos, fn in assignments:
                new[pos] = fn(row, params)
            ctx.update(t, rowid, new)
            n += 1
        return ResultSet((), [], rowcount=n)

    return PreparedStatement(sql, "update", param_count, run, plan_info=plan_info)


def _plan_delete(stmt: Delete, catalog: Catalog, sql: str, env: _PlanEnv) -> PreparedStatement:
    table = catalog.table(stmt.table.name)
    schema = table.schema
    param_count = max_param_index(stmt)

    scope = Scope()
    scope.add_source(stmt.table.binding, schema)
    scan, est, scan_info = _build_scan_costed(
        stmt.where, table, scope, schema.arity(), env
    )
    scan.op_id = 0
    scan_info["op_id"] = 0
    table_name = table.name
    plan_info = {
        "kind": "delete",
        "table": table_name,
        "scan": scan_info,
        "estimated_rows": int(round(est)),
    }

    def run(ctx: ExecutionContext) -> ResultSet:
        t = ctx.write_table(table_name)
        # Same materialise-then-mutate contract as UPDATE.
        targets = list(scan(ctx))
        n = 0
        for rowid, _row in targets:
            ctx.delete(t, rowid)
            n += 1
        return ResultSet((), [], rowcount=n)

    return PreparedStatement(sql, "delete", param_count, run, plan_info=plan_info)
