"""Expression trees → generated Python code (the compiled executor).

:mod:`repro.sql.expressions` compiles an expression into a *closure tree*:
one Python frame per AST node per row.  That is fine for planning-time
values but is the dominant per-row cost of hot filters.  This module
instead **generates Python source** for the whole expression — straight-
line statements over ``row``/``params`` with explicit temporaries — and
``compile()``s it once at plan time, so evaluating a predicate is a single
stack frame with inlined column loads, comparisons, and arithmetic.

Semantics are identical to the interpreter (the property tests in
``tests/test_compile.py`` hold the two implementations together):

* NULL (``None``) propagates through arithmetic and comparisons;
* ``AND``/``OR`` follow Kleene three-valued logic **with short-circuit
  evaluation** (the right side is not evaluated when the left decides);
* CASE evaluates WHEN conditions lazily, in order;
* division/modulo keep SQL integer semantics (truncation toward zero,
  errors on zero) by delegating to the interpreter's ``_arith``;
* stray ``TypeError``s surface as :class:`ExpressionError`.

A **constant-folding** pass runs first: any pure all-literal subtree is
evaluated at plan time (errors like ``1/0`` are deferred, not raised), and
the three-valued identities ``FALSE AND x → FALSE`` / ``TRUE OR x → TRUE``
prune short-circuit branches entirely.  (``TRUE AND x`` is *not* folded to
``x`` — AND coerces its result to a boolean, ``x`` may be numeric.)

Entry points mirror the interpreter: :func:`compile_expr` yields a
``(row, params) -> value`` callable; :func:`compile_predicate` yields a
WHERE-style ``(row, params) -> bool`` (NULL → not satisfied) with the
coercion generated inline instead of paying a wrapper frame per row.
Unsupported nodes (there are none today; the hook guards future AST
growth) fall back to the interpreter.
"""

from __future__ import annotations

import math
import re
from typing import Any, Callable, Sequence

from ..common.errors import ExpressionError, NoSuchColumnError, PlanningError
from .ast import (
    AGGREGATE_FUNCTIONS,
    Between,
    Binary,
    Case,
    ColumnRef,
    Expr,
    FuncCall,
    InList,
    IsNull,
    Like,
    Literal,
    Param,
    Unary,
)
from .expressions import (
    SCALAR_FUNCTIONS,
    Compiled,
    Scope,
    SlotRef,
    _arith,
    _truthy,
    like_match,
)
from .expressions import compile_expr as interpret_expr
from .expressions import predicate as interpret_predicate

__all__ = ["compile_expr", "compile_predicate", "fold_constants"]


class _Unsupported(Exception):
    """Internal: node the code generator cannot handle (fall back)."""


# ---------------------------------------------------------------------------
# Constant folding
# ---------------------------------------------------------------------------

_EMPTY_SCOPE = Scope()


def _is_const(expr: Expr) -> bool:
    """True when ``expr`` is a pure function of literals only."""
    if isinstance(expr, Literal):
        return True
    if isinstance(expr, (Param, ColumnRef, SlotRef)):
        return False
    if isinstance(expr, Unary):
        return _is_const(expr.operand)
    if isinstance(expr, Binary):
        return _is_const(expr.left) and _is_const(expr.right)
    if isinstance(expr, FuncCall):
        if expr.star or expr.name in AGGREGATE_FUNCTIONS:
            return False
        if expr.name not in SCALAR_FUNCTIONS:
            return False  # unknown function: let compilation raise PlanningError
        return all(_is_const(a) for a in expr.args)
    if isinstance(expr, InList):
        return _is_const(expr.expr) and all(_is_const(i) for i in expr.items)
    if isinstance(expr, Between):
        return _is_const(expr.expr) and _is_const(expr.low) and _is_const(expr.high)
    if isinstance(expr, IsNull):
        return _is_const(expr.expr)
    if isinstance(expr, Like):
        return _is_const(expr.expr) and _is_const(expr.pattern)
    if isinstance(expr, Case):
        return all(
            _is_const(c) and _is_const(v) for c, v in expr.whens
        ) and (expr.else_ is None or _is_const(expr.else_))
    return False


def _literal_bool(expr: Expr) -> Any:
    """True/False when ``expr`` is a non-NULL literal with a definite truth
    value, else None (NULL literal, non-literal, or non-boolean type)."""
    if isinstance(expr, Literal) and expr.value is not None:
        try:
            return _truthy(expr.value)
        except ExpressionError:
            return None
    return None


def fold_constants(expr: Expr) -> Expr:
    """Bottom-up constant folding with runtime errors deferred.

    A pure all-literal subtree becomes the literal of its value;
    a subtree whose evaluation *raises* (``1/0``) is left intact so the
    error still surfaces at execution, exactly as interpreted.
    """
    if isinstance(expr, Unary):
        expr = Unary(expr.op, fold_constants(expr.operand))
    elif isinstance(expr, Binary):
        left = fold_constants(expr.left)
        right = fold_constants(expr.right)
        expr = Binary(expr.op, left, right)
        # three-valued short-circuit identities (left side only: AND/OR
        # evaluate left first, so dropping the right never skips an error)
        if expr.op == "and" and _literal_bool(left) is False:
            return Literal(False)
        if expr.op == "or" and _literal_bool(left) is True:
            return Literal(True)
    elif isinstance(expr, FuncCall):
        expr = FuncCall(
            expr.name,
            tuple(fold_constants(a) for a in expr.args),
            distinct=expr.distinct,
            star=expr.star,
        )
    elif isinstance(expr, InList):
        expr = InList(
            fold_constants(expr.expr),
            tuple(fold_constants(i) for i in expr.items),
            negated=expr.negated,
        )
    elif isinstance(expr, Between):
        expr = Between(
            fold_constants(expr.expr),
            fold_constants(expr.low),
            fold_constants(expr.high),
            negated=expr.negated,
        )
    elif isinstance(expr, IsNull):
        expr = IsNull(fold_constants(expr.expr), negated=expr.negated)
    elif isinstance(expr, Like):
        expr = Like(
            fold_constants(expr.expr),
            fold_constants(expr.pattern),
            negated=expr.negated,
        )
    elif isinstance(expr, Case):
        expr = Case(
            tuple((fold_constants(c), fold_constants(v)) for c, v in expr.whens),
            fold_constants(expr.else_) if expr.else_ is not None else None,
        )

    if not isinstance(expr, Literal) and _is_const(expr):
        try:
            value = interpret_expr(expr, _EMPTY_SCOPE)((), ())
        except ExpressionError:
            return expr  # deferred runtime error (division by zero, ...)
        return Literal(value)
    return expr


# ---------------------------------------------------------------------------
# Code generation
# ---------------------------------------------------------------------------

def _div(a: Any, b: Any) -> Any:
    return _arith("/", a, b)


def _mod(a: Any, b: Any) -> Any:
    return _arith("%", a, b)


_CMP_OPS = {"=": "==", "<>": "!=", "<": "<", "<=": "<=", ">": ">", ">=": ">="}
_ARITH_INLINE = {"+", "-", "*"}


class _Codegen:
    """Accumulates generated statements plus the environment they close over.

    ``_gen`` returns ``(atom, is_bool)``: ``atom`` is a Python expression
    string that is either a literal, a ``row[i]``/``params[i]`` subscript,
    or a temporary name — always side-effect free and cheap to mention more
    than once.  ``is_bool`` marks values statically known to be
    ``True``/``False``/``None``, which lets logical connectives test
    ``is False`` / ``is True`` instead of calling the truthiness helper.
    """

    def __init__(self, scope: Scope):
        self.scope = scope
        self.lines: list[str] = []
        self.env: dict[str, Any] = {
            "_t": _truthy,
            "_EE": ExpressionError,
            "_like": like_match,
            "_div": _div,
            "_mod": _mod,
        }
        self._n = 0

    def tmp(self) -> str:
        self._n += 1
        return f"t{self._n}"

    def bind(self, value: Any, prefix: str = "c") -> str:
        name = f"{prefix}{len(self.env)}"
        self.env[name] = value
        return name

    def emit(self, depth: int, line: str) -> None:
        self.lines.append("    " * depth + line)

    def const(self, value: Any) -> str:
        # Only the keyword singletons are inlined: a repr'd int/str literal
        # inside a generated ``x is None`` / ``x is False`` test would trip
        # CPython's "is with a literal" SyntaxWarning at compile() time.
        if value is None or isinstance(value, bool):
            return repr(value)
        return self.bind(value)

    # -- truthiness fragments -------------------------------------------------

    @staticmethod
    def _is_false(atom: str, is_bool: bool) -> str:
        return f"{atom} is False" if is_bool else f"{atom} is not None and not _t({atom})"

    @staticmethod
    def _is_true(atom: str, is_bool: bool) -> str:
        return f"{atom} is True" if is_bool else f"{atom} is not None and _t({atom})"

    # -- the generator ---------------------------------------------------------

    def gen(self, expr: Expr, depth: int) -> tuple[str, bool]:
        if isinstance(expr, Literal):
            return self.const(expr.value), isinstance(expr.value, bool)

        if isinstance(expr, SlotRef):
            return f"row[{expr.slot}]", False

        if isinstance(expr, ColumnRef):
            try:
                slot = self.scope.resolve(expr.name, expr.qualifier)
            except NoSuchColumnError as exc:
                raise PlanningError(str(exc)) from None
            return f"row[{slot}]", False

        if isinstance(expr, Param):
            return f"params[{expr.index}]", False

        if isinstance(expr, Unary):
            return self._gen_unary(expr, depth)

        if isinstance(expr, Binary):
            return self._gen_binary(expr, depth)

        if isinstance(expr, FuncCall):
            return self._gen_func(expr, depth)

        if isinstance(expr, InList):
            return self._gen_in(expr, depth)

        if isinstance(expr, Between):
            return self._gen_between(expr, depth)

        if isinstance(expr, IsNull):
            a, _ = self.gen(expr.expr, depth)
            t = self.tmp()
            self.emit(depth, f"{t} = ({a} is not None) == {expr.negated!r}")
            return t, True

        if isinstance(expr, Like):
            return self._gen_like(expr, depth)

        if isinstance(expr, Case):
            t = self.tmp()
            self._gen_case(list(expr.whens), expr.else_, depth, t)
            return t, False

        raise _Unsupported(type(expr).__name__)

    def _gen_unary(self, expr: Unary, depth: int) -> tuple[str, bool]:
        a, a_bool = self.gen(expr.operand, depth)
        if expr.op == "+":
            return a, a_bool
        t = self.tmp()
        if expr.op == "-":
            self.emit(depth, f"{t} = None if {a} is None else -{a}")
            return t, False
        if expr.op == "not":
            body = f"not {a}" if a_bool else f"not _t({a})"
            self.emit(depth, f"{t} = None if {a} is None else ({body})")
            return t, True
        raise PlanningError(f"unknown unary operator {expr.op!r}")  # pragma: no cover

    def _gen_binary(self, expr: Binary, depth: int) -> tuple[str, bool]:
        op = expr.op
        if op in ("and", "or"):
            return self._gen_logical(expr, depth)
        a, _ = self.gen(expr.left, depth)
        b, _ = self.gen(expr.right, depth)
        t = self.tmp()
        if op in _CMP_OPS:
            py = _CMP_OPS[op]
            self.emit(
                depth,
                f"{t} = None if {a} is None or {b} is None else ({a} {py} {b})",
            )
            return t, True
        if op in _ARITH_INLINE:
            self.emit(
                depth,
                f"{t} = None if {a} is None or {b} is None else ({a} {op} {b})",
            )
            return t, False
        if op == "/":
            self.emit(depth, f"{t} = _div({a}, {b})")
            return t, False
        if op == "%":
            self.emit(depth, f"{t} = _mod({a}, {b})")
            return t, False
        raise PlanningError(f"unknown binary operator {op!r}")  # pragma: no cover

    def _gen_logical(self, expr: Binary, depth: int) -> tuple[str, bool]:
        # Kleene AND/OR with short-circuit: the right operand's code is
        # generated *inside* the else-branch, so it does not run (and
        # cannot raise) when the left side decides the answer.
        t = self.tmp()
        a, a_bool = self.gen(expr.left, depth)
        if expr.op == "and":
            self.emit(depth, f"if {self._is_false(a, a_bool)}:")
            self.emit(depth + 1, f"{t} = False")
            self.emit(depth, "else:")
            b, b_bool = self.gen(expr.right, depth + 1)
            self.emit(depth + 1, f"if {self._is_false(b, b_bool)}:")
            self.emit(depth + 2, f"{t} = False")
            self.emit(depth + 1, f"elif {a} is None or {b} is None:")
            self.emit(depth + 2, f"{t} = None")
            self.emit(depth + 1, "else:")
            self.emit(depth + 2, f"{t} = True")
        else:
            self.emit(depth, f"if {self._is_true(a, a_bool)}:")
            self.emit(depth + 1, f"{t} = True")
            self.emit(depth, "else:")
            b, b_bool = self.gen(expr.right, depth + 1)
            self.emit(depth + 1, f"if {self._is_true(b, b_bool)}:")
            self.emit(depth + 2, f"{t} = True")
            self.emit(depth + 1, f"elif {a} is None or {b} is None:")
            self.emit(depth + 2, f"{t} = None")
            self.emit(depth + 1, "else:")
            self.emit(depth + 2, f"{t} = False")
        return t, True

    def _gen_func(self, expr: FuncCall, depth: int) -> tuple[str, bool]:
        if expr.name in AGGREGATE_FUNCTIONS:
            raise PlanningError(
                f"aggregate {expr.name.upper()}() not allowed in this context"
            )
        fn = SCALAR_FUNCTIONS.get(expr.name)
        if fn is None:
            raise PlanningError(f"unknown function {expr.name!r}")
        args = [self.gen(a, depth)[0] for a in expr.args]
        t = self.tmp()
        if expr.name == "coalesce" and args:
            chain = args[-1]
            for a in reversed(args[:-1]):
                chain = f"({a} if {a} is not None else {chain})"
            self.emit(depth, f"{t} = {chain}")
            return t, False
        name = self.bind(fn, prefix="f")
        self.emit(depth, f"{t} = {name}({', '.join(args)})")
        return t, False

    def _gen_in(self, expr: InList, depth: int) -> tuple[str, bool]:
        tgt, _ = self.gen(expr.expr, depth)
        t = self.tmp()
        negated = expr.negated
        if all(isinstance(i, Literal) for i in expr.items):
            values = [i.value for i in expr.items]
            members = frozenset(v for v in values if v is not None)
            has_null = any(v is None for v in values)
            s = self.bind(members, prefix="s")
            self.emit(depth, f"if {tgt} is None:")
            self.emit(depth + 1, f"{t} = None")
            self.emit(depth, f"elif {tgt} in {s}:")
            self.emit(depth + 1, f"{t} = {(not negated)!r}")
            self.emit(depth, "else:")
            self.emit(depth + 1, f"{t} = {'None' if has_null else repr(negated)}")
            return t, True
        saw = self.tmp()
        loop_var = self.tmp()
        self.emit(depth, f"if {tgt} is None:")
        self.emit(depth + 1, f"{t} = None")
        self.emit(depth, "else:")
        # items are evaluated lazily, inside the else-branch, matching the
        # interpreter (a NULL target never evaluates the list)
        items = [self.gen(i, depth + 1)[0] for i in expr.items]
        self.emit(depth + 1, f"{saw} = False")
        self.emit(depth + 1, f"{t} = {negated!r}")
        self.emit(depth + 1, f"for {loop_var} in ({', '.join(items)},):")
        self.emit(depth + 2, f"if {loop_var} is None:")
        self.emit(depth + 3, f"{saw} = True")
        self.emit(depth + 2, f"elif {loop_var} == {tgt}:")
        self.emit(depth + 3, f"{t} = {(not negated)!r}")
        self.emit(depth + 3, "break")
        self.emit(depth + 1, "else:")
        self.emit(depth + 2, f"if {saw}:")
        self.emit(depth + 3, f"{t} = None")
        return t, True

    def _gen_between(self, expr: Between, depth: int) -> tuple[str, bool]:
        v, _ = self.gen(expr.expr, depth)
        lo, _ = self.gen(expr.low, depth)
        hi, _ = self.gen(expr.high, depth)
        ta, tb, t = self.tmp(), self.tmp(), self.tmp()
        self.emit(depth, f"{ta} = None if {v} is None or {lo} is None else ({v} >= {lo})")
        self.emit(depth, f"{tb} = None if {v} is None or {hi} is None else ({v} <= {hi})")
        self.emit(depth, f"if {ta} is None or {tb} is None:")
        self.emit(
            depth + 1,
            f"{t} = {expr.negated!r} if ({ta} is False or {tb} is False) else None",
        )
        self.emit(depth, "else:")
        if expr.negated:
            self.emit(depth + 1, f"{t} = not ({ta} and {tb})")
        else:
            self.emit(depth + 1, f"{t} = {ta} and {tb}")
        return t, True

    def _gen_like(self, expr: Like, depth: int) -> tuple[str, bool]:
        a, _ = self.gen(expr.expr, depth)
        t = self.tmp()
        if isinstance(expr.pattern, Literal):
            pattern = expr.pattern.value
            if pattern is None:
                self.emit(depth, f"{t} = None")
                return t, True
            # literal pattern: build the regex once at plan time
            regex = "".join(
                ".*" if ch == "%" else "." if ch == "_" else re.escape(ch)
                for ch in str(pattern)
            )
            m = self.bind(re.compile(f"^{regex}$", re.DOTALL).match, prefix="m")
            self.emit(
                depth, f"{t} = None if {a} is None else ({m}(str({a})) is not None)"
            )
        else:
            p, _ = self.gen(expr.pattern, depth)
            self.emit(depth, f"{t} = _like({a}, {p})")
        if expr.negated:
            self.emit(depth, f"if {t} is not None:")
            self.emit(depth + 1, f"{t} = not {t}")
        return t, True

    def _gen_case(self, whens: list, else_: Expr | None, depth: int, t: str) -> None:
        if not whens:
            if else_ is None:
                self.emit(depth, f"{t} = None")
            else:
                v, _ = self.gen(else_, depth)
                self.emit(depth, f"{t} = {v}")
            return
        cond, val = whens[0]
        c, c_bool = self.gen(cond, depth)
        self.emit(depth, f"if {self._is_true(c, c_bool)}:")
        v, _ = self.gen(val, depth + 1)
        self.emit(depth + 1, f"{t} = {v}")
        self.emit(depth, "else:")
        self._gen_case(whens[1:], else_, depth + 1, t)


def _generate(expr: Expr, scope: Scope, as_predicate: bool) -> Callable:
    g = _Codegen(scope)
    atom, is_bool = g.gen(expr, 2)
    if as_predicate:
        if is_bool:
            g.emit(2, f"return {atom} is True")
        else:
            g.emit(2, f"return False if {atom} is None else _t({atom})")
    else:
        g.emit(2, f"return {atom}")
    body = "\n".join(g.lines)
    src = (
        "def _compiled(row, params):\n"
        "    try:\n"
        f"{body}\n"
        "    except _EE:\n"
        "        raise\n"
        "    except TypeError as exc:\n"
        "        raise _EE(f\"type error in expression: {exc}\") from None\n"
        "    except IndexError as exc:\n"
        "        raise _EE(f\"parameter binding error: {exc}\") from None\n"
    )
    namespace = g.env
    exec(compile(src, "<sql-expr>", "exec"), namespace)  # noqa: S102 - plan-time codegen
    fn = namespace["_compiled"]
    fn._source = src  # debugging / test introspection
    return fn


def compile_expr(expr: Expr, scope: Scope) -> Compiled:
    """Codegen counterpart of :func:`repro.sql.expressions.compile_expr`:
    same ``(row, params) -> value`` contract, single-frame execution."""
    expr = fold_constants(expr)
    try:
        return _generate(expr, scope, as_predicate=False)
    except _Unsupported:  # pragma: no cover - all current nodes supported
        return interpret_expr(expr, scope)


def compile_predicate(
    expr: Expr, scope: Scope
) -> Callable[[Sequence[Any], Sequence[Any]], bool]:
    """Compile a WHERE-style predicate (NULL → not satisfied) with the
    boolean coercion generated inline — no wrapper frame per row."""
    expr = fold_constants(expr)
    try:
        return _generate(expr, scope, as_predicate=True)
    except _Unsupported:  # pragma: no cover - all current nodes supported
        return interpret_predicate(interpret_expr(expr, scope))
