"""Hash, sort-merge, and block-nested-loop join operators.

Each step follows the planner's join-step protocol — configured once at
plan time, then ``apply(rows, ctx)`` maps the outer row iterator to the
joined iterator — and joins the outer prefix (everything planned so far)
against one named inner table.  The combined row is always
``outer + inner`` regardless of which side builds, so downstream
projection slots are stable across algorithms; only the *row order* may
differ between algorithms (SQL makes no ordering promise without
ORDER BY, and the differential tests compare sorted row sets).

* :class:`HashJoinStep` — equi-join; builds a hash table on the side the
  planner estimated smaller (``build_inner``) and probes with the other.
  NULL join keys never match (SQL equality), and LEFT OUTER rows are
  null-padded after probing.  Emits ``join.build`` / ``join.probe``
  observability spans when tracing is on.
* :class:`MergeJoinStep` — equi-join; materialises and sorts both sides
  by the key, then merges duplicate blocks.  Key types must be mutually
  comparable (:class:`ExpressionError` otherwise).
* :class:`BlockNestedLoopStep` — the fallback for arbitrary (non-equi)
  ON predicates: materialises the inner table **once** and loops, unlike
  the legacy per-outer-row rescan.

``rows_scanned`` counts each inner-table row visit exactly once per
statement for all three (the build/materialise pass), which is the point:
the legacy nested loop charged ``outer × inner``.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

from ..common.errors import ExpressionError
from .executor import ExecutionContext
from .expressions import Compiled

__all__ = ["HashJoinStep", "MergeJoinStep", "BlockNestedLoopStep"]


class HashJoinStep:
    """Hash equi-join against ``table_name`` on compiled outer-key
    expressions vs inner-row key slots."""

    __slots__ = (
        "table_name",
        "arity",
        "outer_key_fns",
        "inner_key_slots",
        "residual",
        "kind",
        "build_inner",
        "op_id",
        "_null_pad",
    )

    def __init__(
        self,
        table_name: str,
        arity: int,
        outer_key_fns: Sequence[Compiled],
        inner_key_slots: Sequence[int],
        residual,
        kind: str,
        *,
        build_inner: bool = True,
    ):
        self.table_name = table_name
        self.arity = arity
        self.outer_key_fns = tuple(outer_key_fns)
        self.inner_key_slots = tuple(inner_key_slots)
        self.residual = residual
        self.kind = kind
        self.build_inner = build_inner
        self.op_id = -1
        self._null_pad = (None,) * arity

    def apply(self, rows: Iterator[tuple], ctx: ExecutionContext) -> Iterator[tuple]:
        if self.build_inner:
            yield from self._apply_build_inner(rows, ctx)
        else:
            yield from self._apply_build_outer(rows, ctx)

    def _apply_build_inner(self, rows, ctx) -> Iterator[tuple]:
        table = ctx.read_table(self.table_name)
        obs = ctx.obs
        params = ctx.params
        residual = self.residual
        left_outer = self.kind == "left"
        slots = self.inner_key_slots
        key_fns = self.outer_key_fns

        span = obs.span("join.build", table=self.table_name, side="inner") if obs.enabled else None
        build: dict[tuple, list[tuple]] = {}
        scanned = 0
        for _rowid, right in table.scan_visible():
            scanned += 1
            key = tuple(right[s] for s in slots)
            if None in key:
                continue  # NULL never joins
            bucket = build.get(key)
            if bucket is None:
                build[key] = [right]
            else:
                bucket.append(right)
        ctx.count("rows_scanned", scanned)
        if span is not None:
            span.finish()

        span = obs.span("join.probe", table=self.table_name, side="inner") if obs.enabled else None
        emitted = 0
        try:
            for left in rows:
                matched = False
                key = tuple(fn(left, params) for fn in key_fns)
                bucket = build.get(key)  # a NULL in the key simply misses
                if bucket is not None:
                    for right in bucket:
                        combined = left + right
                        if residual is None or residual(combined, params):
                            matched = True
                            emitted += 1
                            yield combined
                if left_outer and not matched:
                    emitted += 1
                    yield left + self._null_pad
        finally:
            if span is not None:
                span.finish()
            if ctx.explain_counts is not None:
                ctx.explain_counts[self.op_id] = (
                    ctx.explain_counts.get(self.op_id, 0) + emitted
                )

    def _apply_build_outer(self, rows, ctx) -> Iterator[tuple]:
        table = ctx.read_table(self.table_name)
        obs = ctx.obs
        params = ctx.params
        residual = self.residual
        left_outer = self.kind == "left"
        slots = self.inner_key_slots

        span = obs.span("join.build", table=self.table_name, side="outer") if obs.enabled else None
        outer_rows = list(rows)
        build: dict[tuple, list[int]] = {}
        for idx, left in enumerate(outer_rows):
            key = tuple(fn(left, params) for fn in self.outer_key_fns)
            if None in key:
                continue
            bucket = build.get(key)
            if bucket is None:
                build[key] = [idx]
            else:
                bucket.append(idx)
        if span is not None:
            span.finish()

        span = obs.span("join.probe", table=self.table_name, side="outer") if obs.enabled else None
        emitted = 0
        matched: set[int] = set()
        scanned = 0
        try:
            for _rowid, right in table.scan_visible():
                scanned += 1
                key = tuple(right[s] for s in slots)
                bucket = build.get(key)
                if bucket is None:
                    continue
                for idx in bucket:
                    combined = outer_rows[idx] + right
                    if residual is None or residual(combined, params):
                        matched.add(idx)
                        emitted += 1
                        yield combined
            if left_outer:
                pad = self._null_pad
                for idx, left in enumerate(outer_rows):
                    if idx not in matched:
                        emitted += 1
                        yield left + pad
        finally:
            ctx.count("rows_scanned", scanned)
            if span is not None:
                span.finish()
            if ctx.explain_counts is not None:
                ctx.explain_counts[self.op_id] = (
                    ctx.explain_counts.get(self.op_id, 0) + emitted
                )


class MergeJoinStep:
    """Sort-merge equi-join: sort both sides on the key, merge duplicate
    blocks.  LEFT OUTER unmatched rows are emitted (null-padded) in their
    original outer order after the merge."""

    __slots__ = (
        "table_name",
        "arity",
        "outer_key_fns",
        "inner_key_slots",
        "residual",
        "kind",
        "op_id",
        "_null_pad",
    )

    def __init__(
        self,
        table_name: str,
        arity: int,
        outer_key_fns: Sequence[Compiled],
        inner_key_slots: Sequence[int],
        residual,
        kind: str,
    ):
        self.table_name = table_name
        self.arity = arity
        self.outer_key_fns = tuple(outer_key_fns)
        self.inner_key_slots = tuple(inner_key_slots)
        self.residual = residual
        self.kind = kind
        self.op_id = -1
        self._null_pad = (None,) * arity

    def apply(self, rows: Iterator[tuple], ctx: ExecutionContext) -> Iterator[tuple]:
        table = ctx.read_table(self.table_name)
        obs = ctx.obs
        params = ctx.params
        residual = self.residual
        left_outer = self.kind == "left"
        slots = self.inner_key_slots

        span = obs.span("join.sort", table=self.table_name) if obs.enabled else None
        outer_rows = list(rows)
        inner_rows = [row for _rowid, row in table.scan_visible()]
        ctx.count("rows_scanned", len(inner_rows))
        okeys: list[tuple[tuple, int]] = []
        for idx, left in enumerate(outer_rows):
            key = tuple(fn(left, params) for fn in self.outer_key_fns)
            if None not in key:  # NULL never joins
                okeys.append((key, idx))
        ikeys: list[tuple[tuple, int]] = []
        for idx, right in enumerate(inner_rows):
            key = tuple(right[s] for s in slots)
            if None not in key:
                ikeys.append((key, idx))
        try:
            okeys.sort(key=lambda p: p[0])
            ikeys.sort(key=lambda p: p[0])
        except TypeError:
            raise ExpressionError(
                "sort-merge join keys are not mutually comparable"
            ) from None
        if span is not None:
            span.finish()

        emitted = 0
        matched: Optional[set[int]] = set() if left_outer else None
        try:
            i = j = 0
            n, m = len(okeys), len(ikeys)
            while i < n and j < m:
                ko = okeys[i][0]
                ki = ikeys[j][0]
                try:
                    if ko < ki:
                        i += 1
                        continue
                    if ko > ki:
                        j += 1
                        continue
                except TypeError:
                    raise ExpressionError(
                        "sort-merge join keys are not mutually comparable"
                    ) from None
                i2 = i
                while i2 < n and okeys[i2][0] == ko:
                    i2 += 1
                j2 = j
                while j2 < m and ikeys[j2][0] == ko:
                    j2 += 1
                for a in range(i, i2):
                    left = outer_rows[okeys[a][1]]
                    for b in range(j, j2):
                        combined = left + inner_rows[ikeys[b][1]]
                        if residual is None or residual(combined, params):
                            if matched is not None:
                                matched.add(okeys[a][1])
                            emitted += 1
                            yield combined
                i, j = i2, j2
            if left_outer:
                pad = self._null_pad
                for idx, left in enumerate(outer_rows):
                    if idx not in matched:
                        emitted += 1
                        yield left + pad
        finally:
            if ctx.explain_counts is not None:
                ctx.explain_counts[self.op_id] = (
                    ctx.explain_counts.get(self.op_id, 0) + emitted
                )


class BlockNestedLoopStep:
    """Nested loop with the inner table materialised **once** — the
    fallback for non-equi ON predicates (and CROSS joins)."""

    __slots__ = ("table_name", "arity", "on_pred", "kind", "op_id", "_null_pad")

    def __init__(self, table_name: str, arity: int, on_pred, kind: str):
        self.table_name = table_name
        self.arity = arity
        self.on_pred = on_pred
        self.kind = kind
        self.op_id = -1
        self._null_pad = (None,) * arity

    def apply(self, rows: Iterator[tuple], ctx: ExecutionContext) -> Iterator[tuple]:
        table = ctx.read_table(self.table_name)
        params = ctx.params
        on_pred = self.on_pred
        left_outer = self.kind == "left"
        inner_rows = [row for _rowid, row in table.scan_visible()]
        ctx.count("rows_scanned", len(inner_rows))
        emitted = 0
        try:
            for left in rows:
                matched = False
                for right in inner_rows:
                    combined = left + right
                    if on_pred is None or on_pred(combined, params):
                        matched = True
                        emitted += 1
                        yield combined
                if left_outer and not matched:
                    emitted += 1
                    yield left + self._null_pad
        finally:
            if ctx.explain_counts is not None:
                ctx.explain_counts[self.op_id] = (
                    ctx.explain_counts.get(self.op_id, 0) + emitted
                )
