"""Abstract syntax trees for the supported SQL subset.

The subset covers everything the paper's stored procedures need:

* ``SELECT`` with joins (INNER/LEFT/comma), WHERE, GROUP BY/HAVING,
  ORDER BY, LIMIT/OFFSET, DISTINCT, aggregates;
* ``INSERT ... VALUES`` (multi-row) and ``INSERT ... SELECT``;
* ``UPDATE ... SET ... WHERE``;
* ``DELETE FROM ... WHERE``;
* positional ``?`` parameters everywhere an expression may appear.

All nodes are frozen dataclasses so prepared statements are immutable and
safely shareable between transaction executions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Union

# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expr:
    """Marker base class for expression nodes."""

    __slots__ = ()


@dataclass(frozen=True)
class Literal(Expr):
    value: Any


@dataclass(frozen=True)
class ColumnRef(Expr):
    """``name`` or ``qualifier.name`` (qualifier = table name or alias)."""

    name: str
    qualifier: Optional[str] = None

    def display(self) -> str:
        return f"{self.qualifier}.{self.name}" if self.qualifier else self.name


@dataclass(frozen=True)
class Param(Expr):
    """``?`` placeholder; ``index`` is the 0-based position in the bind list."""

    index: int


@dataclass(frozen=True)
class Unary(Expr):
    op: str  # '-', '+', 'not'
    operand: Expr


@dataclass(frozen=True)
class Binary(Expr):
    op: str  # '+','-','*','/','%','=','<>','<','<=','>','>=','and','or'
    left: Expr
    right: Expr


@dataclass(frozen=True)
class FuncCall(Expr):
    """Scalar or aggregate function call; ``star`` marks ``COUNT(*)``."""

    name: str
    args: tuple[Expr, ...]
    distinct: bool = False
    star: bool = False


@dataclass(frozen=True)
class InList(Expr):
    expr: Expr
    items: tuple[Expr, ...]
    negated: bool = False


@dataclass(frozen=True)
class Between(Expr):
    expr: Expr
    low: Expr
    high: Expr
    negated: bool = False


@dataclass(frozen=True)
class IsNull(Expr):
    expr: Expr
    negated: bool = False


@dataclass(frozen=True)
class Like(Expr):
    expr: Expr
    pattern: Expr
    negated: bool = False


@dataclass(frozen=True)
class Case(Expr):
    """``CASE WHEN cond THEN val ... [ELSE val] END`` (searched form)."""

    whens: tuple[tuple[Expr, Expr], ...]
    else_: Optional[Expr] = None


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TableRef:
    name: str
    alias: Optional[str] = None

    @property
    def binding(self) -> str:
        return self.alias or self.name


@dataclass(frozen=True)
class JoinClause:
    """One join step: ``JOIN table ON cond`` (``on`` is None for comma joins,
    where the condition lives in WHERE)."""

    table: TableRef
    on: Optional[Expr]
    kind: str = "inner"  # 'inner' | 'left' | 'cross'


@dataclass(frozen=True)
class SelectItem:
    expr: Expr
    alias: Optional[str] = None
    star: bool = False  # bare '*' or 'alias.*'
    star_qualifier: Optional[str] = None


@dataclass(frozen=True)
class OrderItem:
    expr: Expr
    descending: bool = False


@dataclass(frozen=True)
class Select:
    items: tuple[SelectItem, ...]
    table: Optional[TableRef]
    joins: tuple[JoinClause, ...] = ()
    where: Optional[Expr] = None
    group_by: tuple[Expr, ...] = ()
    having: Optional[Expr] = None
    order_by: tuple[OrderItem, ...] = ()
    limit: Optional[Expr] = None
    offset: Optional[Expr] = None
    distinct: bool = False


@dataclass(frozen=True)
class Insert:
    table: TableRef
    columns: tuple[str, ...]  # empty tuple = all columns in schema order
    rows: tuple[tuple[Expr, ...], ...] = ()  # VALUES form
    select: Optional[Select] = None  # INSERT ... SELECT form


@dataclass(frozen=True)
class Assignment:
    column: str
    value: Expr


@dataclass(frozen=True)
class Update:
    table: TableRef
    assignments: tuple[Assignment, ...]
    where: Optional[Expr] = None


@dataclass(frozen=True)
class Delete:
    table: TableRef
    where: Optional[Expr] = None


Statement = Union[Select, Insert, Update, Delete]

#: Names treated as aggregate functions by the planner.
AGGREGATE_FUNCTIONS = frozenset({"count", "sum", "avg", "min", "max"})


def walk(expr: Expr):
    """Depth-first pre-order traversal of an expression tree."""
    yield expr
    if isinstance(expr, Unary):
        yield from walk(expr.operand)
    elif isinstance(expr, Binary):
        yield from walk(expr.left)
        yield from walk(expr.right)
    elif isinstance(expr, FuncCall):
        for a in expr.args:
            yield from walk(a)
    elif isinstance(expr, InList):
        yield from walk(expr.expr)
        for item in expr.items:
            yield from walk(item)
    elif isinstance(expr, Between):
        yield from walk(expr.expr)
        yield from walk(expr.low)
        yield from walk(expr.high)
    elif isinstance(expr, IsNull):
        yield from walk(expr.expr)
    elif isinstance(expr, Like):
        yield from walk(expr.expr)
        yield from walk(expr.pattern)
    elif isinstance(expr, Case):
        for cond, val in expr.whens:
            yield from walk(cond)
            yield from walk(val)
        if expr.else_ is not None:
            yield from walk(expr.else_)


def contains_aggregate(expr: Expr) -> bool:
    """True when any node of ``expr`` is an aggregate function call."""
    return any(
        isinstance(node, FuncCall) and node.name in AGGREGATE_FUNCTIONS
        for node in walk(expr)
    )


def max_param_index(stmt: Statement) -> int:
    """Highest ``?`` index in the statement plus one (= required bind count)."""
    best = 0

    def scan(expr: Optional[Expr]) -> None:
        nonlocal best
        if expr is None:
            return
        for node in walk(expr):
            if isinstance(node, Param):
                best = max(best, node.index + 1)

    if isinstance(stmt, Select):
        for item in stmt.items:
            if not item.star:
                scan(item.expr)
        scan(stmt.where)
        for g in stmt.group_by:
            scan(g)
        scan(stmt.having)
        for o in stmt.order_by:
            scan(o.expr)
        scan(stmt.limit)
        scan(stmt.offset)
        for j in stmt.joins:
            scan(j.on)
    elif isinstance(stmt, Insert):
        for row in stmt.rows:
            for e in row:
                scan(e)
        if stmt.select is not None:
            best = max(best, max_param_index(stmt.select))
    elif isinstance(stmt, Update):
        for a in stmt.assignments:
            scan(a.value)
        scan(stmt.where)
    elif isinstance(stmt, Delete):
        scan(stmt.where)
    return best
