"""Recursive-descent SQL parser producing :mod:`repro.sql.ast` trees.

Grammar (informally)::

    statement   := select | insert | update | delete
    select      := SELECT [DISTINCT] items FROM table_ref join* [WHERE expr]
                   [GROUP BY expr_list [HAVING expr]]
                   [ORDER BY order_list] [LIMIT expr [OFFSET expr]]
    insert      := INSERT INTO name ['(' cols ')'] (VALUES rows | select)
    update      := UPDATE name SET assignments [WHERE expr]
    delete      := DELETE FROM name [WHERE expr]

Expression precedence (loosest to tightest): OR, AND, NOT, comparison /
IN / BETWEEN / LIKE / IS, additive, multiplicative, unary, primary.
"""

from __future__ import annotations

from typing import Optional

from ..common.errors import ParseError
from .ast import (
    Assignment,
    Between,
    Binary,
    Case,
    ColumnRef,
    Delete,
    Expr,
    FuncCall,
    InList,
    Insert,
    IsNull,
    JoinClause,
    Like,
    Literal,
    OrderItem,
    Param,
    Select,
    SelectItem,
    Statement,
    TableRef,
    Unary,
    Update,
)
from .lexer import Token, TokenType, tokenize

_COMPARISON_OPS = frozenset({"=", "<>", "<", "<=", ">", ">="})


def parse(sql: str) -> Statement:
    """Parse one SQL statement (a single trailing ``;`` is allowed)."""
    return _Parser(sql).parse_statement()


def parse_expression(sql: str) -> Expr:
    """Parse a standalone expression (used by tests and the REPL)."""
    parser = _Parser(sql)
    expr = parser.parse_expr()
    parser.expect_eof()
    return expr


class _Parser:
    def __init__(self, sql: str):
        self.sql = sql
        self.tokens = tokenize(sql)
        self.pos = 0
        self._param_counter = 0

    # -- token plumbing -----------------------------------------------------

    def peek(self, ahead: int = 0) -> Token:
        return self.tokens[min(self.pos + ahead, len(self.tokens) - 1)]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.type is not TokenType.EOF:
            self.pos += 1
        return token

    def accept_keyword(self, *names: str) -> Optional[Token]:
        if self.peek().is_keyword(*names):
            return self.advance()
        return None

    def expect_keyword(self, *names: str) -> Token:
        token = self.peek()
        if not token.is_keyword(*names):
            raise ParseError(
                f"expected {'/'.join(n.upper() for n in names)} but found "
                f"{token.value!r} at position {token.position}",
                token.position,
            )
        return self.advance()

    def accept_op(self, *ops: str) -> Optional[Token]:
        token = self.peek()
        if token.type is TokenType.OP and token.value in ops:
            return self.advance()
        return None

    def expect_op(self, op: str) -> Token:
        token = self.peek()
        if token.type is not TokenType.OP or token.value != op:
            raise ParseError(
                f"expected {op!r} but found {token.value!r} at position {token.position}",
                token.position,
            )
        return self.advance()

    def expect_ident(self) -> str:
        token = self.peek()
        if token.type is TokenType.IDENT:
            self.advance()
            return token.value
        # permit non-reserved keywords used as identifiers in benchmarks
        if token.type is TokenType.KEYWORD and token.value in ("count", "sum", "min", "max", "avg", "key", "all"):
            self.advance()
            return token.value
        raise ParseError(
            f"expected identifier but found {token.value!r} at position {token.position}",
            token.position,
        )

    def expect_eof(self) -> None:
        self.accept_op(";")
        token = self.peek()
        if token.type is not TokenType.EOF:
            raise ParseError(
                f"unexpected trailing input {token.value!r} at position {token.position}",
                token.position,
            )

    # -- statements ---------------------------------------------------------

    def parse_statement(self) -> Statement:
        token = self.peek()
        if token.is_keyword("select"):
            stmt: Statement = self.parse_select()
        elif token.is_keyword("insert"):
            stmt = self.parse_insert()
        elif token.is_keyword("update"):
            stmt = self.parse_update()
        elif token.is_keyword("delete"):
            stmt = self.parse_delete()
        else:
            raise ParseError(
                f"expected a statement but found {token.value!r} at position {token.position}",
                token.position,
            )
        self.expect_eof()
        return stmt

    def parse_select(self) -> Select:
        self.expect_keyword("select")
        distinct = self.accept_keyword("distinct") is not None
        self.accept_keyword("all")
        items = self._parse_select_items()

        table: Optional[TableRef] = None
        joins: list[JoinClause] = []
        if self.accept_keyword("from"):
            table = self._parse_table_ref()
            while True:
                if self.accept_op(","):
                    joins.append(JoinClause(self._parse_table_ref(), on=None, kind="cross"))
                    continue
                kind = None
                if self.accept_keyword("join") or (
                    self.accept_keyword("inner") and self.expect_keyword("join")
                ):
                    kind = "inner"
                elif self.peek().is_keyword("left"):
                    self.advance()
                    self.accept_keyword("outer") if self.peek().is_keyword("outer") else None
                    self.expect_keyword("join")
                    kind = "left"
                if kind is None:
                    break
                ref = self._parse_table_ref()
                self.expect_keyword("on")
                on = self.parse_expr()
                joins.append(JoinClause(ref, on=on, kind=kind))

        where = self.parse_expr() if self.accept_keyword("where") else None

        group_by: tuple = ()
        having = None
        if self.accept_keyword("group"):
            self.expect_keyword("by")
            exprs = [self.parse_expr()]
            while self.accept_op(","):
                exprs.append(self.parse_expr())
            group_by = tuple(exprs)
            if self.accept_keyword("having"):
                having = self.parse_expr()

        order_by: list[OrderItem] = []
        if self.accept_keyword("order"):
            self.expect_keyword("by")
            order_by.append(self._parse_order_item())
            while self.accept_op(","):
                order_by.append(self._parse_order_item())

        limit = offset = None
        if self.accept_keyword("limit"):
            limit = self.parse_expr()
            if self.accept_keyword("offset"):
                offset = self.parse_expr()

        return Select(
            items=items,
            table=table,
            joins=tuple(joins),
            where=where,
            group_by=group_by,
            having=having,
            order_by=tuple(order_by),
            limit=limit,
            offset=offset,
            distinct=distinct,
        )

    def _parse_select_items(self) -> tuple[SelectItem, ...]:
        items = [self._parse_select_item()]
        while self.accept_op(","):
            items.append(self._parse_select_item())
        return tuple(items)

    def _parse_select_item(self) -> SelectItem:
        if self.accept_op("*"):
            return SelectItem(expr=Literal(None), star=True)
        # qualified star: ident '.' '*'
        token = self.peek()
        if (
            token.type is TokenType.IDENT
            and self.peek(1).type is TokenType.OP
            and self.peek(1).value == "."
            and self.peek(2).type is TokenType.OP
            and self.peek(2).value == "*"
        ):
            self.advance()
            self.advance()
            self.advance()
            return SelectItem(expr=Literal(None), star=True, star_qualifier=token.value)
        expr = self.parse_expr()
        alias = None
        if self.accept_keyword("as"):
            alias = self.expect_ident()
        elif self.peek().type is TokenType.IDENT:
            alias = self.advance().value
        return SelectItem(expr=expr, alias=alias)

    def _parse_order_item(self) -> OrderItem:
        expr = self.parse_expr()
        descending = False
        if self.accept_keyword("desc"):
            descending = True
        else:
            self.accept_keyword("asc")
        return OrderItem(expr=expr, descending=descending)

    def _parse_table_ref(self) -> TableRef:
        name = self.expect_ident()
        alias = None
        if self.accept_keyword("as"):
            alias = self.expect_ident()
        elif self.peek().type is TokenType.IDENT:
            alias = self.advance().value
        return TableRef(name=name, alias=alias)

    def parse_insert(self) -> Insert:
        self.expect_keyword("insert")
        self.expect_keyword("into")
        table = TableRef(name=self.expect_ident())
        columns: tuple[str, ...] = ()
        if self.accept_op("("):
            cols = [self.expect_ident()]
            while self.accept_op(","):
                cols.append(self.expect_ident())
            self.expect_op(")")
            columns = tuple(cols)
        if self.accept_keyword("values"):
            rows = [self._parse_value_row()]
            while self.accept_op(","):
                rows.append(self._parse_value_row())
            return Insert(table=table, columns=columns, rows=tuple(rows))
        if self.peek().is_keyword("select"):
            return Insert(table=table, columns=columns, select=self.parse_select_only())
        token = self.peek()
        raise ParseError(
            f"expected VALUES or SELECT at position {token.position}", token.position
        )

    def parse_select_only(self) -> Select:
        """Parse a SELECT without the trailing-EOF check (subquery position)."""
        return self.parse_select()

    def _parse_value_row(self) -> tuple[Expr, ...]:
        self.expect_op("(")
        exprs = [self.parse_expr()]
        while self.accept_op(","):
            exprs.append(self.parse_expr())
        self.expect_op(")")
        return tuple(exprs)

    def parse_update(self) -> Update:
        self.expect_keyword("update")
        table = TableRef(name=self.expect_ident())
        self.expect_keyword("set")
        assignments = [self._parse_assignment()]
        while self.accept_op(","):
            assignments.append(self._parse_assignment())
        where = self.parse_expr() if self.accept_keyword("where") else None
        return Update(table=table, assignments=tuple(assignments), where=where)

    def _parse_assignment(self) -> Assignment:
        column = self.expect_ident()
        self.expect_op("=")
        return Assignment(column=column, value=self.parse_expr())

    def parse_delete(self) -> Delete:
        self.expect_keyword("delete")
        self.expect_keyword("from")
        table = TableRef(name=self.expect_ident())
        where = self.parse_expr() if self.accept_keyword("where") else None
        return Delete(table=table, where=where)

    # -- expressions ----------------------------------------------------------

    def parse_expr(self) -> Expr:
        return self._parse_or()

    def _parse_or(self) -> Expr:
        left = self._parse_and()
        while self.accept_keyword("or"):
            left = Binary("or", left, self._parse_and())
        return left

    def _parse_and(self) -> Expr:
        left = self._parse_not()
        while self.accept_keyword("and"):
            left = Binary("and", left, self._parse_not())
        return left

    def _parse_not(self) -> Expr:
        if self.accept_keyword("not"):
            return Unary("not", self._parse_not())
        return self._parse_comparison()

    def _parse_comparison(self) -> Expr:
        left = self._parse_additive()
        token = self.peek()

        if token.type is TokenType.OP and token.value in _COMPARISON_OPS:
            op = self.advance().value
            return Binary(op, left, self._parse_additive())

        negated = False
        if token.is_keyword("not"):
            nxt = self.peek(1)
            if nxt.is_keyword("in", "between", "like"):
                self.advance()
                negated = True
                token = self.peek()

        if token.is_keyword("in"):
            self.advance()
            self.expect_op("(")
            items = [self.parse_expr()]
            while self.accept_op(","):
                items.append(self.parse_expr())
            self.expect_op(")")
            return InList(left, tuple(items), negated=negated)

        if token.is_keyword("between"):
            self.advance()
            low = self._parse_additive()
            self.expect_keyword("and")
            high = self._parse_additive()
            return Between(left, low, high, negated=negated)

        if token.is_keyword("like"):
            self.advance()
            return Like(left, self._parse_additive(), negated=negated)

        if token.is_keyword("is"):
            self.advance()
            is_negated = self.accept_keyword("not") is not None
            self.expect_keyword("null")
            return IsNull(left, negated=is_negated)

        return left

    def _parse_additive(self) -> Expr:
        left = self._parse_multiplicative()
        while True:
            token = self.accept_op("+", "-")
            if token is None:
                return left
            left = Binary(token.value, left, self._parse_multiplicative())

    def _parse_multiplicative(self) -> Expr:
        left = self._parse_unary()
        while True:
            token = self.accept_op("*", "/", "%")
            if token is None:
                return left
            left = Binary(token.value, left, self._parse_unary())

    def _parse_unary(self) -> Expr:
        token = self.accept_op("-", "+")
        if token is not None:
            operand = self._parse_unary()
            if token.value == "-" and isinstance(operand, Literal) and isinstance(
                operand.value, (int, float)
            ):
                return Literal(-operand.value)
            return Unary(token.value, operand)
        return self._parse_primary()

    def _parse_primary(self) -> Expr:
        token = self.peek()

        if token.type is TokenType.NUMBER or token.type is TokenType.STRING:
            self.advance()
            return Literal(token.value)

        if token.type is TokenType.PARAM:
            self.advance()
            param = Param(self._param_counter)
            self._param_counter += 1
            return param

        if token.is_keyword("null"):
            self.advance()
            return Literal(None)
        if token.is_keyword("true"):
            self.advance()
            return Literal(True)
        if token.is_keyword("false"):
            self.advance()
            return Literal(False)

        if token.is_keyword("case"):
            return self._parse_case()

        if token.is_keyword("count", "sum", "avg", "min", "max"):
            return self._parse_function_call(self.advance().value)

        if token.type is TokenType.OP and token.value == "(":
            self.advance()
            expr = self.parse_expr()
            self.expect_op(")")
            return expr

        if token.type is TokenType.IDENT:
            name = self.advance().value
            nxt = self.peek()
            if nxt.type is TokenType.OP and nxt.value == "(":
                return self._parse_function_call(name)
            if nxt.type is TokenType.OP and nxt.value == ".":
                self.advance()
                column = self.expect_ident()
                return ColumnRef(name=column, qualifier=name)
            return ColumnRef(name=name)

        raise ParseError(
            f"unexpected token {token.value!r} at position {token.position}",
            token.position,
        )

    def _parse_case(self) -> Expr:
        self.expect_keyword("case")
        whens: list[tuple[Expr, Expr]] = []
        while self.accept_keyword("when"):
            cond = self.parse_expr()
            self.expect_keyword("then")
            whens.append((cond, self.parse_expr()))
        if not whens:
            token = self.peek()
            raise ParseError(
                f"CASE requires at least one WHEN at position {token.position}",
                token.position,
            )
        else_ = self.parse_expr() if self.accept_keyword("else") else None
        self.expect_keyword("end")
        return Case(tuple(whens), else_)

    def _parse_function_call(self, name: str) -> Expr:
        self.expect_op("(")
        if self.accept_op("*"):
            self.expect_op(")")
            return FuncCall(name=name, args=(), star=True)
        if self.accept_op(")"):
            return FuncCall(name=name, args=())
        distinct = self.accept_keyword("distinct") is not None
        args = [self.parse_expr()]
        while self.accept_op(","):
            args.append(self.parse_expr())
        self.expect_op(")")
        return FuncCall(name=name, args=tuple(args), distinct=distinct)
