"""Aggregate function accumulators (COUNT/SUM/AVG/MIN/MAX, with DISTINCT).

The planner instantiates one accumulator per aggregate call per group; the
executor feeds every group row through :meth:`Accumulator.add` and reads
:meth:`Accumulator.result` at the end.  SQL NULL handling: all aggregates
ignore NULL inputs; ``COUNT(*)`` counts rows regardless; SUM/AVG/MIN/MAX of
an all-NULL (or empty) input are NULL, while COUNT is 0.
"""

from __future__ import annotations

from typing import Any, Callable

from ..common.errors import PlanningError


class Accumulator:
    """Base class for one aggregate computation over one group."""

    __slots__ = ()

    def add(self, value: Any) -> None:
        raise NotImplementedError

    def result(self) -> Any:
        raise NotImplementedError


class CountStar(Accumulator):
    __slots__ = ("n",)

    def __init__(self) -> None:
        self.n = 0

    def add(self, value: Any) -> None:
        self.n += 1

    def result(self) -> int:
        return self.n


class Count(Accumulator):
    __slots__ = ("n",)

    def __init__(self) -> None:
        self.n = 0

    def add(self, value: Any) -> None:
        if value is not None:
            self.n += 1

    def result(self) -> int:
        return self.n


class Sum(Accumulator):
    __slots__ = ("total", "seen")

    def __init__(self) -> None:
        self.total: Any = 0
        self.seen = False

    def add(self, value: Any) -> None:
        if value is not None:
            self.total += value
            self.seen = True

    def result(self) -> Any:
        return self.total if self.seen else None


class Avg(Accumulator):
    __slots__ = ("total", "n")

    def __init__(self) -> None:
        self.total = 0.0
        self.n = 0

    def add(self, value: Any) -> None:
        if value is not None:
            self.total += value
            self.n += 1

    def result(self) -> Any:
        return self.total / self.n if self.n else None


class Min(Accumulator):
    __slots__ = ("best",)

    def __init__(self) -> None:
        self.best: Any = None

    def add(self, value: Any) -> None:
        if value is not None and (self.best is None or value < self.best):
            self.best = value

    def result(self) -> Any:
        return self.best


class Max(Accumulator):
    __slots__ = ("best",)

    def __init__(self) -> None:
        self.best: Any = None

    def add(self, value: Any) -> None:
        if value is not None and (self.best is None or value > self.best):
            self.best = value

    def result(self) -> Any:
        return self.best


class Distinct(Accumulator):
    """Wraps another accumulator, feeding each distinct non-NULL value once."""

    __slots__ = ("inner", "seen")

    def __init__(self, inner: Accumulator) -> None:
        self.inner = inner
        self.seen: set = set()

    def add(self, value: Any) -> None:
        if value is None or value in self.seen:
            return
        self.seen.add(value)
        self.inner.add(value)

    def result(self) -> Any:
        return self.inner.result()


_FACTORIES: dict[str, Callable[[], Accumulator]] = {
    "count": Count,
    "sum": Sum,
    "avg": Avg,
    "min": Min,
    "max": Max,
}


def make_accumulator(name: str, *, star: bool = False, distinct: bool = False) -> Accumulator:
    """Build the accumulator for one aggregate call.

    >>> acc = make_accumulator("count", star=True)
    >>> acc.add(None); acc.add(1); acc.result()
    2
    """
    if star:
        if name != "count":
            raise PlanningError(f"{name.upper()}(*) is not valid SQL")
        if distinct:
            raise PlanningError("COUNT(DISTINCT *) is not valid SQL")
        return CountStar()
    factory = _FACTORIES.get(name)
    if factory is None:
        raise PlanningError(f"unknown aggregate function {name!r}")
    acc = factory()
    if distinct:
        return Distinct(acc)
    return acc
