"""Execution context, result sets, and physical access paths.

A :class:`PreparedStatement` (built by :mod:`repro.sql.planner`) is a pure
closure over compiled expressions and access-path choices; running it
requires an :class:`ExecutionContext`, which carries:

* the catalog (tables are resolved by name at run time, so one prepared
  statement works on every partition with the same schema),
* the positional parameter list,
* a write observer — the undo log of the transaction the statement runs
  in (:class:`repro.engine.transaction.UndoLog`; supplied by the
  ``Database`` facade, never by callers),
* an access guard — the streaming layer's window-visibility enforcement
  (paper §3.2.2; likewise private engine wiring), and
* event counters (rows scanned, index probes, rows written) that the
  execution engine converts into simulated-time charges and that tests
  assert on directly.

All writes go through the context (:meth:`ExecutionContext.insert` /
:meth:`delete` / :meth:`update`) so that undo logging, visibility guards,
trigger notification, and cost accounting see every mutation.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Callable, Iterator, Optional, Protocol, Sequence

from ..common.errors import PlanningError
from ..obs import DISABLED
from ..storage.catalog import Catalog
from ..storage.index import OrderedIndex
from ..storage.table import Table


class WriteObserver(Protocol):
    """Receives every physical mutation (the transaction undo log)."""

    def on_insert(self, table: Table, rowid: int) -> None: ...

    def on_insert_many(self, table: Table, first_rowid: int, count: int) -> None: ...

    def on_delete(self, table: Table, rowid: int, old_row: tuple) -> None: ...

    def on_update(self, table: Table, rowid: int, old_row: tuple) -> None: ...


AccessGuard = Callable[[Table, str], None]  # (table, "read"|"write") -> None or raise


class ResultSet:
    """Query result: named columns plus materialised rows.

    Iterable, sized, indexable, and truthy-on-rows, so callers consume it
    directly (``for row in result``, ``len(result)``, ``result[0]``)
    instead of reaching into :attr:`rows`.

    DML statements return an empty-column result whose :attr:`rowcount`
    records the number of affected rows (mirroring H-Store's behaviour of
    returning a single-cell VoltTable for DML).
    """

    __slots__ = ("columns", "rows", "rowcount")

    def __init__(self, columns: Sequence[str], rows: list[tuple], rowcount: int | None = None):
        self.columns = tuple(columns)
        self.rows = rows
        self.rowcount = len(rows) if rowcount is None else rowcount

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def __bool__(self) -> bool:
        return bool(self.rows)

    def __getitem__(self, i: int) -> tuple:
        return self.rows[i]

    def scalar(self) -> Any:
        """The single value of a single-row, single-column result (or None
        when the result is empty)."""
        if not self.rows:
            return None
        return self.rows[0][0]

    def first(self) -> tuple | None:
        return self.rows[0] if self.rows else None

    def column(self, name: str) -> list[Any]:
        try:
            i = self.columns.index(name.lower())
        except ValueError:
            raise PlanningError(f"no column {name!r} in result (have {self.columns})") from None
        return [row[i] for row in self.rows]

    def to_dicts(self) -> list[dict[str, Any]]:
        return [dict(zip(self.columns, row)) for row in self.rows]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ResultSet({self.columns}, {len(self.rows)} rows)"


EMPTY_RESULT = ResultSet((), [], rowcount=0)


class ExecutionContext:
    """Everything a prepared statement needs at run time.

    ``obs`` is the engine's observability handle (DISABLED by default:
    operators guard on ``obs.enabled``, so the uninstrumented path costs
    one attribute load).  ``explain_counts`` is normally ``None``; an
    EXPLAIN run passes a dict and every operator records its actual
    output rows under its plan ``op_id``.
    """

    __slots__ = ("catalog", "params", "observer", "guard", "counters", "obs", "explain_counts")

    def __init__(
        self,
        catalog: Catalog,
        params: Sequence[Any] = (),
        *,
        observer: Optional[WriteObserver] = None,
        guard: Optional[AccessGuard] = None,
        obs=DISABLED,
        explain_counts: Optional[dict[int, int]] = None,
    ):
        self.catalog = catalog
        self.params = tuple(params)
        self.observer = observer
        self.guard = guard
        self.counters: Counter[str] = Counter()
        self.obs = obs
        self.explain_counts = explain_counts

    # -- guarded table access ------------------------------------------------

    def read_table(self, name: str) -> Table:
        table = self.catalog.table(name)
        if self.guard is not None:
            self.guard(table, "read")
        return table

    def write_table(self, name: str) -> Table:
        table = self.catalog.table(name)
        if self.guard is not None:
            self.guard(table, "write")
        return table

    # -- guarded mutations ----------------------------------------------------

    def insert(self, table: Table, values: Sequence[Any]) -> int:
        rowid = table.insert(values)
        self.counters["rows_inserted"] += 1
        if self.observer is not None:
            self.observer.on_insert(table, rowid)
        return rowid

    def insert_many(self, table: Table, rows: Sequence[Sequence[Any]]) -> range:
        """Bulk insert through :meth:`Table.insert_many`: one undo-log range
        record and one counter update for the whole batch."""
        rowids = table.insert_many(rows)
        n = len(rowids)
        self.counters["rows_inserted"] += n
        if n and self.observer is not None:
            self.observer.on_insert_many(table, rowids.start, n)
        return rowids

    def delete(self, table: Table, rowid: int) -> tuple:
        old = table.delete_row(rowid)
        self.counters["rows_deleted"] += 1
        if self.observer is not None:
            self.observer.on_delete(table, rowid, old)
        return old

    def update(self, table: Table, rowid: int, new_values: Sequence[Any]) -> tuple:
        old = table.update_row(rowid, new_values)
        self.counters["rows_updated"] += 1
        if self.observer is not None:
            self.observer.on_update(table, rowid, old)
        return old

    # -- accounting -------------------------------------------------------------

    def count(self, event: str, n: int = 1) -> None:
        self.counters[event] += n


# ---------------------------------------------------------------------------
# Physical access paths.  Each is a factory the planner configures once;
# calling it with a context yields (rowid, row) pairs.
# ---------------------------------------------------------------------------

Predicate = Callable[[Sequence[Any], Sequence[Any]], bool]
ValueFn = Callable[[Sequence[Any], Sequence[Any]], Any]

_NO_ROW: tuple = ()


class SeqScan:
    """Full scan in insertion (arrival) order with optional residual filter."""

    __slots__ = ("table_name", "pred", "op_id")

    def __init__(self, table_name: str, pred: Optional[Predicate] = None):
        self.table_name = table_name
        self.pred = pred
        self.op_id = -1

    def __call__(self, ctx: ExecutionContext) -> Iterator[tuple[int, tuple]]:
        table = ctx.read_table(self.table_name)
        pred = self.pred
        params = ctx.params
        scanned = 0
        emitted = 0
        # finally, not loop-exit: a LIMIT may close this generator early and
        # the rows already visited must still be counted (and charged).
        try:
            for rowid, row in table.scan_visible():
                scanned += 1
                if pred is None or pred(row, params):
                    emitted += 1
                    yield rowid, row
        finally:
            ctx.count("rows_scanned", scanned)
            if ctx.explain_counts is not None:
                ctx.explain_counts[self.op_id] = (
                    ctx.explain_counts.get(self.op_id, 0) + emitted
                )


class IndexScan:
    """Equality probe into a hash index, plus optional residual filter."""

    __slots__ = ("table_name", "index_name", "key_fns", "pred", "op_id")

    def __init__(
        self,
        table_name: str,
        index_name: str,
        key_fns: Sequence[ValueFn],
        pred: Optional[Predicate] = None,
    ):
        self.table_name = table_name
        self.index_name = index_name
        self.key_fns = tuple(key_fns)
        self.pred = pred
        self.op_id = -1

    def __call__(self, ctx: ExecutionContext) -> Iterator[tuple[int, tuple]]:
        table = ctx.read_table(self.table_name)
        index = table.index(self.index_name)
        params = ctx.params
        key = tuple(fn(_NO_ROW, params) for fn in self.key_fns)
        ctx.count("index_probes")
        if any(v is None for v in key):
            return  # col = NULL never matches
        pred = self.pred
        visible = table.is_visible
        scanned = 0
        emitted = 0
        # batched counter update (finally: a LIMIT may close this generator
        # early and the rows already visited must still be counted)
        try:
            for rowid in index.lookup(key):
                row = table.get(rowid)
                if row is None or not visible(row):
                    continue
                scanned += 1
                if pred is None or pred(row, params):
                    emitted += 1
                    yield rowid, row
        finally:
            ctx.count("rows_scanned", scanned)
            if ctx.explain_counts is not None:
                ctx.explain_counts[self.op_id] = (
                    ctx.explain_counts.get(self.op_id, 0) + emitted
                )


class IndexRangeScan:
    """Range scan over an ordered index, plus optional residual filter."""

    __slots__ = (
        "table_name", "index_name", "lo_fn", "hi_fn", "lo_inc", "hi_inc", "pred", "op_id",
    )

    def __init__(
        self,
        table_name: str,
        index_name: str,
        lo_fn: Optional[ValueFn],
        hi_fn: Optional[ValueFn],
        lo_inc: bool,
        hi_inc: bool,
        pred: Optional[Predicate] = None,
    ):
        self.table_name = table_name
        self.index_name = index_name
        self.lo_fn = lo_fn
        self.hi_fn = hi_fn
        self.lo_inc = lo_inc
        self.hi_inc = hi_inc
        self.pred = pred
        self.op_id = -1

    def __call__(self, ctx: ExecutionContext) -> Iterator[tuple[int, tuple]]:
        table = ctx.read_table(self.table_name)
        index = table.index(self.index_name)
        if not isinstance(index, OrderedIndex):  # pragma: no cover - planner invariant
            raise PlanningError(f"index {self.index_name!r} is not ordered")
        params = ctx.params
        lo = self.lo_fn(_NO_ROW, params) if self.lo_fn is not None else None
        hi = self.hi_fn(_NO_ROW, params) if self.hi_fn is not None else None
        if (self.lo_fn is not None and lo is None) or (self.hi_fn is not None and hi is None):
            return  # range bound NULL -> empty
        ctx.count("index_probes")
        pred = self.pred
        visible = table.is_visible
        scanned = 0
        emitted = 0
        # batched counter update (same early-close contract as above)
        try:
            for rowid in index.range_scan(lo, hi, lo_inclusive=self.lo_inc, hi_inclusive=self.hi_inc):
                row = table.get(rowid)
                if row is None or not visible(row):
                    continue
                scanned += 1
                if pred is None or pred(row, params):
                    emitted += 1
                    yield rowid, row
        finally:
            ctx.count("rows_scanned", scanned)
            if ctx.explain_counts is not None:
                ctx.explain_counts[self.op_id] = (
                    ctx.explain_counts.get(self.op_id, 0) + emitted
                )


Scan = SeqScan | IndexScan | IndexRangeScan


def sort_rows(
    pairs: list[tuple[tuple, tuple]],
    descending: Sequence[bool],
) -> list[tuple]:
    """Sort ``(sort_key_tuple, output_row)`` pairs and return output rows.

    Multi-key sorts are applied as successive stable sorts from the last key
    to the first.  NULLs order last under ASC and first under DESC (each key
    element arrives pre-wrapped as ``(value is None, value)``).
    """
    for i in range(len(descending) - 1, -1, -1):
        reverse = descending[i]
        pairs.sort(key=lambda pair, i=i: pair[0][i], reverse=reverse)
    return [row for _key, row in pairs]


def null_safe_key(value: Any) -> tuple:
    """Wrap a sort value so NULLs compare without TypeError."""
    return (value is None, value)
