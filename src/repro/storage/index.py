"""Secondary indexes: hash (equality) and ordered (range) indexes.

Indexes map key tuples — extracted from rows via the owning table's schema —
to row ids.  The table maintains its indexes on every insert/delete/update;
the SQL planner picks an index when a WHERE clause has a matching equality
or range predicate (paper §4.6.3 hinges on exactly this: S-Store validates
votes with "a lookup rather than a table scan").
"""

from __future__ import annotations

import bisect
from operator import itemgetter
from typing import Any, Iterable, Iterator, Sequence

from ..common.errors import ConstraintViolation

_KEY0 = itemgetter(0)


class HashIndex:
    """Equality index: key tuple → set of row ids.

    With ``unique=True`` the index enforces at most one row per key and
    raises :class:`ConstraintViolation` on duplicates (used for PRIMARY KEY
    and UNIQUE constraints).
    """

    __slots__ = ("name", "key_columns", "unique", "_map")

    def __init__(self, name: str, key_columns: Sequence[str], *, unique: bool = False):
        self.name = name
        self.key_columns = tuple(c.lower() for c in key_columns)
        self.unique = unique
        self._map: dict[tuple, set[int] | int] = {}

    def insert(self, key: tuple, rowid: int) -> None:
        if self.unique:
            if key in self._map:
                raise ConstraintViolation(
                    f"unique index {self.name!r}: duplicate key {key!r}"
                )
            self._map[key] = rowid
        else:
            self._map.setdefault(key, set()).add(rowid)  # type: ignore[union-attr]

    def insert_many(self, keys: Sequence[tuple], first_rowid: int) -> None:
        """Bulk insert: key ``i`` maps to rowid ``first_rowid + i``.

        Keys containing NULL are skipped (NULL never indexes).  For unique
        indexes the caller is expected to have pre-checked the whole batch
        (including intra-batch duplicates); duplicates still raise here as
        a last line of defence.
        """
        m = self._map
        if self.unique:
            for i, key in enumerate(keys):
                if None in key:
                    continue
                if key in m:
                    raise ConstraintViolation(
                        f"unique index {self.name!r}: duplicate key {key!r}"
                    )
                m[key] = first_rowid + i
        else:
            setdefault = m.setdefault
            for i, key in enumerate(keys):
                if None in key:
                    continue
                setdefault(key, set()).add(first_rowid + i)  # type: ignore[union-attr]

    def delete(self, key: tuple, rowid: int) -> None:
        entry = self._map.get(key)
        if entry is None:
            return
        if self.unique:
            if entry == rowid:
                del self._map[key]
        else:
            entry.discard(rowid)  # type: ignore[union-attr]
            if not entry:
                del self._map[key]

    def delete_many(self, entries: Iterable[tuple[tuple, int]]) -> None:
        """Bulk delete of ``(key, rowid)`` pairs in one loop.  Keys
        containing NULL are skipped (they were never inserted)."""
        for key, rowid in entries:
            if None in key:
                continue
            self.delete(key, rowid)

    def lookup(self, key: tuple) -> Iterator[int]:
        """Row ids matching ``key`` exactly (deterministic order)."""
        entry = self._map.get(key)
        if entry is None:
            return iter(())
        if self.unique:
            return iter((entry,))  # type: ignore[arg-type]
        return iter(sorted(entry))  # type: ignore[arg-type]

    def contains(self, key: tuple) -> bool:
        return key in self._map

    def __len__(self) -> int:
        return len(self._map)

    def clear(self) -> None:
        self._map.clear()

    def probe_count(self) -> int:
        """Number of distinct keys (used by tests and cost accounting)."""
        return len(self._map)


class OrderedIndex:
    """Range index over a single column, kept as a sorted key list.

    Supports ``range_scan(lo, hi)`` with optional open bounds.  NULL keys are
    not indexed (SQL semantics: NULL never matches a range predicate).
    """

    __slots__ = ("name", "key_columns", "_keys", "_rowids")

    def __init__(self, name: str, key_columns: Sequence[str]):
        if len(key_columns) != 1:
            raise ValueError("OrderedIndex supports exactly one key column")
        self.name = name
        self.key_columns = tuple(c.lower() for c in key_columns)
        self._keys: list[Any] = []
        self._rowids: list[int] = []

    def insert(self, key: tuple, rowid: int) -> None:
        value = key[0]
        if value is None:
            return
        pos = bisect.bisect_right(self._keys, value)
        self._keys.insert(pos, value)
        self._rowids.insert(pos, rowid)

    def insert_many(self, keys: Sequence[tuple], first_rowid: int) -> None:
        """Bulk insert: key ``i`` maps to rowid ``first_rowid + i``.

        The batch is sorted once and merged with the existing contents —
        the concatenation is two sorted runs, which Timsort merges in
        O(n + m) — instead of paying one O(n) ``list.insert`` per key.
        NULL keys are skipped (never indexed).  Stability of both sorts
        keeps equal keys in arrival order, matching ``bisect_right``
        insertion.
        """
        new = [
            (key[0], first_rowid + i)
            for i, key in enumerate(keys)
            if key[0] is not None
        ]
        if not new:
            return
        new.sort(key=_KEY0)
        if self._keys:
            pairs = list(zip(self._keys, self._rowids))
            pairs.extend(new)
            pairs.sort(key=_KEY0)
            new = pairs
        self._keys = [k for k, _ in new]
        self._rowids = [r for _, r in new]

    def delete(self, key: tuple, rowid: int) -> None:
        value = key[0]
        if value is None:
            return
        lo = bisect.bisect_left(self._keys, value)
        hi = bisect.bisect_right(self._keys, value)
        for i in range(lo, hi):
            if self._rowids[i] == rowid:
                del self._keys[i]
                del self._rowids[i]
                return

    def delete_many(self, entries: Iterable[tuple[tuple, int]]) -> None:
        """Bulk delete of ``(key, rowid)`` pairs: one O(n) filter pass over
        the sorted lists instead of one O(n) ``list.__delitem__`` per row."""
        doomed = {rowid for _key, rowid in entries}
        if not doomed:
            return
        keep_keys, keep_rowids = [], []
        for value, rowid in zip(self._keys, self._rowids):
            if rowid not in doomed:
                keep_keys.append(value)
                keep_rowids.append(rowid)
        self._keys = keep_keys
        self._rowids = keep_rowids

    def lookup(self, key: tuple) -> Iterator[int]:
        value = key[0]
        if value is None:
            return iter(())
        lo = bisect.bisect_left(self._keys, value)
        hi = bisect.bisect_right(self._keys, value)
        return iter(self._rowids[lo:hi])

    def contains(self, key: tuple) -> bool:
        value = key[0]
        if value is None:
            return False
        i = bisect.bisect_left(self._keys, value)
        return i < len(self._keys) and self._keys[i] == value

    def range_scan(
        self,
        lo: Any = None,
        hi: Any = None,
        *,
        lo_inclusive: bool = True,
        hi_inclusive: bool = True,
    ) -> Iterator[int]:
        """Row ids with key in the given range, in key order."""
        if lo is None:
            start = 0
        elif lo_inclusive:
            start = bisect.bisect_left(self._keys, lo)
        else:
            start = bisect.bisect_right(self._keys, lo)
        if hi is None:
            end = len(self._keys)
        elif hi_inclusive:
            end = bisect.bisect_right(self._keys, hi)
        else:
            end = bisect.bisect_left(self._keys, hi)
        return iter(self._rowids[start:end])

    def min_key(self) -> Any:
        return self._keys[0] if self._keys else None

    def max_key(self) -> Any:
        return self._keys[-1] if self._keys else None

    @property
    def unique(self) -> bool:
        return False

    def __len__(self) -> int:
        return len(self._keys)

    def clear(self) -> None:
        self._keys.clear()
        self._rowids.clear()


Index = HashIndex | OrderedIndex


def rebuild(index: Index, rows: Iterable[tuple[int, tuple]], key_of) -> None:
    """Rebuild an index from scratch over ``(rowid, row)`` pairs."""
    index.clear()
    for rowid, row in rows:
        index.insert(key_of(row, index.key_columns), rowid)
