"""In-memory row store with index maintenance and constraint checks.

Rows live in an insertion-ordered ``dict[rowid, tuple]``; row ids are
monotonically increasing and never reused, which gives three properties the
engine relies on:

* ``scan()`` yields rows in insertion order — the arrival order that stream
  tables depend on (§3.2.1: "the order of tuples in a stream is captured
  based on tuple metadata");
* deletes/updates are O(1) and reversible by rowid, which is what the
  transaction undo log records;
* snapshots and command-log replay rebuild identical physical state.

Constraint enforcement (NOT NULL, PRIMARY KEY, UNIQUE) happens here, so
every execution path — SQL, stored procedures, recovery replay — observes
the same integrity rules.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Sequence

from ..common.errors import (
    ConstraintViolation,
    NoSuchIndexError,
    NoSuchRowError,
    SchemaError,
)
from .index import HashIndex, Index, OrderedIndex
from .schema import TableSchema


class Table:
    """One in-memory table (also the substrate for streams and windows)."""

    __slots__ = ("schema", "_rows", "_next_rowid", "_order_dirty", "indexes")

    def __init__(self, schema: TableSchema):
        self.schema = schema
        self._rows: dict[int, tuple] = {}
        self._next_rowid: int = 1
        #: True while out-of-order restores have left the row dict
        #: unsorted; reconciled lazily by :meth:`_ensure_order`.
        self._order_dirty = False
        self.indexes: dict[str, Index] = {}
        if schema.primary_key:
            self.create_index(f"{schema.name}_pkey", schema.primary_key, unique=True)
        for i, key in enumerate(schema.unique_keys):
            self.create_index(f"{schema.name}_uniq{i}", key, unique=True)

    # -- basic properties ----------------------------------------------------

    @property
    def name(self) -> str:
        return self.schema.name

    def row_count(self) -> int:
        return len(self._rows)

    def __len__(self) -> int:
        return len(self._rows)

    # -- index management ----------------------------------------------------

    def create_index(
        self,
        name: str,
        key_columns: Sequence[str],
        *,
        unique: bool = False,
        ordered: bool = False,
    ) -> Index:
        """Create (and backfill) a secondary index."""
        if name in self.indexes:
            raise SchemaError(f"index {name!r} already exists on table {self.name!r}")
        for c in key_columns:
            self.schema.position(c)  # raises NoSuchColumnError for unknowns
        index: Index
        if ordered:
            if unique:
                raise SchemaError("ordered unique indexes are not supported")
            index = OrderedIndex(name, key_columns)
        else:
            index = HashIndex(name, key_columns, unique=unique)
        for rowid, row in self._rows.items():
            index.insert(self.schema.key_of(row, index.key_columns), rowid)
        self.indexes[name] = index
        return index

    def drop_index(self, name: str) -> None:
        if name not in self.indexes:
            raise NoSuchIndexError(f"no index {name!r} on table {self.name!r}")
        del self.indexes[name]

    def index(self, name: str) -> Index:
        try:
            return self.indexes[name]
        except KeyError:
            raise NoSuchIndexError(f"no index {name!r} on table {self.name!r}") from None

    def find_equality_index(self, columns: Iterable[str], *, subset: bool = False) -> Index | None:
        """An index usable for an equality lookup on ``columns``.

        Exact key-set matches win (order-insensitive, preferring unique
        indexes).  With ``subset=True`` — the SQL planner's mode — an index
        whose key columns are all *within* ``columns`` also qualifies, so a
        compound predicate can still probe a narrower index; among subset
        candidates, unique indexes win, then wider keys.
        """
        wanted = frozenset(c.lower() for c in columns)
        best: Index | None = None
        for index in self.indexes.values():
            if frozenset(index.key_columns) == wanted:
                if index.unique:
                    return index
                best = best or index
        if best is not None or not subset:
            return best
        for index in self.indexes.values():
            if not all(c in wanted for c in index.key_columns):
                continue
            if best is None:
                best = index
                continue
            better_unique = index.unique and not best.unique
            wider = len(index.key_columns) > len(best.key_columns)
            if better_unique or (wider and index.unique == best.unique):
                best = index
        return best

    def find_ordered_index(self, column: str) -> OrderedIndex | None:
        for index in self.indexes.values():
            if isinstance(index, OrderedIndex) and index.key_columns == (column.lower(),):
                return index
        return None

    # -- row operations -------------------------------------------------------

    def insert(self, values: Sequence[Any]) -> int:
        """Insert a full-width row; returns the new rowid.

        All unique constraints are checked before any index is touched so a
        violation leaves the table unchanged.  Each index key is computed
        exactly once and shared between the unique check and index
        maintenance.
        """
        row = self.schema.coerce_row(values)
        keyed = self._index_keys(row)
        self._check_unique_keyed(keyed)
        rowid = self._next_rowid
        self._next_rowid += 1
        self._rows[rowid] = row
        for index, key in keyed:
            if key is not None:
                index.insert(key, rowid)
        return rowid

    def insert_many(self, rows: Iterable[Sequence[Any]]) -> range:
        """Bulk insert; returns the contiguous range of new rowids.

        The batch-oriented fast path (paper §3.2.1: the batch is the atomic
        unit): the whole batch is coerced and unique-checked up front —
        each index key computed exactly once, intra-batch duplicates
        included — then rows are appended in one pass and every index is
        maintained with a single loop.  A constraint violation anywhere in
        the batch leaves the table completely unchanged: no rows, no index
        entries, and no rowids consumed.  Arrival order is batch order.
        """
        coerce = self.schema.coerce_row
        coerced = [coerce(values) for values in rows]
        first = self._next_rowid
        n = len(coerced)
        if n == 0:
            return range(first, first)
        key_of = self.schema.key_of
        per_index: list[tuple[Index, list[tuple]]] = []
        for index in self.indexes.values():
            cols = index.key_columns
            keys = [key_of(row, cols) for row in coerced]
            if getattr(index, "unique", False):
                seen: set[tuple] = set()
                for key in keys:
                    if None in key:
                        continue  # NULL keys are never indexed
                    if key in seen or index.contains(key):
                        raise ConstraintViolation(
                            f"table {self.name!r}: duplicate key {key!r} for "
                            f"index {index.name!r}"
                        )
                    seen.add(key)
            per_index.append((index, keys))
        self._next_rowid = first + n
        store = self._rows
        rowid = first
        for row in coerced:
            store[rowid] = row
            rowid += 1
        for index, keys in per_index:
            index.insert_many(keys, first)
        return range(first, first + n)

    def insert_mapping(self, mapping: dict[str, Any]) -> int:
        """Insert from a column→value mapping (missing columns default)."""
        return self.insert(self.schema.row_from_mapping(mapping))

    def get(self, rowid: int) -> tuple | None:
        return self._rows.get(rowid)

    def delete_row(self, rowid: int) -> tuple:
        """Delete by rowid; returns the old row (for undo logging)."""
        row = self._rows.pop(rowid, None)
        if row is None:
            raise NoSuchRowError(f"no row {rowid} in table {self.name!r}")
        for index, key in self._index_keys(row):
            if key is not None:
                index.delete(key, rowid)
        return row

    def delete_many(self, rowids: Iterable[int]) -> int:
        """Bulk delete by rowid; returns how many rows were removed.

        Every rowid is validated before the first mutation (an unknown
        rowid raises with nothing deleted), then the row dict is emptied in
        one pass and each index is maintained with a single loop — ordered
        indexes filter their sorted lists in one O(n) pass instead of one
        O(n) splice per row.
        """
        store = self._rows
        doomed: list[tuple[int, tuple]] = []
        seen: set[int] = set()
        for rowid in rowids:
            row = store.get(rowid)
            if row is None or rowid in seen:
                # a duplicate targets a row the batch already deletes —
                # rejected up front so nothing has been mutated yet
                raise NoSuchRowError(
                    f"no row {rowid} in table {self.name!r}"
                    + (" (duplicate rowid in bulk delete)" if rowid in seen else "")
                )
            seen.add(rowid)
            doomed.append((rowid, row))
        if not doomed:
            return 0
        for rowid, _row in doomed:
            del store[rowid]
        key_of = self.schema.key_of
        for index in self.indexes.values():
            cols = index.key_columns
            index.delete_many((key_of(row, cols), rowid) for rowid, row in doomed)
        return len(doomed)

    def delete_range(self, first_rowid: int, count: int) -> int:
        """Delete the ``count`` rows at contiguous rowids starting at
        ``first_rowid`` — the undo primitive matching :meth:`insert_many`'s
        compact range undo record."""
        return self.delete_many(range(first_rowid, first_rowid + count))

    def update_row(self, rowid: int, new_values: Sequence[Any]) -> tuple:
        """Replace the row at ``rowid``; returns the old row (for undo).

        The new row's index keys are computed exactly once and shared
        between the unique check and index maintenance.
        """
        old = self._rows.get(rowid)
        if old is None:
            raise NoSuchRowError(f"no row {rowid} in table {self.name!r}")
        new = self.schema.coerce_row(new_values)
        new_keyed = self._index_keys(new)
        self._check_unique_keyed(new_keyed, ignore_rowid=rowid)
        key_of = self.schema.key_of
        for index, new_key in new_keyed:
            old_key = key_of(old, index.key_columns)
            if None in old_key:
                old_key = None
            if old_key != new_key:
                if old_key is not None:
                    index.delete(old_key, rowid)
                if new_key is not None:
                    index.insert(new_key, rowid)
        self._rows[rowid] = new
        return old

    def restore_row(self, rowid: int, row: tuple) -> None:
        """Re-insert a previously deleted row under its original rowid
        (undo path; bypasses re-coercion, the row was valid when stored).

        Arrival order is part of the physical state (stream tables depend
        on it), so a restore in the middle of the rowid sequence marks the
        row dict unsorted; the next scan/snapshot re-sorts it **once** —
        O(n log n) per rollback batch, not per restored row, and never on
        the forward hot path."""
        if rowid in self._rows:
            raise ConstraintViolation(f"rowid {rowid} already present in {self.name!r}")
        self._rows[rowid] = row
        if not self._order_dirty and len(self._rows) > 1:
            tail = reversed(self._rows)
            next(tail)  # the rowid just appended
            prev = next(tail, None)
            if prev is not None and prev > rowid:
                self._order_dirty = True
        for index, key in self._index_keys(row):
            if key is not None:
                index.insert(key, rowid)
        # rowids are never reused, even across undo
        if rowid >= self._next_rowid:
            self._next_rowid = rowid + 1

    # -- scanning --------------------------------------------------------------
    #
    # Scans iterate the row dict directly — no defensive copy — so read-only
    # scans are allocation-free.  The contract: callers that mutate the table
    # while consuming a scan (the SQL executor's UPDATE/DELETE paths) must
    # materialise the scan into a list *before* the first mutation.  The
    # planner's DML runners do exactly that; see ``repro.sql.planner``.

    def _ensure_order(self) -> None:
        """Re-sort the row dict if out-of-order restores dirtied it (one
        cheap flag check on every scan; one sort per rollback batch)."""
        if self._order_dirty:
            self._rows = dict(sorted(self._rows.items()))
            self._order_dirty = False

    def scan(self) -> Iterator[tuple[int, tuple]]:
        """All ``(rowid, row)`` pairs in insertion (arrival) order.

        Do not insert/delete rows while consuming this iterator; materialise
        it first (``list(table.scan())``) if you intend to mutate.
        """
        self._ensure_order()
        yield from self._rows.items()

    def is_visible(self, row: tuple) -> bool:
        """Whether SQL queries may see this row.

        Plain tables expose everything; window tables override this to hide
        tuples in the "staging" state (paper §3.2.2).
        """
        return True

    def scan_visible(self) -> Iterator[tuple[int, tuple]]:
        """Like :meth:`scan` but restricted to SQL-visible rows (and with the
        same no-mutation-while-iterating contract)."""
        self._ensure_order()
        visible = self.is_visible
        for rowid, row in self._rows.items():
            if visible(row):
                yield rowid, row

    def scan_rows(self) -> Iterator[tuple]:
        """Row tuples only, insertion order (no-mutation contract as above)."""
        self._ensure_order()
        yield from self._rows.values()

    def select_by_index(self, index: Index, key: tuple) -> Iterator[tuple[int, tuple]]:
        for rowid in index.lookup(key):
            row = self._rows.get(rowid)
            if row is not None:
                yield rowid, row

    def truncate(self) -> int:
        """Delete all rows; returns how many were removed."""
        n = len(self._rows)
        self._rows.clear()
        self._order_dirty = False
        for index in self.indexes.values():
            index.clear()
        return n

    # -- snapshot support --------------------------------------------------------

    def snapshot_state(self) -> dict[str, Any]:
        """Physical state for checkpointing: rowids, rows, next rowid.

        Rows are emitted in rowid order — the canonical arrival order — so
        two tables holding the same rows under the same rowids produce
        identical snapshots (what the transaction tests compare against)."""
        self._ensure_order()
        return {
            "next_rowid": self._next_rowid,
            "rows": [[rowid, list(row)] for rowid, row in self._rows.items()],
        }

    def load_snapshot_state(self, state: dict[str, Any]) -> None:
        """Replace contents from a checkpoint produced by
        :meth:`snapshot_state` (indexes are rebuilt)."""
        self._rows = {int(rowid): tuple(row) for rowid, row in state["rows"]}
        self._order_dirty = False  # snapshots are emitted in rowid order
        self._next_rowid = int(state["next_rowid"])
        for index in self.indexes.values():
            index.clear()
            for rowid, row in self._rows.items():
                key = self.schema.key_of(row, index.key_columns)
                if self._indexable(index, key):
                    index.insert(key, rowid)

    # -- internals ----------------------------------------------------------------

    @staticmethod
    def _indexable(index: Index, key: tuple) -> bool:
        """Keys containing NULL are not stored in unique/ordered indexes
        (SQL: NULL is distinct from every value, including NULL)."""
        return None not in key

    def _index_keys(self, row: tuple) -> list[tuple[Index, tuple | None]]:
        """One ``(index, key)`` pair per index, each key computed exactly
        once per row; non-indexable keys (containing NULL) map to None."""
        key_of = self.schema.key_of
        out = []
        for index in self.indexes.values():
            key = key_of(row, index.key_columns)
            out.append((index, None if None in key else key))
        return out

    def _check_unique_keyed(
        self,
        keyed: list[tuple[Index, tuple | None]],
        *,
        ignore_rowid: int | None = None,
    ) -> None:
        """Unique-constraint check over precomputed index keys."""
        for index, key in keyed:
            if key is None or not getattr(index, "unique", False):
                continue
            for existing in index.lookup(key):
                if existing != ignore_rowid:
                    raise ConstraintViolation(
                        f"table {self.name!r}: duplicate key {key!r} for index {index.name!r}"
                    )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Table({self.name!r}, rows={len(self._rows)}, kind={self.schema.kind.value})"
