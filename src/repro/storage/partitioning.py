"""Hash partitioning of data and workload across cores.

H-Store divides the database horizontally across partitions — one per core —
and runs transactions serially within each partition (paper §3.1).  S-Store
inherits this for its §4.7 multi-core experiments: "S-Store is able to
partition an input stream onto multiple cores.  Each core runs TE's of the
complete workflow in a serial, single-sited fashion for the input stream
partition to which it is assigned."

:class:`PartitionMap` records, per table, which column routes rows, and maps
partitioning-key values to partition ids.  Routing uses a stable hash (not
Python's randomised ``hash``) so placement is deterministic across runs.
"""

from __future__ import annotations

import zlib
from typing import Any, Sequence

from ..common.errors import SchemaError


def stable_hash(value: Any) -> int:
    """Deterministic non-negative hash of a SQL value."""
    if value is None:
        return 0
    if isinstance(value, bool):
        return int(value) + 1
    if isinstance(value, int):
        return value & 0x7FFFFFFF if value >= 0 else (-value * 2654435761) & 0x7FFFFFFF
    if isinstance(value, float):
        return zlib.crc32(repr(value).encode("utf-8"))
    if isinstance(value, str):
        return zlib.crc32(value.encode("utf-8"))
    raise SchemaError(f"value {value!r} is not hashable for partitioning")


class PartitionMap:
    """Assigns rows and requests to partitions.

    ``partition_of(value)`` is the core routing primitive.  For the Linear
    Road workload the key is the x-way id; round-robin assignment
    (``value % n``) keeps contiguous x-ways spread evenly, matching the
    paper's "we distribute the x-ways evenly across partitions".
    """

    __slots__ = ("num_partitions", "_table_keys", "mode")

    def __init__(self, num_partitions: int = 1, *, mode: str = "hash"):
        if num_partitions < 1:
            raise SchemaError("need at least one partition")
        if mode not in ("hash", "round_robin"):
            raise SchemaError(f"unknown partitioning mode {mode!r}")
        self.num_partitions = num_partitions
        self.mode = mode
        self._table_keys: dict[str, str] = {}

    def set_partition_key(self, table: str, column: str) -> None:
        self._table_keys[table.lower()] = column.lower()

    def partition_key(self, table: str) -> str | None:
        return self._table_keys.get(table.lower())

    def partition_of(self, value: Any) -> int:
        if self.num_partitions == 1:
            return 0
        if self.mode == "round_robin" and isinstance(value, int):
            return value % self.num_partitions
        return stable_hash(value) % self.num_partitions

    def partition_of_row(self, table: str, schema, row: Sequence[Any]) -> int:
        """Partition for a full row of ``table`` (single-partition → 0)."""
        key_col = self._table_keys.get(table.lower())
        if key_col is None or self.num_partitions == 1:
            return 0
        return self.partition_of(row[schema.position(key_col)])

    def all_partitions(self) -> range:
        return range(self.num_partitions)
