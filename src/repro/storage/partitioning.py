"""Hash partitioning of data and workload across cores.

H-Store divides the database horizontally across partitions — one per core —
and runs transactions serially within each partition (paper §3.1).  S-Store
inherits this for its §4.7 multi-core experiments: "S-Store is able to
partition an input stream onto multiple cores.  Each core runs TE's of the
complete workflow in a serial, single-sited fashion for the input stream
partition to which it is assigned."

:class:`PartitionMap` records, per table, which column routes rows, and maps
partitioning-key values to partition ids.  Routing uses a stable hash (not
Python's randomised ``hash``) so placement is deterministic across runs, and
the hash mixes a **type tag** per SQL type so distinct values of different
types (``None`` vs ``0``, ``True`` vs ``1``) do not systematically collapse
onto the same partition.

The map is the coordinator-side half of
:class:`~repro.partition.PartitionedDatabase`: the facade splits ingest
batches and routes keyed calls with it, while each worker process owns a
plain single-partition engine.
"""

from __future__ import annotations

import zlib
from typing import Any, Sequence

from ..common.errors import SchemaError

#: Per-type salts mixed into :func:`stable_hash` so values of different SQL
#: types never share a hash *class* (``None``/``0``, ``False``/``0``,
#: ``True``/``1``/``2`` all used to collide).  Arbitrary odd constants.
_SALT_NONE = 0x7F4A7C15
_SALT_BOOL = 0x2545F491
_SALT_INT = 0x27D4EB2F
_SALT_FLOAT = 0x165667B1
_SALT_STR = 0x1B873593

_MASK = 0x7FFFFFFF  # results are non-negative 31-bit ints


def stable_hash(value: Any) -> int:
    """Deterministic non-negative hash of a SQL value.

    Stable across runs and processes (no ``PYTHONHASHSEED`` dependence),
    and type-tagged: values that compare equal across Python types
    (``True == 1``, ``0 == 0.0 == False``) still hash to *different*
    partitioning classes, because a partition key column has one declared
    type and cross-type collisions would silently hot-spot one partition.
    """
    if value is None:
        return _SALT_NONE
    if isinstance(value, bool):
        return (_SALT_BOOL ^ int(value)) & _MASK
    if isinstance(value, int):
        # murmur3 fmix64: full avalanche, so the partition (hash % n) sees
        # every input bit.  A plain odd-multiply preserves the low bits,
        # and real key streams are exactly the kind of patterned input
        # (all-even ids, strided sequences) that turns low-bit structure
        # into one hot partition.
        h = (value ^ _SALT_INT) & 0xFFFFFFFFFFFFFFFF
        h ^= h >> 33
        h = (h * 0xFF51AFD7ED558CCD) & 0xFFFFFFFFFFFFFFFF
        h ^= h >> 33
        h = (h * 0xC4CEB9FE1A85EC53) & 0xFFFFFFFFFFFFFFFF
        h ^= h >> 33
        return h & _MASK
    if isinstance(value, float):
        return (zlib.crc32(repr(value).encode("utf-8")) ^ _SALT_FLOAT) & _MASK
    if isinstance(value, str):
        return (zlib.crc32(value.encode("utf-8")) ^ _SALT_STR) & _MASK
    raise SchemaError(f"value {value!r} is not hashable for partitioning")


class PartitionMap:
    """Assigns rows and requests to partitions.

    ``partition_of(value)`` is the core routing primitive.  For the Linear
    Road workload the key is the x-way id; round-robin assignment
    (``value % n``) keeps contiguous x-ways spread evenly, matching the
    paper's "we distribute the x-ways evenly across partitions".

    ``default_partition`` controls what happens to rows of tables with no
    registered partition key when the map has more than one partition:

    * an integer (the legacy behaviour was ``0``) routes every unkeyed row
      there — acceptable for replicated lookup tables, a silent hot-spot
      for anything else;
    * ``None`` (**strict mode**, what
      :class:`~repro.partition.PartitionedDatabase` uses) makes
      :meth:`partition_of_row` raise :class:`SchemaError`, so a
      misconfigured table fails loudly instead of funnelling all its
      traffic to partition 0.
    """

    __slots__ = ("num_partitions", "_table_keys", "mode", "default_partition")

    def __init__(
        self,
        num_partitions: int = 1,
        *,
        mode: str = "hash",
        default_partition: int | None = 0,
    ):
        if num_partitions < 1:
            raise SchemaError("need at least one partition")
        if mode not in ("hash", "round_robin"):
            raise SchemaError(f"unknown partitioning mode {mode!r}")
        if default_partition is not None and not (
            0 <= default_partition < num_partitions
        ):
            raise SchemaError(
                f"default_partition {default_partition} out of range for "
                f"{num_partitions} partition(s)"
            )
        self.num_partitions = num_partitions
        self.mode = mode
        self.default_partition = default_partition
        self._table_keys: dict[str, str] = {}

    def set_partition_key(self, table: str, column: str) -> None:
        self._table_keys[table.lower()] = column.lower()

    def partition_key(self, table: str) -> str | None:
        return self._table_keys.get(table.lower())

    def require_partition_key(self, table: str) -> str:
        """The registered key column of ``table``; raises
        :class:`SchemaError` when the map is multi-partition and the table
        has none (strict-mode routing refuses to guess)."""
        key_col = self._table_keys.get(table.lower())
        if key_col is None and self.num_partitions > 1:
            raise SchemaError(
                f"table {table!r} has no partition key registered in a "
                f"{self.num_partitions}-partition map; register one with "
                f"set_partition_key() (or route with an explicit key)"
            )
        return key_col if key_col is not None else ""

    def partition_of(self, value: Any) -> int:
        if self.num_partitions == 1:
            return 0
        if self.mode == "round_robin" and isinstance(value, int):
            return value % self.num_partitions
        return stable_hash(value) % self.num_partitions

    def partition_of_row(self, table: str, schema, row: Sequence[Any]) -> int:
        """Partition for a full row of ``table`` (single-partition → 0).

        An unkeyed table on a multi-partition map routes to
        ``default_partition``; with ``default_partition=None`` (strict
        mode) it raises :class:`SchemaError` instead.
        """
        key_col = self._table_keys.get(table.lower())
        if self.num_partitions == 1:
            return 0
        if key_col is None:
            if self.default_partition is None:
                raise SchemaError(
                    f"table {table!r} has no partition key registered in a "
                    f"{self.num_partitions}-partition map (strict mode: "
                    f"refusing to hot-spot a default partition)"
                )
            return self.default_partition
        return self.partition_of(row[schema.position(key_col)])

    def all_partitions(self) -> range:
        return range(self.num_partitions)
