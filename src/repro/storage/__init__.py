"""Storage substrate: schemas, tables, indexes, catalog, partitioning."""

from .catalog import Catalog
from .index import HashIndex, Index, OrderedIndex
from .partitioning import PartitionMap, stable_hash
from .schema import Column, TableKind, TableSchema, schema
from .table import Table

__all__ = [
    "Catalog",
    "Column",
    "HashIndex",
    "Index",
    "OrderedIndex",
    "PartitionMap",
    "Table",
    "TableKind",
    "TableSchema",
    "schema",
    "stable_hash",
]
