"""The catalog: all tables (public tables, streams, windows) of a partition.

Each partition of the engine owns one :class:`Catalog`.  The catalog is the
unit of checkpointing: :meth:`Catalog.snapshot` captures every table's
physical state, :meth:`Catalog.restore` reloads it.
"""

from __future__ import annotations

from typing import Any, Iterator

from ..common.errors import DuplicateTableError, NoSuchTableError, RecoveryError
from .schema import TableKind, TableSchema
from .table import Table


class Catalog:
    """Name → :class:`Table` mapping with kind-aware helpers."""

    __slots__ = ("_tables",)

    def __init__(self) -> None:
        self._tables: dict[str, Table] = {}

    def create_table(self, schema: TableSchema) -> Table:
        name = schema.name
        if name in self._tables:
            raise DuplicateTableError(f"table {name!r} already exists")
        table = Table(schema)
        self._tables[name] = table
        return table

    def add_table(self, table: Table) -> Table:
        """Register an externally constructed table (streams/windows are
        built by the streaming layer, then registered here)."""
        if table.name in self._tables:
            raise DuplicateTableError(f"table {table.name!r} already exists")
        self._tables[table.name] = table
        return table

    def drop_table(self, name: str) -> None:
        key = name.lower()
        if key not in self._tables:
            raise NoSuchTableError(f"no table {name!r}")
        del self._tables[key]

    def table(self, name: str) -> Table:
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise NoSuchTableError(
                f"no table {name!r} (have: {', '.join(sorted(self._tables)) or 'none'})"
            ) from None

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def tables(self, kind: TableKind | None = None) -> Iterator[Table]:
        for table in self._tables.values():
            if kind is None or table.schema.kind is kind:
                yield table

    def table_names(self, kind: TableKind | None = None) -> list[str]:
        """Sorted table names, optionally restricted to one
        :class:`TableKind` (e.g. just the streams)."""
        if kind is None:
            return sorted(self._tables)
        return sorted(t.name for t in self.tables(kind))

    # -- checkpointing ---------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """Capture the physical state of every table."""
        return {name: table.snapshot_state() for name, table in self._tables.items()}

    def restore(self, snapshot: dict[str, Any], *, strict: bool = False) -> None:
        """Restore table contents from :meth:`snapshot`.

        Tables present in the catalog but absent from the snapshot are
        truncated (they did not exist / were empty at checkpoint time).
        With ``strict=True`` — the recovery path — a snapshot that names
        a table the catalog does not hold raises
        :class:`~repro.common.errors.RecoveryError`: the checkpoint was
        taken against a schema the bootstrap did not re-create, and
        silently dropping its rows would lose committed state.
        """
        if strict:
            unknown = sorted(set(snapshot) - set(self._tables))
            if unknown:
                raise RecoveryError(
                    f"checkpoint references table(s) not present in the "
                    f"catalog: {', '.join(unknown)} — re-create the schema "
                    f"(bootstrap) before recovering"
                )
        for name, table in self._tables.items():
            state = snapshot.get(name)
            if state is None:
                table.truncate()
            else:
                table.load_snapshot_state(state)

    def total_rows(self) -> int:
        return sum(t.row_count() for t in self._tables.values())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Catalog({', '.join(sorted(self._tables))})"
