"""Table schemas: columns, constraints, and table kinds.

A :class:`TableSchema` is an immutable description of a table: ordered
columns, an optional primary key, and UNIQUE constraints.  The streaming
layer reuses the same machinery for streams and windows — per paper §3.2.1
and §3.2.2, *"S-Store implements a stream as a time-varying, H-Store table"*
— distinguishing them only by :class:`TableKind` plus hidden metadata
columns appended by the streaming layer.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from ..common.errors import ConstraintViolation, NoSuchColumnError, SchemaError
from ..common.types import ColumnType, coerce_value


class TableKind(enum.Enum):
    """What role a table plays in the hybrid model (paper §2: three kinds of
    state — public shared tables, windows, and streams)."""

    TABLE = "TABLE"
    STREAM = "STREAM"
    WINDOW = "WINDOW"


#: Columns whose names start with this prefix are engine-managed metadata
#: (batch ids, arrival sequence, window staging state).  They are invisible
#: to ``SELECT *`` and to ``stats()`` column listings, but remain addressable
#: by explicit name — the streaming layer queries them directly.
HIDDEN_COLUMN_PREFIX = "__"


def is_hidden_column(name: str) -> bool:
    """Whether ``name`` is an engine-managed metadata column."""
    return name.startswith(HIDDEN_COLUMN_PREFIX)


@dataclass(frozen=True)
class Column:
    """One column: name, type, nullability, and optional default value."""

    name: str
    ctype: ColumnType
    nullable: bool = True
    default: Any = None

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "a").isalnum():
            raise SchemaError(f"invalid column name {self.name!r}")
        if self.default is not None:
            coerced = coerce_value(self.default, self.ctype, column=self.name)
            object.__setattr__(self, "default", coerced)


class TableSchema:
    """Ordered columns plus key constraints for one table.

    Column names are case-insensitive (normalised to lower case), matching
    the SQL layer's identifier handling.
    """

    __slots__ = ("name", "columns", "primary_key", "unique_keys", "kind", "_positions")

    def __init__(
        self,
        name: str,
        columns: Sequence[Column],
        *,
        primary_key: Sequence[str] = (),
        unique_keys: Sequence[Sequence[str]] = (),
        kind: TableKind = TableKind.TABLE,
    ):
        if not name:
            raise SchemaError("table name must be non-empty")
        if not columns:
            raise SchemaError(f"table {name!r} must have at least one column")
        self.name = name.lower()
        self.columns: tuple[Column, ...] = tuple(
            Column(c.name.lower(), c.ctype, c.nullable, c.default) for c in columns
        )
        self._positions: dict[str, int] = {}
        for i, col in enumerate(self.columns):
            if col.name in self._positions:
                raise SchemaError(f"duplicate column {col.name!r} in table {name!r}")
            self._positions[col.name] = i
        self.primary_key: tuple[str, ...] = tuple(c.lower() for c in primary_key)
        for c in self.primary_key:
            if c not in self._positions:
                raise SchemaError(f"primary key column {c!r} not in table {name!r}")
        self.unique_keys: tuple[tuple[str, ...], ...] = tuple(
            tuple(c.lower() for c in key) for key in unique_keys
        )
        for key in self.unique_keys:
            for c in key:
                if c not in self._positions:
                    raise SchemaError(f"unique key column {c!r} not in table {name!r}")
        self.kind = kind

    # -- lookups ------------------------------------------------------------

    def column_names(self) -> tuple[str, ...]:
        return tuple(c.name for c in self.columns)

    def position(self, column: str) -> int:
        """Index of ``column`` within a row tuple."""
        try:
            return self._positions[column.lower()]
        except KeyError:
            raise NoSuchColumnError(
                f"no column {column!r} in table {self.name!r} "
                f"(have: {', '.join(self._positions)})"
            ) from None

    def has_column(self, column: str) -> bool:
        return column.lower() in self._positions

    def column(self, name: str) -> Column:
        return self.columns[self.position(name)]

    def arity(self) -> int:
        return len(self.columns)

    # -- row handling ---------------------------------------------------------

    def coerce_row(self, values: Sequence[Any]) -> tuple:
        """Validate and coerce a full-width row; applies NOT NULL checks."""
        if len(values) != len(self.columns):
            raise SchemaError(
                f"table {self.name!r} expects {len(self.columns)} values, got {len(values)}"
            )
        out = []
        for col, value in zip(self.columns, values):
            if value is None:
                value = col.default
            if value is None and not col.nullable:
                raise ConstraintViolation(
                    f"column {col.name!r} of table {self.name!r} is NOT NULL"
                )
            coerced = coerce_value(value, col.ctype, column=col.name)
            out.append(coerced)
        return tuple(out)

    def row_from_mapping(self, mapping: dict[str, Any]) -> tuple:
        """Build a full-width row from a column→value mapping; missing
        columns take their default (or NULL)."""
        unknown = set(k.lower() for k in mapping) - set(self._positions)
        if unknown:
            raise NoSuchColumnError(
                f"unknown column(s) {sorted(unknown)} for table {self.name!r}"
            )
        lowered = {k.lower(): v for k, v in mapping.items()}
        values = [lowered.get(col.name, col.default) for col in self.columns]
        return self.coerce_row(values)

    def key_of(self, row: Sequence[Any], key_columns: Iterable[str]) -> tuple:
        """Extract a key tuple from a row."""
        return tuple(row[self._positions[c]] for c in key_columns)

    def declared_columns(self) -> tuple[str, ...]:
        """Column names excluding engine-managed (``__``-prefixed) metadata —
        the schema as the user declared it."""
        return tuple(c.name for c in self.columns if not is_hidden_column(c.name))

    def hidden_columns(self) -> tuple[str, ...]:
        """Engine-managed metadata column names (``__``-prefixed)."""
        return tuple(c.name for c in self.columns if is_hidden_column(c.name))

    def extended(
        self,
        extra: Sequence[Column],
        *,
        kind: TableKind | None = None,
        name: str | None = None,
        drop_constraints: bool = False,
    ) -> "TableSchema":
        """A copy of this schema with extra (hidden metadata) columns appended.

        Used by the streaming layer to add batch-id / ordering / staging
        columns to stream and window tables.  ``drop_constraints`` removes
        the primary key and UNIQUE constraints — window tables hold several
        batches of the same stream, so a key that is unique per batch is
        not unique across the window's contents.
        """
        return TableSchema(
            name if name is not None else self.name,
            tuple(self.columns) + tuple(extra),
            primary_key=() if drop_constraints else self.primary_key,
            unique_keys=() if drop_constraints else self.unique_keys,
            kind=kind if kind is not None else self.kind,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        cols = ", ".join(f"{c.name} {c.ctype.value}" for c in self.columns)
        return f"TableSchema({self.name}: {cols})"


def schema(
    name: str,
    /,
    *cols: tuple,
    primary_key: Sequence[str] = (),
    unique_keys: Sequence[Sequence[str]] = (),
    kind: TableKind = TableKind.TABLE,
) -> TableSchema:
    """Shorthand schema constructor.

    >>> s = schema("votes", ("phone", ColumnType.BIGINT), ("contestant", ColumnType.INTEGER))
    >>> s.column_names()
    ('phone', 'contestant')

    Each positional argument is ``(name, type)`` or ``(name, type, nullable)``.
    """
    columns = []
    for spec in cols:
        if len(spec) == 2:
            columns.append(Column(spec[0], spec[1]))
        elif len(spec) == 3:
            columns.append(Column(spec[0], spec[1], spec[2]))
        else:
            raise SchemaError(f"bad column spec {spec!r}")
    return TableSchema(name, columns, primary_key=primary_key, unique_keys=unique_keys, kind=kind)
