"""Checkpoint files: a consistent cut of one partition's durable state.

A checkpoint is **one** framed :func:`repro.common.serde.encode_record`
line holding:

* ``lsn`` — the command-log sequence number the checkpoint covers:
  every logged command with ``LSN <= lsn`` is reflected in the snapshot,
  none after it (the log is flushed before the snapshot is taken, and
  checkpoints are only taken between transactions);
* ``catalog`` — :meth:`repro.storage.catalog.Catalog.snapshot`: the full
  physical state (rowids, rows, next rowid) of every table, stream, and
  window;
* ``streaming`` — the runtime's watermarks and scheduler positions
  (per-stream ``last_committed``/``next_seq``/GC horizon, the
  ``delivered`` map of per-subscription progress) — everything needed to
  resume the dataflow exactly where the snapshot cut it.

Invariants:

* **Atomic visibility.**  Checkpoints are written to a temp file and
  renamed into place; a crash mid-write leaves either no file or a file
  whose checksum fails.  Recovery selects the newest checkpoint that
  *decodes cleanly* — a torn checkpoint is ignored and the previous one
  (plus a longer log suffix) is used instead.  The previous checkpoint
  is retained for exactly this reason.
* **Checkpoints never invent state.**  Everything in a checkpoint is
  recomputable by replaying the whole log from LSN 0; a checkpoint only
  shortens replay (and permits log truncation up to its LSN).
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Any, Optional

from ..common.clock import SimClock
from ..common.errors import RecoveryError
from ..common.serde import decode_record, encode_record

#: ``checkpoint-<lsn>.ckpt`` — the LSN rides in the name so selection can
#: order candidates without opening them.
CHECKPOINT_PREFIX = "checkpoint-"
CHECKPOINT_SUFFIX = ".ckpt"


def checkpoint_path(directory: str | Path, lsn: int) -> Path:
    return Path(directory) / f"{CHECKPOINT_PREFIX}{lsn:012d}{CHECKPOINT_SUFFIX}"


def _snapshot_rows(catalog_snapshot: dict[str, Any]) -> int:
    return sum(len(state["rows"]) for state in catalog_snapshot.values())


def write_checkpoint(
    path: str | Path,
    payload: dict[str, Any],
    clock: Optional[SimClock] = None,
) -> Path:
    """Write one checkpoint atomically (temp file + rename + fsync).

    ``payload`` must carry ``lsn``, ``catalog``, and ``streaming`` keys.
    Charges ``snapshot_row_us`` per serialised row when a clock is given.
    Returns the final path.
    """
    path = Path(path)
    if clock is not None:
        rows = _snapshot_rows(payload["catalog"])
        if rows:
            clock.charge_cost("snapshot_row", count=rows)
    tmp = path.with_suffix(path.suffix + ".tmp")
    with open(tmp, "w", encoding="utf-8") as f:
        f.write(encode_record(payload) + "\n")
        f.flush()
        os.fsync(f.fileno())
    os.replace(tmp, path)
    return path


def load_checkpoint(path: str | Path, clock: Optional[SimClock] = None) -> dict[str, Any]:
    """Decode one checkpoint file, verifying its checksum.

    Raises :class:`RecoveryError` on any corruption (the caller decides
    whether to fall back to an older checkpoint).  Charges
    ``snapshot_row_us`` per loaded row when a clock is given.
    """
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise RecoveryError(f"cannot read checkpoint {path.name!r}: {exc}") from exc
    payload = decode_record(text.strip())
    for key in ("lsn", "catalog", "streaming"):
        if key not in payload:
            raise RecoveryError(f"checkpoint {path.name!r} is missing {key!r}")
    if clock is not None:
        rows = _snapshot_rows(payload["catalog"])
        if rows:
            clock.charge_cost("snapshot_row", count=rows)
    return payload


def list_checkpoints(directory: str | Path) -> list[Path]:
    """Checkpoint files in ``directory``, newest (highest LSN) first."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    found = [
        p
        for p in directory.iterdir()
        if p.name.startswith(CHECKPOINT_PREFIX) and p.name.endswith(CHECKPOINT_SUFFIX)
    ]
    return sorted(found, reverse=True)


def newest_valid_checkpoint(
    directory: str | Path, clock: Optional[SimClock] = None
) -> Optional[tuple[Path, dict[str, Any]]]:
    """The newest checkpoint that decodes cleanly, or None.

    Corrupt/torn candidates (a crash mid-checkpoint) are skipped — the
    previous checkpoint plus a longer log replay recovers the same state.
    """
    for path in list_checkpoints(directory):
        try:
            return path, load_checkpoint(path, clock)
        except RecoveryError:
            continue
    return None


def prune_checkpoints(directory: str | Path, keep: int = 2) -> list[Path]:
    """Remove all but the ``keep`` newest checkpoints; returns removed
    paths.  Two are kept by default: the newest, plus its predecessor as
    the fallback should the newest turn out torn."""
    removed = []
    for path in list_checkpoints(directory)[keep:]:
        path.unlink(missing_ok=True)
        removed.append(path)
    return removed
