"""Fault tolerance: command logging, checkpoints, weak/strong recovery.

This package is the engine's durability boundary (paper §3.1, §4.4).
Everything below it is memory-only; everything above it can assume that a
:class:`~repro.engine.Database` opened with ``recovery_dir=`` survives
process death with all *committed* state intact.

The design is H-Store **command logging**, not ARIES-style physical
logging:

* the command log records one **logical** record per committed
  transaction — the stored-procedure invocation, the ingested batch, or
  the ad-hoc statements — never physical row images;
* recovery = load the newest valid checkpoint, then **re-execute** the
  logged commands in commit order against deterministic procedures;
* a torn final record (a write cut short by the crash) is detected by
  its checksum and discarded, per the :mod:`repro.common.serde` framing
  contract.

Two replay modes (paper §4.4):

* **strong** recovery replays *every* logged transaction exactly —
  ingests, ad-hoc transactions, procedure calls, and each individual
  workflow delivery — reproducing the pre-crash committed state
  byte-for-byte (``Catalog.snapshot()`` equality).
* **weak** recovery replays only the dataflow's *inputs* (ingested
  batches, ad-hoc transactions, user procedure calls) and lets the
  workflow scheduler regenerate every downstream delivery by re-driving
  the DAG through ``drain()``.  It replays strictly fewer records and
  reaches the same state, provided procedures are deterministic.

Module map:

* :mod:`~repro.recovery.log` — the durable command log with group commit;
* :mod:`~repro.recovery.checkpoint` — checkpoint files and selection;
* :mod:`~repro.recovery.manager` — capture hooks, replay, and the
  open-time recovery protocol.
"""

from .log import CommandLog, scan_log
from .checkpoint import load_checkpoint, newest_valid_checkpoint, write_checkpoint
from .manager import RecoveryManager

__all__ = [
    "CommandLog",
    "RecoveryManager",
    "load_checkpoint",
    "newest_valid_checkpoint",
    "scan_log",
    "write_checkpoint",
]
