"""The durable command log: one framed record per committed command.

Invariants this module maintains (the rest of the recovery subsystem
builds on them):

* **Append-only, commit order.**  Records are appended in the order
  their transactions commit; replaying the file front to back re-executes
  history in the original serial order.  Log sequence numbers (LSNs) are
  positional: the *n*-th data record in a file with header ``base_lsn=B``
  has LSN ``B + n``.
* **Framed and checksummed.**  Every line is one
  :func:`repro.common.serde.encode_record` frame (CRC32 + version +
  payload).  A corrupt *final* line is a write torn by a crash and is
  silently dropped on scan; corruption anywhere else raises
  :class:`~repro.common.errors.RecoveryError` — the log is damaged, not
  merely truncated.
* **Group commit bounds the loss window, not correctness.**  Appends are
  buffered and fsynced in groups (flush when ``group_size`` records or
  ``group_bytes`` bytes are pending).  A crash loses at most the
  unflushed group — a bounded suffix of *acknowledged-but-undurable*
  commands, exactly H-Store's group-commit window.  Everything before
  the last flush is durable.
* **Cost accounting.**  Each buffered append charges
  ``log_group_commit_us`` (the amortised per-transaction logging cost);
  each physical flush charges ``log_write_us`` (the synchronous fsync).
  The ratio ``appended / flushes`` is the group-commit batching factor
  the PR-5 benchmark asserts on.
"""

from __future__ import annotations

import os
import time
from pathlib import Path
from typing import Any, Optional

from ..common.clock import SimClock
from ..common.errors import RecoveryError
from ..common.serde import decode_record, encode_record
from ..obs import DISABLED
from ..obs.tracing import NOOP_SPAN

#: Sentinel op of the one header record that starts every log file.
HEADER_OP = "_header"

#: Default group-commit thresholds (records / bytes pending before fsync).
DEFAULT_GROUP_SIZE = 8
DEFAULT_GROUP_BYTES = 64 * 1024


def _header_record(base_lsn: int) -> dict[str, Any]:
    return {"op": HEADER_OP, "base_lsn": base_lsn}


def scan_log(path: str | Path) -> tuple[int, list[dict[str, Any]], int]:
    """Read a command-log file tolerating a torn tail.

    Returns ``(base_lsn, records, valid_end_offset)`` where ``records``
    are the decoded data records in LSN order (record *i*, 0-based, has
    LSN ``base_lsn + i + 1``) and ``valid_end_offset`` is the byte offset
    just past the last valid line — the point to truncate to before
    appending again.

    Raises :class:`RecoveryError` when the header is missing/invalid or a
    *non-final* record is corrupt (damage, not a torn write).
    A missing or empty file yields ``(0, [], 0)``.
    """
    path = Path(path)
    if not path.exists():
        return 0, [], 0
    data = path.read_bytes()
    if not data:
        return 0, [], 0
    # The writer terminates every record with a newline in the same write;
    # a file not ending in one therefore ends in a torn write — drop that
    # fragment before decoding (even if its checksum would happen to pass,
    # appending after a newline-less line would corrupt the next record).
    if not data.endswith(b"\n"):
        nl = data.rfind(b"\n")
        data = b"" if nl < 0 else data[: nl + 1]
    if not data:
        return 0, [], 0
    records: list[dict[str, Any]] = []
    base_lsn: Optional[int] = None
    offset = 0
    valid_end = 0
    lines = data.split(b"\n")  # trailing b"" after the final newline
    payload_lines = [raw for raw in lines if raw.strip()]
    last_index = len(payload_lines) - 1
    seen = 0
    for raw in lines:
        line_end = offset + len(raw) + 1
        if not raw.strip():
            offset = line_end
            continue
        try:
            record = decode_record(raw.decode("utf-8"))
        except (RecoveryError, UnicodeDecodeError):
            if seen == last_index:
                break  # corrupt final record: torn by the crash, dropped
            raise RecoveryError(
                f"command log {path.name!r}: corrupt record mid-file "
                f"(byte offset {offset}); the log is damaged, not truncated"
            ) from None
        if base_lsn is None:
            if record.get("op") != HEADER_OP:
                raise RecoveryError(
                    f"command log {path.name!r} does not start with a header record"
                )
            base_lsn = int(record["base_lsn"])
        else:
            records.append(record)
        seen += 1
        offset = line_end
        valid_end = offset
    if base_lsn is None:
        return 0, [], 0
    return base_lsn, records, valid_end


class CommandLog:
    """Writer half of the command log (reading is :func:`scan_log`).

    One instance per open :class:`~repro.engine.Database` with recovery
    enabled.  The manager opens it *after* replay, pointing at the byte
    offset past the last valid record, so appends continue the LSN
    sequence; a torn tail has already been truncated away.
    """

    def __init__(
        self,
        path: str | Path,
        clock: SimClock,
        *,
        base_lsn: int = 0,
        existing_records: int = 0,
        group_size: int = DEFAULT_GROUP_SIZE,
        group_bytes: int = DEFAULT_GROUP_BYTES,
    ):
        if group_size < 1:
            raise ValueError("group_size must be >= 1")
        self.path = Path(path)
        self._clock = clock
        self.group_size = group_size
        self.group_bytes = group_bytes
        self.base_lsn = base_lsn
        #: data records durably in the file (header excluded)
        self._flushed_records = existing_records
        self._buffer: list[str] = []
        self._pending_bytes = 0
        self.appended = 0
        self.flushes = 0
        self._closed = False
        #: observability handle; the recovery manager points this at its
        #: database's ``obs`` after opening the writer
        self.obs = DISABLED
        #: perf-counter stamps of buffered appends, for the group-commit
        #: buffer-wait histogram (only populated while obs is enabled)
        self._append_ns: list[int] = []
        fresh = not self.path.exists() or self.path.stat().st_size == 0
        self._file = open(self.path, "a", encoding="utf-8")
        if fresh:
            self._file.write(encode_record(_header_record(base_lsn)) + "\n")
            self._fsync()

    # -- appending -----------------------------------------------------------

    @property
    def lsn(self) -> int:
        """LSN of the newest appended record (durable or buffered)."""
        return self.base_lsn + self._flushed_records + len(self._buffer)

    @property
    def durable_lsn(self) -> int:
        """LSN of the newest *flushed* (crash-surviving) record."""
        return self.base_lsn + self._flushed_records

    def append(self, record: dict[str, Any]) -> int:
        """Buffer one logical command record; returns its LSN.

        The record becomes durable at the next group-commit flush (count
        or byte threshold, an explicit :meth:`flush`, or :meth:`close`).
        Raises :class:`RecoveryError` if the record is not
        JSON-serialisable — command logging requires JSON-safe statement
        parameters and procedure arguments.
        """
        if self._closed:
            raise RecoveryError("command log is closed")
        try:
            line = encode_record(record) + "\n"
        except TypeError as exc:
            raise RecoveryError(
                f"command record is not JSON-serialisable: {exc} — with "
                f"recovery enabled, statement parameters and procedure "
                f"arguments must be JSON-safe values"
            ) from exc
        self._buffer.append(line)
        self._pending_bytes += len(line)
        self.appended += 1
        if self.obs.enabled:
            self._append_ns.append(time.perf_counter_ns())
        self._clock.charge_cost("log_group_commit")
        if len(self._buffer) >= self.group_size or self._pending_bytes >= self.group_bytes:
            self.flush()
        return self.lsn

    def flush(self) -> None:
        """Write and fsync every buffered record (one batched fsync).

        When observability is on, the flush is a ``log.fsync`` span and
        each record's buffered dwell time (append → this flush) feeds the
        ``log.buffer_wait`` histogram — the group-commit latency the
        paper trades against throughput.
        """
        if not self._buffer:
            return
        obs = self.obs
        records = len(self._buffer)
        pending = self._pending_bytes
        with (
            obs.span("log.fsync", records=records, bytes=pending)
            if obs.enabled
            else NOOP_SPAN
        ):
            self._file.write("".join(self._buffer))
            self._flushed_records += records
            self._buffer.clear()
            self._pending_bytes = 0
            self._fsync()
        if self._append_ns:
            now_ns = time.perf_counter_ns()
            for t0 in self._append_ns:
                obs.observe("log.buffer_wait", (now_ns - t0) / 1000.0)
            self._append_ns.clear()

    def _fsync(self) -> None:
        self._file.flush()
        os.fsync(self._file.fileno())
        self._clock.charge_cost("log_write")
        self.flushes += 1

    def close(self) -> None:
        """Flush and close; further appends raise :class:`RecoveryError`."""
        if self._closed:
            return
        self.flush()
        self._file.close()
        self._closed = True

    # -- truncation ----------------------------------------------------------

    def truncate_to(self, new_base_lsn: int) -> None:
        """Drop every record at or below ``new_base_lsn`` (checkpoint
        truncation): the file is atomically replaced by a fresh log whose
        header carries the new base.  Callers must :meth:`flush` first so
        the checkpoint's LSN is well-defined."""
        if self._buffer:
            self.flush()
        tmp = self.path.with_suffix(".tmp")
        with open(tmp, "w", encoding="utf-8") as f:
            f.write(encode_record(_header_record(new_base_lsn)) + "\n")
            f.flush()
            os.fsync(f.fileno())
        self._file.close()
        os.replace(tmp, self.path)
        self.base_lsn = new_base_lsn
        self._flushed_records = 0
        self._file = open(self.path, "a", encoding="utf-8")

    # -- introspection -------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        return {
            "base_lsn": self.base_lsn,
            "lsn": self.lsn,
            "durable_lsn": self.durable_lsn,
            "appended": self.appended,
            "pending": len(self._buffer),
            "flushes": self.flushes,
            "group_size": self.group_size,
            "group_bytes": self.group_bytes,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CommandLog({self.path.name!r}, lsn={self.lsn}, "
            f"pending={len(self._buffer)}/{self.group_size})"
        )
