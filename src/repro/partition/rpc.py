"""Framed RPC between the coordinator and its partition workers.

The wire protocol is deliberately tiny: every message — request or reply —
is one :func:`repro.common.serde.encode_record` line (versioned JSON with a
CRC32), prefixed by a 4-byte big-endian length.  Reusing the command-log
framing means the pipe carries exactly the value domain the engine already
guarantees is serialisable (JSON-safe SQL values), the checksum catches a
torn or corrupted frame, and there is no pickle on the wire — a worker
cannot be made to execute arbitrary code by a malformed frame.

Messages are dicts.  A request carries ``{"op": ..., ...operands}``; a
reply is either ``{"ok": True, "value": ...}`` or
``{"ok": False, "error": "<class name>", "message": "..."}``.  Error
replies are re-raised coordinator-side as the *same* exception class the
worker raised (resolved by name against :mod:`repro.common.errors`, falling
back to :class:`~repro.common.errors.PartitionError` for anything foreign),
with the message prefixed ``[partition N]`` so a failure names its origin.

Replies are strictly FIFO per worker: a worker processes requests one at a
time, in arrival order, and the coordinator matches replies to requests by
position.  That ordering is what makes pipelining safe — the coordinator
may post many ingest requests before collecting any replies.
"""

from __future__ import annotations

import socket
import struct
from typing import Any

from ..common import errors as _errors
from ..common.errors import PartitionError
from ..common.serde import decode_record, encode_record
from ..sql.executor import ResultSet

_HEADER = struct.Struct(">I")

#: name → class for every public error; foreign names fall back to
#: :class:`PartitionError` when a reply is re-raised coordinator-side.
ERROR_CLASSES: dict[str, type] = {
    name: obj
    for name, obj in vars(_errors).items()
    if isinstance(obj, type) and issubclass(obj, _errors.ReproError)
}


class Channel:
    """One framed, ordered, bidirectional message pipe over a socket.

    ``send`` encodes fully before writing, so an unserialisable record
    raises without emitting a partial frame; ``recv`` reads exact frame
    boundaries and verifies the serde checksum.  A peer that hangs up
    raises :class:`PartitionError` (never a bare ``OSError``)."""

    __slots__ = ("_sock",)

    def __init__(self, sock: socket.socket):
        self._sock = sock

    def send(self, record: dict[str, Any]) -> None:
        line = encode_record(record).encode("utf-8")
        try:
            self._sock.sendall(_HEADER.pack(len(line)) + line)
        except OSError as exc:
            raise PartitionError(f"worker pipe broken during send: {exc}") from exc

    def recv(self) -> dict[str, Any]:
        (length,) = _HEADER.unpack(self._recv_exact(_HEADER.size))
        return decode_record(self._recv_exact(length).decode("utf-8"))

    def _recv_exact(self, n: int) -> bytes:
        chunks: list[bytes] = []
        remaining = n
        while remaining:
            try:
                chunk = self._sock.recv(remaining)
            except OSError as exc:
                raise PartitionError(f"worker pipe broken during recv: {exc}") from exc
            if not chunk:
                raise PartitionError(
                    "worker hung up (connection closed"
                    + (" mid-frame)" if len(chunks) or remaining != n else ")")
                )
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - close is best-effort
            pass


# ---------------------------------------------------------------------------
# Reply construction / consumption
# ---------------------------------------------------------------------------

def value_reply(value: Any) -> dict[str, Any]:
    return {"ok": True, "value": encode_value(value)}


def error_reply(exc: BaseException) -> dict[str, Any]:
    return {"ok": False, "error": type(exc).__name__, "message": str(exc)}


def raise_reply_error(reply: dict[str, Any], partition_id: int) -> None:
    """Re-raise a worker's error reply as its original exception class."""
    cls = ERROR_CLASSES.get(reply.get("error", ""), PartitionError)
    raise cls(f"[partition {partition_id}] {reply.get('message', 'unknown worker error')}")


# ---------------------------------------------------------------------------
# Value codec: everything on the wire is JSON; the one engine type that
# crosses it — ResultSet — gets an explicit marker envelope.
# ---------------------------------------------------------------------------

_RS_MARKER = "__result_set__"


def encode_value(value: Any) -> Any:
    if isinstance(value, ResultSet):
        return {
            _RS_MARKER: 1,
            "columns": list(value.columns),
            "rows": [list(row) for row in value.rows],
            "rowcount": value.rowcount,
        }
    return value


def decode_value(value: Any) -> Any:
    if isinstance(value, dict) and value.get(_RS_MARKER) == 1:
        return ResultSet(
            value["columns"],
            [tuple(row) for row in value["rows"]],
            value["rowcount"],
        )
    return value
