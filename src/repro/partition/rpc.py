"""Framed RPC between the coordinator and its partition workers.

The wire protocol is deliberately tiny: every message — request or reply —
is one frame as defined by :mod:`repro.common.framing` (a
:func:`repro.common.serde.encode_record` line, versioned JSON with a CRC32,
prefixed by a 4-byte big-endian length).  Sharing the framing with the
command log and the network front door means the pipe carries exactly the
value domain the engine already guarantees is serialisable (JSON-safe SQL
values), the checksum catches a torn or corrupted frame, and there is no
pickle on the wire — a worker cannot be made to execute arbitrary code by
a malformed frame.

Messages are dicts.  A request carries ``{"op": ..., ...operands}``; a
reply is either ``{"ok": True, "value": ...}`` or
``{"ok": False, "error": "<class name>", "message": "..."}``.  Error
replies are re-raised coordinator-side as the *same* exception class the
worker raised (resolved by name against :mod:`repro.common.errors`, falling
back to :class:`~repro.common.errors.PartitionError` for anything foreign),
with the message prefixed ``[partition N]`` so a failure names its origin.

Replies are strictly FIFO per worker: a worker processes requests one at a
time, in arrival order, and the coordinator matches replies to requests by
position.  That ordering is what makes pipelining safe — the coordinator
may post many ingest requests before collecting any replies.
"""

from __future__ import annotations

import socket
from typing import Any

from ..common.errors import ERROR_CLASSES, PartitionError
from ..common.framing import (
    ConnectionClosedError,
    FrameTooLargeError,
    ProtocolError,
    recv_frame,
    send_frame,
)
from ..sql.executor import ResultSet

__all__ = [
    "ERROR_CLASSES",
    "Channel",
    "value_reply",
    "error_reply",
    "raise_reply_error",
    "encode_value",
    "decode_value",
]


class Channel:
    """One framed, ordered, bidirectional message pipe over a socket.

    A thin wrapper over :mod:`repro.common.framing` that maps every wire
    failure — peer hang-up, torn/oversized/corrupt frame — to
    :class:`PartitionError` (never a bare ``OSError``), since for the
    coordinator any such failure means one thing: the worker is gone."""

    __slots__ = ("_sock",)

    def __init__(self, sock: socket.socket):
        self._sock = sock

    def send(self, record: dict[str, Any]) -> None:
        try:
            send_frame(self._sock, record)
        except ConnectionClosedError as exc:
            raise PartitionError(f"worker pipe broken during send: {exc}") from exc

    def recv(self) -> dict[str, Any]:
        try:
            record, _ = recv_frame(self._sock)
        except ConnectionClosedError as exc:
            raise PartitionError(f"worker hung up ({exc})") from exc
        except (FrameTooLargeError, ProtocolError) as exc:
            raise PartitionError(f"bad frame from worker: {exc}") from exc
        return record

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - close is best-effort
            pass


# ---------------------------------------------------------------------------
# Reply construction / consumption
# ---------------------------------------------------------------------------

def value_reply(value: Any) -> dict[str, Any]:
    return {"ok": True, "value": encode_value(value)}


def error_reply(exc: BaseException) -> dict[str, Any]:
    return {"ok": False, "error": type(exc).__name__, "message": str(exc)}


def raise_reply_error(reply: dict[str, Any], partition_id: int) -> None:
    """Re-raise a worker's error reply as its original exception class.

    Foreign class names fall back to :class:`PartitionError`."""
    cls = ERROR_CLASSES.get(reply.get("error", ""), PartitionError)
    raise cls(f"[partition {partition_id}] {reply.get('message', 'unknown worker error')}")


# ---------------------------------------------------------------------------
# Value codec: everything on the wire is JSON; the one engine type that
# crosses it — ResultSet — gets an explicit marker envelope.
# ---------------------------------------------------------------------------

_RS_MARKER = "__result_set__"


def encode_value(value: Any) -> Any:
    if isinstance(value, ResultSet):
        return {
            _RS_MARKER: 1,
            "columns": list(value.columns),
            "rows": [list(row) for row in value.rows],
            "rowcount": value.rowcount,
        }
    return value


def decode_value(value: Any) -> Any:
    if isinstance(value, dict) and value.get(_RS_MARKER) == 1:
        return ResultSet(
            value["columns"],
            [tuple(row) for row in value["rows"]],
            value["rowcount"],
        )
    return value
