"""Multi-core scale-out (paper §4.7): partitioned execution.

:class:`PartitionedDatabase` fronts N single-partition engines — one
worker process each — routing ingest batches and keyed transactions by
partition column and running cross-partition transactions under an
ordered-commit protocol.  See :mod:`repro.partition.coordinator` for the
routing rules and protocol, :mod:`repro.partition.worker` for the worker
loop, and :mod:`repro.partition.rpc` for the wire format.
"""

from .coordinator import PartitionedDatabase, iter_partitions
from .worker import InlineWorker, PartitionInfo, WorkerServer

__all__ = [
    "InlineWorker",
    "PartitionInfo",
    "PartitionedDatabase",
    "WorkerServer",
    "iter_partitions",
]
