"""One partition's worker: a single-partition engine behind an RPC loop.

Each worker owns a plain :class:`~repro.engine.Database` — the serial,
single-sited engine of paper §3.1 — and executes requests one at a time in
arrival order, so the per-partition serial execution model is preserved by
construction: the RPC loop *is* the partition's transaction queue.

The same :class:`WorkerServer` dispatch runs in two containers:

* :func:`worker_main` — the ``multiprocessing`` child entry point, serving
  a :class:`~repro.partition.rpc.Channel` until ``shutdown`` (real
  parallelism, used by default and by the scaling benchmark);
* :class:`InlineWorker` — the same server in-process, with requests and
  replies still round-tripping through the serde framing so tests exercise
  the exact wire value-domain without paying process startup.

Cross-partition transactions appear here as the ``xp_*`` op family: the
coordinator opens one explicit transaction per participant (``xp_begin``),
streams fragments into it (``xp_exec`` / ``xp_execmany`` / ``xp_call`` —
the last via :meth:`~repro.engine.database.Database.call_in_txn`), then
commits every participant in global order (``xp_commit``) or aborts them
all (``xp_abort``).  ``inject_fault`` arms a one-shot failure on a named
op so tests can tear the protocol at any point and observe the abort-all /
partial-commit behaviour.
"""

from __future__ import annotations

import socket
from collections import deque
from dataclasses import dataclass
from typing import Any, Optional

from ..common.errors import PartitionError
from ..common.framing import TRACE_KEY
from ..common.serde import decode_record, encode_record
from ..engine.database import Database
from ..obs import observability
from ..storage.partitioning import PartitionMap
from .rpc import Channel, encode_value, error_reply, value_reply

#: ops that never get a ``worker.<op>`` span (control plane / the span
#: drain itself — spanning ``obs_spans`` would refill what it empties)
_UNTRACED_OPS = frozenset(
    {"stats", "schema", "obs_spans", "ping", "shutdown", "inject_fault",
     "snapshot", "close"}
)


@dataclass(frozen=True)
class PartitionInfo:
    """What one worker knows about its place in the partitioned database.

    Passed to the deploy function as its second argument so bootstrap code
    can seed only the reference rows this partition :meth:`owns` — e.g.
    pre-populating a keyed tally table without duplicating every row on
    every partition."""

    partition_id: int
    num_partitions: int
    mode: str = "hash"

    @property
    def name(self) -> str:
        """Stable directory-safe name (``p000``, ``p001``, ...) — also the
        per-partition ``recovery_dir`` subdirectory."""
        return f"p{self.partition_id:03d}"

    def partition_of(self, value: Any) -> int:
        return PartitionMap(self.num_partitions, mode=self.mode).partition_of(value)

    def owns(self, value: Any) -> bool:
        """True when rows keyed by ``value`` route to this partition."""
        return self.partition_of(value) == self.partition_id


def _build_database(deploy, part: PartitionInfo, options: dict[str, Any]) -> Database:
    bootstrap = None if deploy is None else (lambda db: deploy(db, part))
    return Database(
        recovery_dir=options.get("recovery_dir"),
        recovery=options.get("recovery", "strong"),
        group_commit=options.get("group_commit", 8),
        bootstrap=bootstrap,
        # the coordinator ships the obs level as a string; spans this
        # worker records are labelled with its partition name
        obs=observability(options.get("obs"), process=part.name),
    )


class WorkerServer:
    """Request dispatch for one partition (shared by process and inline)."""

    def __init__(self, db: Database, part: PartitionInfo):
        self.db = db
        self.part = part
        self._txn = None  # the open cross-partition transaction, if any
        self._armed_fault: Optional[dict[str, Any]] = None

    def handle(self, request: dict[str, Any]) -> Any:
        op = str(request.get("op"))
        ctx = request.pop(TRACE_KEY, None)
        fault = self._armed_fault
        if fault is not None and fault["op"] == op:
            self._armed_fault = None
            raise PartitionError(fault.get("message") or f"injected fault on {op!r}")
        fn = getattr(self, f"_op_{op}", None)
        if fn is None:
            raise PartitionError(f"unknown worker op {op!r}")
        obs = self.db.obs
        if not obs.enabled or op in _UNTRACED_OPS:
            return fn(request)
        # adopt the coordinator's rpc.<op> span as parent, so this
        # worker's spans stitch into the coordinator-side trace
        with obs.tracer.activate(ctx):
            with obs.span(f"worker.{op}"):
                return fn(request)

    # -- plumbing ------------------------------------------------------------

    def _op_ping(self, request) -> str:
        return "pong"

    def _op_shutdown(self, request) -> None:
        return None

    def _op_inject_fault(self, request) -> None:
        """Arm a one-shot failure: the next request whose op matches
        ``fault_op`` raises :class:`PartitionError` before executing."""
        self._armed_fault = {
            "op": str(request["fault_op"]),
            "message": request.get("message"),
        }

    def _op_schema(self, request) -> dict[str, Any]:
        return {
            t.name: {
                "columns": list(t.schema.declared_columns()),
                "kind": t.schema.kind.value,
            }
            for t in self.db.catalog.tables()
        }

    # -- single-partition work (each request is its own transaction) ---------

    def _op_execute(self, request) -> Any:
        return self.db.execute(request["sql"], request.get("params") or ())

    def _op_executemany(self, request) -> int:
        return self.db.executemany(request["sql"], request.get("rows") or [])

    def _op_call(self, request) -> Any:
        return self.db.call(request["name"], *(request.get("args") or []))

    def _op_ingest(self, request) -> list[int]:
        return self.db.ingest(
            request["stream"], request["rows"], request.get("batch_id")
        )

    def _op_explain(self, request) -> dict[str, Any]:
        return self.db.explain(request["sql"], request.get("params") or ())

    def _op_analyze(self, request) -> dict[str, int]:
        return self.db.analyze(request.get("table"))

    def _op_drain(self, request) -> int:
        return self.db.drain()

    def _op_stats(self, request) -> Any:
        section = request.get("section")
        if section is not None:
            return self.db.stats(section=section)
        stats = self.db.stats()
        stats["partition"] = self.part.partition_id
        return stats

    def _op_obs_spans(self, request) -> list:
        """Take this worker's buffered trace spans (the coordinator's
        :meth:`~repro.partition.coordinator.PartitionedDatabase.trace_spans`
        collects them)."""
        obs = self.db.obs
        if not obs.tracing:
            return []
        return obs.tracer.drain()

    def _op_snapshot(self, request) -> dict[str, Any]:
        return self.db.catalog.snapshot()

    def _op_flush(self, request) -> None:
        self.db.flush_log()

    def _op_checkpoint(self, request) -> str:
        return str(self.db.checkpoint())

    def _op_close(self, request) -> None:
        self.db.close()

    # -- cross-partition transaction fragments (ordered commit) -------------

    def _require_xp(self):
        if self._txn is None:
            raise PartitionError(
                "no cross-partition transaction is open on this partition "
                "(protocol error: xp_begin must come first)"
            )
        return self._txn

    def _op_xp_begin(self, request) -> int:
        if self._txn is not None:
            raise PartitionError(
                f"cross-partition transaction {self._txn.txn_id} is already "
                f"open (the coordinator runs at most one at a time)"
            )
        self._txn = self.db.begin()
        return self._txn.txn_id

    def _op_xp_exec(self, request) -> Any:
        self._require_xp()
        return self.db.execute(request["sql"], request.get("params") or ())

    def _op_xp_execmany(self, request) -> int:
        self._require_xp()
        return self.db.executemany(request["sql"], request.get("rows") or [])

    def _op_xp_call(self, request) -> Any:
        self._require_xp()
        return self.db.call_in_txn(request["name"], *(request.get("args") or []))

    def _op_xp_commit(self, request) -> int:
        txn = self._require_xp()
        self._txn = None
        txn.commit()
        # workflow deliveries scheduled by the fragment's emits run now,
        # still inside this partition's serial request queue
        return self.db.drain()

    def _op_xp_abort(self, request) -> None:
        txn = self._txn
        self._txn = None
        if txn is not None and txn.is_active:
            txn.abort()


def worker_main(sock: socket.socket, deploy, part: PartitionInfo, options: dict[str, Any]) -> None:
    """Child-process entry point: open the partition's engine, report
    readiness (or the bootstrap/recovery error), then serve until
    ``shutdown`` or the coordinator hangs up."""
    channel = Channel(sock)
    try:
        db = _build_database(deploy, part, options)
    except BaseException as exc:
        try:
            channel.send(error_reply(exc))
        finally:
            channel.close()
        return
    channel.send(value_reply("ready"))
    server = WorkerServer(db, part)
    while True:
        try:
            request = channel.recv()
        except PartitionError:
            break  # coordinator went away; nothing left to serve
        try:
            reply = value_reply(server.handle(request))
        except Exception as exc:
            reply = error_reply(exc)
        try:
            channel.send(reply)
        except Exception:
            break
        if request.get("op") == "shutdown":
            break
    channel.close()


class InlineWorker:
    """The worker loop without the process: same dispatch, same framing.

    Every request and reply still round-trips through
    :func:`~repro.common.serde.encode_record`, so an unserialisable value
    fails identically in both modes — inline tests cannot pass on values
    that would die on the real wire.  Replies queue FIFO, preserving the
    coordinator's pipelined send/collect discipline."""

    def __init__(self, deploy, part: PartitionInfo, options: dict[str, Any]):
        self.part = part
        self.db = _build_database(deploy, part, options)
        self.server = WorkerServer(self.db, part)
        self._replies: deque[dict[str, Any]] = deque()
        self.alive = True

    def send(self, request: dict[str, Any]) -> None:
        if not self.alive:
            raise PartitionError(f"partition {self.part.partition_id} worker was killed")
        request = decode_record(encode_record(request))
        try:
            value = self.server.handle(request)
            reply = decode_record(encode_record({"ok": True, "value": encode_value(value)}))
        except Exception as exc:
            reply = error_reply(exc)
        self._replies.append(reply)

    def recv(self) -> dict[str, Any]:
        if not self._replies:
            raise PartitionError(
                f"partition {self.part.partition_id}: no pending reply "
                f"(coordinator/worker bookkeeping out of sync)"
            )
        return self._replies.popleft()

    def kill(self) -> None:
        """Simulate a crash: drop the engine without close/flush.  Work
        past the last ``flush_log()`` group-commit boundary is lost, like
        a real process kill."""
        self.alive = False
        self._replies.clear()
        self.db = None
        self.server = None
