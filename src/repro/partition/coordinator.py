""":class:`PartitionedDatabase`: N serial engines behind one facade.

The paper's §4.7 scale-out model: the input stream is partitioned across
cores, each core running transaction executions "in a serial, single-sited
fashion" for its slice.  This module is the coordinator half — it owns N
worker processes (one single-partition :class:`~repro.engine.Database`
each, see :mod:`repro.partition.worker`), routes work to them with a
strict-mode :class:`~repro.storage.partitioning.PartitionMap`, and runs
the ordered-commit protocol for the transactions that cannot be confined
to one partition.

Routing rules
=============
* ``ingest(stream, rows)`` — the batch splits by the stream's registered
  partition column; each partition applies its sub-batch as one local
  transaction on its **own** batch-id sequence.  Sub-batches are posted
  pipelined (bounded by ``max_inflight`` per worker), so ingest throughput
  scales with workers instead of serialising on round trips.
* ``call(name, *args, key=...)`` / ``execute(sql, params, key=...)`` —
  an explicit ``key`` routes the whole request to ``partition_of(key)``
  as an ordinary single-partition transaction (the fast path; the paper's
  single-sited case).
* ``execute`` without a key classifies the statement: ``SELECT`` fans out
  to every partition and returns the **union** of per-partition results
  (no cross-partition ordering or aggregate merge — aggregates come back
  one row per partition); ``UPDATE``/``DELETE`` run as a cross-partition
  transaction; ``INSERT`` without a key is refused (broadcasting it would
  duplicate the row on every partition); DDL broadcasts to every
  partition auto-commit (schema is deployment, not data).
* ``call`` without a key runs the procedure body as a fragment on *every*
  partition inside one cross-partition transaction (via
  :meth:`~repro.engine.database.Database.call_in_txn`) and returns the
  per-partition results.

Ordered commit
==============
A cross-partition transaction gets a global id and runs in two phases,
both in ascending partition order: **prepare** (open an explicit
transaction on each participant and execute its fragment; any failure →
abort-all, nothing committed anywhere) and **commit** (commit each
participant in the same global order).  Because every worker executes
serially and the coordinator runs one cross-partition transaction at a
time, the global commit order is the serialisation order.  A participant
that fails *during the commit phase* — only possible via fault injection
or a worker crash, since prepare already validated the fragments — leaves
the earlier participants committed; the coordinator then raises
:class:`~repro.common.errors.PartitionError` naming exactly which
partitions committed, so the damage is diagnosable.

Durability
==========
With ``recovery_dir=``, partition *i* logs to ``<recovery_dir>/p00i``.
Reopening a :class:`PartitionedDatabase` on the same directory recovers
every partition independently (same deploy-then-replay contract as the
single engine).  Note the per-partition atomicity grain of ingest: each
partition's sub-batch is its own logged transaction, so a crash can
persist one partition's half of an input batch and not another's — this
is the paper's model (atomic batches are per-stream-partition), and
``flush_log()`` is the all-partitions durability boundary.
"""

from __future__ import annotations

import multiprocessing
import socket
from collections import Counter, defaultdict, deque
from pathlib import Path
from typing import Any, Iterator, Mapping, Optional, Sequence

from ..common.errors import (
    BatchOrderError,
    NoSuchTableError,
    PartitionError,
    SchemaError,
)
from ..common.framing import TRACE_KEY
from ..obs import MetricsRegistry, observability
from ..obs.tracing import NOOP_SPAN
from ..sql.executor import ResultSet
from ..storage.partitioning import PartitionMap
from .rpc import Channel, decode_value, raise_reply_error
from .worker import InlineWorker, PartitionInfo, worker_main

#: control-plane ops whose RPCs are not worth a span (and whose traces
#: would pollute the ring the ``obs_spans`` op itself drains)
_UNTRACED_RPC = frozenset(
    {"stats", "schema", "obs_spans", "ping", "shutdown", "inject_fault",
     "snapshot", "close"}
)


def _safe_section(thunk) -> Any:
    """Same degrade-to-``{"error": ...}`` contract as the engine's
    registered stats sections (see ``Database.add_stats_section``)."""
    try:
        return thunk()
    except Exception as exc:  # noqa: BLE001 - stats must never raise
        return {"error": f"{type(exc).__name__}: {exc}"}


class _ProcessHandle:
    """Coordinator-side end of one worker process."""

    kind = "process"

    def __init__(self, deploy, part: PartitionInfo, options: dict[str, Any]):
        ctx = multiprocessing.get_context("fork")
        parent, child = socket.socketpair()
        self.process = ctx.Process(
            target=worker_main,
            args=(child, deploy, part, options),
            daemon=True,
            name=f"repro-{part.name}",
        )
        self.process.start()
        child.close()
        self.channel = Channel(parent)

    def ready(self, partition_id: int) -> None:
        reply = self.channel.recv()
        if not reply.get("ok"):
            self.process.join(timeout=5)
            raise_reply_error(reply, partition_id)

    def send(self, request: dict[str, Any]) -> None:
        self.channel.send(request)

    def recv(self) -> dict[str, Any]:
        return self.channel.recv()

    def join(self) -> None:
        self.channel.close()
        self.process.join(timeout=10)

    def kill(self) -> None:
        self.process.terminate()
        self.process.join(timeout=10)
        self.channel.close()


class _InlineHandle:
    """Same interface over an in-process worker (tests, 1-core boxes)."""

    kind = "inline"

    def __init__(self, deploy, part: PartitionInfo, options: dict[str, Any]):
        self.worker = InlineWorker(deploy, part, options)

    def ready(self, partition_id: int) -> None:
        pass

    def send(self, request: dict[str, Any]) -> None:
        self.worker.send(request)

    def recv(self) -> dict[str, Any]:
        return self.worker.recv()

    def join(self) -> None:
        pass

    def kill(self) -> None:
        self.worker.kill()


def _leading_keyword(sql: str) -> str:
    stripped = sql.lstrip()
    return stripped.split(None, 1)[0].lower() if stripped else ""


def _value_sort_key(v: Any) -> tuple:
    if v is None:
        return (0, 0)
    if isinstance(v, (int, float)):  # bools are ints; numerics compare numerically
        return (1, v)
    return (2, str(v))


def _row_sort_key(row: Sequence[Any]) -> tuple:
    """Total order over heterogeneous SQL rows (None/bool/int/float/str)."""
    return tuple(_value_sort_key(v) for v in row)


class PartitionedDatabase:
    """One logical database over ``num_partitions`` serial engines.

    Args:
        num_partitions: worker count (one engine, one process each).
        deploy: ``fn(db, part)`` run on every worker at startup (and again
            before recovery) — all DDL, procedure/trigger registrations,
            and reference-data seeding belong here.  ``part`` is the
            worker's :class:`~repro.partition.worker.PartitionInfo`; use
            ``part.owns(key)`` to seed only locally-routed rows.
        partition_keys: ``{table_or_stream: column}`` routing columns,
            registered into a **strict** map — ingest into an unkeyed
            stream on a multi-partition database raises
            :class:`~repro.common.errors.SchemaError` instead of
            hot-spotting partition 0.
        mode: ``"hash"`` (type-tagged stable hash) or ``"round_robin"``
            (``key % n`` for ints — the paper's x-way distribution).
        workers: ``"process"`` (real parallelism, the default) or
            ``"inline"`` (same wire discipline, no processes — for tests
            and single-core environments).
        recovery_dir: per-partition durability root; partition *i* uses
            ``<recovery_dir>/p00i``.
        recovery: ``"strong"`` or ``"weak"`` (forwarded to every worker).
        group_commit: per-worker command-log group-commit size.
        max_inflight: pipelining bound — unanswered requests allowed per
            worker before ingest blocks collecting replies.
        obs: observability spec (``None``/``"off"``/``"metrics"``/
            ``"full"`` or an :class:`~repro.obs.Observability` for the
            coordinator side).  Workers get their own registry/tracer
            (labelled ``p000``, ``p001``, ...) at the same level; the
            coordinator's ``stats()["obs"]`` section merges all of them,
            and with tracing on, RPC trace context rides each request so
            worker spans stitch into the coordinator's traces
            (:meth:`trace_spans` collects the whole set).
    """

    def __init__(
        self,
        num_partitions: int = 2,
        deploy=None,
        *,
        partition_keys: Optional[Mapping[str, str]] = None,
        mode: str = "hash",
        workers: str = "process",
        recovery_dir: Optional[str | Path] = None,
        recovery: str = "strong",
        group_commit: int = 8,
        max_inflight: int = 32,
        obs=None,
    ):
        if workers not in ("process", "inline"):
            raise ValueError(f"workers must be 'process' or 'inline', not {workers!r}")
        # strict map: unkeyed tables fail loudly instead of hot-spotting
        self.partition_map = PartitionMap(num_partitions, mode=mode, default_partition=None)
        for table, column in (partition_keys or {}).items():
            self.partition_map.set_partition_key(table, column)
        self.num_partitions = num_partitions
        self.workers = workers
        self._max_inflight = max_inflight
        #: routing / protocol tallies, reported by :meth:`stats`
        self.routing: Counter[str] = Counter()
        #: extra :meth:`stats` sections contributed by attached subsystems
        #: (same contract as ``Database.add_stats_section``)
        self._stats_sections: dict[str, Any] = {}
        self.obs = observability(obs, process="coord")
        self._stats_sections["obs"] = self._obs_section
        self._next_xid = 1
        self._closed = False
        handle_cls = _InlineHandle if workers == "inline" else _ProcessHandle
        root = Path(recovery_dir) if recovery_dir is not None else None
        # the obs level crosses the fork as a string; each worker builds
        # its own registry/tracer labelled with its partition name
        worker_obs = (
            "full" if self.obs.tracing else "metrics" if self.obs.enabled else None
        )
        self._handles: list[Any] = []
        self._pending: list[deque] = []
        try:
            for pid in range(num_partitions):
                part = PartitionInfo(pid, num_partitions, mode)
                options = {
                    "recovery_dir": str(root / part.name) if root is not None else None,
                    "recovery": recovery,
                    "group_commit": group_commit,
                    "obs": worker_obs,
                }
                self._handles.append(handle_cls(deploy, part, options))
                self._pending.append(deque())
            for pid, handle in enumerate(self._handles):
                handle.ready(pid)
        except BaseException:
            for handle in self._handles:
                handle.kill()
            raise
        self._schema = self._fetch_schema()

    # -- request plumbing (FIFO tags per worker; supports pipelining) --------

    def _fetch_schema(self) -> dict[str, dict[str, Any]]:
        raw = self._request(0, {"op": "schema"})
        return {name.lower(): meta for name, meta in raw.items()}

    def _post(self, pid: int, request: dict[str, Any], *, collect: bool = False) -> dict:
        tag = {"collect": collect, "value": None, "done": False, "span": None}
        obs = self.obs
        if obs.enabled:
            op = request.get("op")
            if op not in _UNTRACED_RPC:
                # detached: pipelined RPCs finish out of creation order
                span = obs.tracer.start(
                    f"rpc.{op}", {"partition": pid}, detached=True
                )
                tag["span"] = span
                if obs.tracing:
                    request[TRACE_KEY] = span.context()
        self._handles[pid].send(request)
        self._pending[pid].append(tag)
        return tag

    def _pump(self, pid: int) -> None:
        """Receive one reply for worker ``pid``, resolving its oldest tag.
        An error reply raises here — asynchronous (pipelined) failures
        surface at the next synchronisation point."""
        reply = self._handles[pid].recv()
        tag = self._pending[pid].popleft()
        tag["done"] = True
        span = tag["span"]
        if span is not None:
            span.finish(ok=bool(reply.get("ok")))
        if not reply.get("ok"):
            raise_reply_error(reply, pid)
        if tag["collect"]:
            tag["value"] = decode_value(reply.get("value"))

    def _request(self, pid: int, request: dict[str, Any]) -> Any:
        tag = self._post(pid, request, collect=True)
        while not tag["done"]:
            self._pump(pid)
        return tag["value"]

    def barrier(self) -> None:
        """Collect every outstanding pipelined reply (first error raises)."""
        for pid in range(self.num_partitions):
            while self._pending[pid]:
                self._pump(pid)

    # -- ingest (pipelined, split by partition column) -----------------------

    def _split_batch(self, stream: str, rows: Sequence[Any]) -> list[tuple[int, list]]:
        if self.num_partitions == 1:
            return [(0, [row if isinstance(row, Mapping) else list(row) for row in rows])]
        key_col = self.partition_map.require_partition_key(stream)
        meta = self._schema.get(stream.lower())
        if meta is None:
            raise NoSuchTableError(f"no stream or table named {stream!r}")
        columns = [c.lower() for c in meta["columns"]]
        try:
            pos = columns.index(key_col)
        except ValueError:
            raise SchemaError(
                f"partition key {key_col!r} is not a declared column of "
                f"{stream!r} (columns: {', '.join(columns)})"
            ) from None
        buckets: dict[int, list] = defaultdict(list)
        part_of = self.partition_map.partition_of
        for row in rows:
            if isinstance(row, Mapping):
                value = _mapping_value(row, key_col)
                buckets[part_of(value)].append(dict(row))
            else:
                buckets[part_of(row[pos])].append(list(row))
        return sorted(buckets.items())

    def ingest(
        self,
        stream: str,
        rows,
        batch_id: Optional[int] = None,
        *,
        wait: bool = True,
    ) -> Optional[dict[int, list[int]]]:
        """Split one atomic batch by the stream's partition column and apply
        each sub-batch on its partition (each as one local transaction, on
        that partition's own batch-id sequence).

        With ``wait=False`` the sub-batches are posted without collecting
        replies — the pipelined fast path; errors surface at the next
        :meth:`barrier`/:meth:`drain`/sync call.  Returns ``{partition:
        applied batch ids}`` when waiting, else ``None``.
        """
        if batch_id is not None and self.num_partitions > 1:
            raise BatchOrderError(
                "explicit batch ids cannot target a multi-partition database: "
                "each partition runs its own batch-id sequence"
            )
        rows = list(rows)
        obs = self.obs
        with (
            obs.span("coord.ingest", stream=stream, rows=len(rows))
            if obs.enabled
            else NOOP_SPAN
        ):
            with (
                obs.span("ingest.split", stream=stream)
                if obs.enabled
                else NOOP_SPAN
            ):
                buckets = self._split_batch(stream, rows)
            self.routing["ingest_batches"] += 1
            self.routing["ingest_rows"] += len(rows)
            tags = []
            for pid, sub in buckets:
                self.routing["ingest_sub_batches"] += 1
                while len(self._pending[pid]) >= self._max_inflight:
                    self._pump(pid)
                tags.append(
                    (pid, self._post(pid, {"op": "ingest", "stream": stream,
                                           "rows": sub, "batch_id": batch_id},
                                     collect=wait))
                )
            if not wait:
                return None
            for pid, tag in tags:
                while not tag["done"]:
                    self._pump(pid)
            return {pid: tag["value"] for pid, tag in tags}

    # -- routed statements and procedure calls -------------------------------

    def execute(self, sql: str, params: Sequence[Any] = (), *, key: Any = None) -> ResultSet:
        """Run one statement (see module docstring for the routing rules)."""
        params = list(params)
        if key is not None:
            self.routing["single_partition_statements"] += 1
            pid = self.partition_map.partition_of(key)
            return self._request(pid, {"op": "execute", "sql": sql, "params": params})
        verb = _leading_keyword(sql)
        if verb == "select":
            return self._fanout_select(sql, params)
        if verb == "insert":
            raise PartitionError(
                "cannot broadcast an INSERT (it would duplicate the row on "
                "every partition); pass key=<partition-key value> to route it"
            )
        if verb in ("update", "delete"):
            results = self._cross_partition(
                lambda pid: {"op": "xp_exec", "sql": sql, "params": params}
            )
            return ResultSet((), [], sum(r.rowcount for r in results))
        # DDL (and anything else): schema is deployment — broadcast,
        # one auto-commit transaction per partition, then re-learn schema
        self.routing["broadcast_statements"] += 1
        result: Any = None
        for pid in range(self.num_partitions):
            result = self._request(pid, {"op": "execute", "sql": sql, "params": params})
        self._schema = self._fetch_schema()
        return result

    def _fanout_select(self, sql: str, params: list) -> ResultSet:
        self.routing["fanout_selects"] += 1
        tags = [
            (pid, self._post(pid, {"op": "execute", "sql": sql, "params": params},
                             collect=True))
            for pid in range(self.num_partitions)
        ]
        columns: tuple = ()
        rows: list = []
        rowcount = 0
        for pid, tag in tags:
            while not tag["done"]:
                self._pump(pid)
            rs = tag["value"]
            columns = rs.columns
            rows.extend(rs.rows)
            rowcount += rs.rowcount
        return ResultSet(columns, rows, rowcount)

    def call(self, name: str, *args: Any, key: Any = None) -> Any:
        """Invoke a stored procedure.

        With ``key=`` the whole invocation is a single-partition
        transaction on ``partition_of(key)`` and returns the procedure's
        result.  Without a key the body runs as a fragment on **every**
        partition inside one ordered-commit cross-partition transaction;
        returns the list of per-partition results.
        """
        if key is not None:
            self.routing["single_partition_calls"] += 1
            pid = self.partition_map.partition_of(key)
            return self._request(pid, {"op": "call", "name": name, "args": list(args)})
        return self._cross_partition(
            lambda pid: {"op": "xp_call", "name": name, "args": list(args)}
        )

    def explain(self, sql: str, params: Sequence[Any] = (), *, key: Any = None) -> dict:
        """The plan tree with estimated (and, for SELECT, actual) row
        counts.  With ``key=`` the statement is explained (and, for
        SELECT, executed) on that key's partition; without one it goes to
        partition 0 — every partition shares the schema, so the plan
        *shape* is identical everywhere and only the row counts are
        partition-local."""
        pid = self.partition_map.partition_of(key) if key is not None else 0
        return self._request(
            pid, {"op": "explain", "sql": sql, "params": list(params)}
        )

    def analyze(self, table: Optional[str] = None) -> dict[str, int]:
        """Collect column statistics on **every** partition (each worker's
        planner costs against its own rows); returns the per-table row
        totals summed across partitions."""
        totals: dict[str, int] = {}
        for pid in range(self.num_partitions):
            for name, rows in self._request(pid, {"op": "analyze", "table": table}).items():
                totals[name] = totals.get(name, 0) + rows
        return totals

    def executemany(self, sql: str, param_rows, *, key_position: int) -> int:
        """Bulk DML routed row-by-row: each parameter row goes to the
        partition of its ``key_position``-th value, applied as one
        ``executemany`` transaction per touched partition."""
        buckets: dict[int, list] = defaultdict(list)
        for row in param_rows:
            row = list(row)
            buckets[self.partition_map.partition_of(row[key_position])].append(row)
        self.routing["single_partition_statements"] += len(buckets)
        total = 0
        for pid, rows in sorted(buckets.items()):
            total += self._request(pid, {"op": "executemany", "sql": sql, "rows": rows})
        return total

    # -- ordered-commit cross-partition protocol -----------------------------

    def _cross_partition(self, fragment_for) -> list:
        """Run one fragment per partition under ordered commit: prepare
        serially in partition order, commit in the same order, abort-all
        on any prepare failure."""
        self.barrier()
        xid = self._next_xid
        self._next_xid += 1
        self.routing["cross_partition_txns"] += 1
        prepared: list[int] = []
        results: list = []
        try:
            for pid in range(self.num_partitions):
                self._request(pid, {"op": "xp_begin", "xid": xid})
                prepared.append(pid)
                results.append(self._request(pid, fragment_for(pid)))
        except BaseException:
            self._abort_best_effort(prepared)
            self.routing["cross_partition_aborts"] += 1
            raise
        committed: list[int] = []
        for pid in prepared:
            try:
                self._request(pid, {"op": "xp_commit", "xid": xid})
                committed.append(pid)
            except BaseException as exc:
                # the failed participant's transaction is still open (the
                # failure pre-empted its commit); roll back it and every
                # not-yet-committed participant
                self._abort_best_effort([p for p in prepared if p not in committed])
                self.routing["cross_partition_aborts"] += 1
                if committed:
                    raise PartitionError(
                        f"cross-partition transaction {xid} torn mid-commit: "
                        f"partition(s) {committed} committed before partition "
                        f"{pid} failed — partitions have diverged ({exc})"
                    ) from exc
                raise
        self.routing["cross_partition_commits"] += 1
        return results

    def _abort_best_effort(self, pids: Sequence[int]) -> None:
        for pid in pids:
            try:
                self._request(pid, {"op": "xp_abort"})
            except Exception:
                pass  # the worker may be gone; abort is best-effort cleanup

    # -- broadcast maintenance ------------------------------------------------

    def drain(self) -> int:
        """Run pending workflow deliveries to completion on every
        partition; returns the total deliveries processed."""
        self.barrier()
        return sum(
            self._request(pid, {"op": "drain"}) for pid in range(self.num_partitions)
        )

    def flush_log(self) -> None:
        """Close the durability window on every partition (one group-commit
        fsync each).  This is the all-partitions durability boundary."""
        self.barrier()
        for pid in range(self.num_partitions):
            self._request(pid, {"op": "flush"})

    def checkpoint(self) -> list[str]:
        self.barrier()
        return [
            self._request(pid, {"op": "checkpoint"})
            for pid in range(self.num_partitions)
        ]

    def inject_fault(self, pid: int, op: str, message: Optional[str] = None) -> None:
        """Arm a one-shot failure of ``op`` on partition ``pid`` (tests)."""
        self._request(pid, {"op": "inject_fault", "fault_op": op, "message": message})

    # -- inspection -----------------------------------------------------------

    def snapshot(self) -> dict[int, dict[str, Any]]:
        """Per-partition ``Catalog.snapshot()`` (JSON-decoded form)."""
        self.barrier()
        return {
            pid: self._request(pid, {"op": "snapshot"})
            for pid in range(self.num_partitions)
        }

    def merged_table_rows(self, table: str) -> list[tuple]:
        """All partitions' rows of ``table`` as a sorted list of value
        tuples (rowids dropped — they are per-partition).  The partitioned
        counterpart of a single engine's table contents, for equivalence
        checks against an unpartitioned run."""
        merged: list[tuple] = []
        for snap in self.snapshot().values():
            state = snap.get(table)
            if state is None:
                raise NoSuchTableError(f"no table named {table!r}")
            merged.extend(tuple(values) for _rowid, values in state["rows"])
        return sorted(merged, key=_row_sort_key)

    def add_stats_section(self, name: str, thunk) -> None:
        """Attach an extra section to :meth:`stats` — same contract as
        ``Database.add_stats_section`` (the network server registers its
        ``"server"`` counters here when fronting a partitioned engine).
        Re-registering replaces; a registered section shadows a built-in
        key; a raising thunk degrades to ``{"error": ...}``."""
        self._stats_sections[name] = thunk

    def remove_stats_section(self, name: str) -> None:
        """Detach a section added by :meth:`add_stats_section` (no-op if
        absent)."""
        self._stats_sections.pop(name, None)

    def _worker_stats(self, section: Optional[str] = None) -> list:
        """Per-partition engine stats (whole snapshot or one section)."""
        self.barrier()
        request: dict[str, Any] = {"op": "stats"}
        if section is not None:
            request["section"] = section
        return [
            self._request(pid, dict(request))
            for pid in range(self.num_partitions)
        ]

    @staticmethod
    def _agg_transactions(per: list) -> dict[str, int]:
        txns: Counter[str] = Counter()
        for section in per:
            for key, value in section.items():
                if not isinstance(value, bool):
                    txns[key] += value
        return dict(txns)

    @staticmethod
    def _agg_table_rows(per: list) -> dict[str, int]:
        table_rows: Counter[str] = Counter()
        for tables in per:
            for t, meta in tables.items():
                table_rows[t] += meta["rows"]
        return dict(table_rows)

    def _builtin_stats_sections(self) -> dict[str, Any]:
        """Name → thunk for a selective ``stats(section=...)`` — the
        cross-worker sections fetch only the matching per-worker section."""
        return {
            "num_partitions": lambda: self.num_partitions,
            "mode": lambda: self.partition_map.mode,
            "workers": lambda: self.workers,
            "routing": lambda: dict(self.routing),
            "transactions": lambda: self._agg_transactions(
                self._worker_stats("transactions")
            ),
            "table_rows": lambda: self._agg_table_rows(self._worker_stats("tables")),
            "partitions": self._worker_stats,
        }

    def stats(self, section: Optional[str] = None) -> Any:
        """Aggregated counters: routing/protocol tallies, per-partition
        engine stats, cross-partition sums (transactions, table row
        counts), a merged ``obs`` section (coordinator + every worker,
        histograms bucket-merged), plus one key per attached
        :meth:`add_stats_section` section.  ``section=`` fetches one
        section, computing (and fetching from workers) only what it
        needs; an unknown name raises :class:`KeyError`."""
        if section is not None:
            thunk = self._stats_sections.get(section)
            if thunk is not None:
                return _safe_section(thunk)
            builtin = self._builtin_stats_sections().get(section)
            if builtin is not None:
                return builtin()
            known = sorted(
                set(self._builtin_stats_sections()) | set(self._stats_sections)
            )
            raise KeyError(
                f"unknown stats section {section!r} (have: {', '.join(known)})"
            )
        per = self._worker_stats()
        snapshot = {
            "num_partitions": self.num_partitions,
            "mode": self.partition_map.mode,
            "workers": self.workers,
            "routing": dict(self.routing),
            "transactions": self._agg_transactions([s["transactions"] for s in per]),
            "table_rows": self._agg_table_rows([s["tables"] for s in per]),
            "partitions": per,
        }
        for name, thunk in self._stats_sections.items():
            snapshot[name] = _safe_section(thunk)
        return snapshot

    # -- observability --------------------------------------------------------

    def _obs_section(self) -> dict[str, Any]:
        """The merged ``"obs"`` stats section: the coordinator's registry
        plus every worker's, combined with
        :meth:`~repro.obs.MetricsRegistry.merge_snapshots` so N partition
        histograms read as one logical histogram."""
        if not self.obs.enabled:
            return {"enabled": False}
        snaps = [self.obs.metrics.snapshot()]
        snaps.extend(
            w for w in self._worker_stats("obs") if w and w.get("enabled")
        )
        merged = MetricsRegistry.merge_snapshots(snaps)
        merged["enabled"] = True
        merged["tracing"] = self.obs.tracing
        merged["spans"] = self.obs.tracer.stats()
        return merged

    def trace_spans(self) -> list[dict[str, Any]]:
        """Drain every buffered span — the coordinator's ring plus each
        worker's (via the ``obs_spans`` RPC) — as one list ready for
        :func:`repro.obs.write_jsonl`.  Empty unless tracing is on."""
        if not self.obs.tracing:
            return []
        spans = self.obs.tracer.drain()
        self.barrier()
        for pid in range(self.num_partitions):
            spans.extend(self._request(pid, {"op": "obs_spans"}) or [])
        return spans

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        """Flush and close every partition's log, stop the workers, and
        reap the processes.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        try:
            self.barrier()
            for pid in range(self.num_partitions):
                self._request(pid, {"op": "close"})
                self._request(pid, {"op": "shutdown"})
        finally:
            for handle in self._handles:
                handle.join()

    def kill(self) -> None:
        """Simulate a crash: terminate every worker with no close/flush.
        Commits past the last :meth:`flush_log` may be lost — exactly the
        window the per-partition command logs bound."""
        self._closed = True
        for handle in self._handles:
            handle.kill()
        for pending in self._pending:
            pending.clear()

    def __enter__(self) -> "PartitionedDatabase":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        else:
            self.kill()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PartitionedDatabase(num_partitions={self.num_partitions}, "
            f"mode={self.partition_map.mode!r}, workers={self.workers!r})"
        )


def _mapping_value(row: Mapping[str, Any], key_col: str) -> Any:
    if key_col in row:
        return row[key_col]
    for name, value in row.items():
        if name.lower() == key_col:
            return value
    raise SchemaError(
        f"row {dict(row)!r} has no value for partition key column {key_col!r}"
    )


def iter_partitions(n: int, mode: str = "hash") -> Iterator[PartitionInfo]:
    """The ``PartitionInfo`` of every partition of an ``n``-way database —
    convenience for precomputing placement coordinator-side."""
    for pid in range(n):
        yield PartitionInfo(pid, n, mode)
