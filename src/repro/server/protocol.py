"""Wire protocol of the network front door.

One frame (see :mod:`repro.common.framing`) = one message.  The protocol
is the partition RPC's request/reply shape lifted onto a public socket:

* the **first** frame on a connection must be a handshake —
  ``{"op": "hello", "protocol": 1}`` — answered with server metadata
  (protocol version, whether the engine is partitioned, frame and
  admission limits); anything else closes the connection;
* after the handshake, every request is ``{"op": ..., ...operands}`` and
  every reply is ``{"ok": True, "value": ...}`` or ``{"ok": False,
  "error": "<class name>", "message": ..., "retryable": bool}``;
* replies are strictly **FIFO**: the server answers requests in arrival
  order (rejections included), so a client may pipeline many requests
  and match replies by position — the same discipline the coordinator
  uses against its partition workers;
* errors cross the wire by class name and are re-raised client-side as
  the same :class:`~repro.common.errors.ReproError` subclass (foreign
  names fall back to :class:`~repro.common.errors.ServerError`), so
  ``except BackpressureError`` works identically in-process and remote.

Engine operations (``OPS``) run on the server's single engine thread in
arrival order; ``hello``/``ping``/``bye`` are connection-level and never
touch the engine.  ``stats`` is engine-dispatched but **exempt** from
admission control: observability must keep working while the server is
shedding load.
"""

from __future__ import annotations

from typing import Any

from ..common.errors import ProtocolError, ReproError, ServerError
from ..partition.rpc import decode_value, encode_value

#: bump when the frame contents change incompatibly; the handshake
#: rejects clients speaking a different version.
PROTOCOL_VERSION = 1

#: engine operations — dispatched to the engine thread in FIFO order.
OPS = frozenset(
    {"execute", "executemany", "call", "ingest", "drain", "flush_log", "stats", "explain"}
)

#: engine operations exempt from admission control.
EXEMPT_OPS = frozenset({"stats"})

#: connection-level operations handled entirely on the event loop.
CONNECTION_OPS = frozenset({"hello", "ping", "bye"})


# ---------------------------------------------------------------------------
# Reply construction
# ---------------------------------------------------------------------------

def value_reply(value: Any) -> dict[str, Any]:
    return {"ok": True, "value": encode_value(value)}


def error_reply(exc: BaseException) -> dict[str, Any]:
    return {
        "ok": False,
        "error": type(exc).__name__,
        "message": str(exc),
        "retryable": bool(getattr(type(exc), "retryable", False)),
    }


def hello_reply(
    *, partitioned: bool, max_frame_bytes: int, max_inflight_per_conn: int
) -> dict[str, Any]:
    return value_reply(
        {
            "protocol": PROTOCOL_VERSION,
            "server": "repro-sstore",
            "partitioned": partitioned,
            "max_frame_bytes": max_frame_bytes,
            "max_inflight_per_conn": max_inflight_per_conn,
        }
    )


# ---------------------------------------------------------------------------
# Engine dispatch (runs on the server's engine thread)
# ---------------------------------------------------------------------------

def perform(db: Any, record: dict[str, Any], partitioned: bool) -> Any:
    """Apply one engine operation to ``db`` and return its raw result.

    ``key``/``key_position`` routing hints are honoured against a
    partitioned engine and ignored against a single one (a single engine
    *is* the one partition every key routes to), so client code is
    portable across both deployments.  The one asymmetry the coordinator
    forces: partitioned ``executemany`` must say which parameter column
    is the partition key.
    """
    op = record["op"]
    if op == "execute":
        params = tuple(record.get("params") or ())
        if partitioned and record.get("key") is not None:
            return db.execute(record["sql"], params, key=record["key"])
        return db.execute(record["sql"], params)
    if op == "executemany":
        rows = [tuple(r) for r in record.get("rows") or ()]
        if partitioned:
            key_position = record.get("key_position")
            if key_position is None:
                raise ProtocolError(
                    "executemany against a partitioned engine requires "
                    "key_position (which parameter column carries the "
                    "partition key)"
                )
            return db.executemany(record["sql"], rows, key_position=key_position)
        return db.executemany(record["sql"], rows)
    if op == "call":
        args = record.get("args") or ()
        if partitioned and record.get("key") is not None:
            return db.call(record["proc"], *args, key=record["key"])
        return db.call(record["proc"], *args)
    if op == "ingest":
        rows = [tuple(r) for r in record.get("rows") or ()]
        return db.ingest(record["stream"], rows, record.get("batch_id"))
    if op == "drain":
        return db.drain()
    if op == "flush_log":
        return db.flush_log()
    if op == "stats":
        return db.stats(section=record.get("section"))
    if op == "explain":
        params = tuple(record.get("params") or ())
        if partitioned and record.get("key") is not None:
            return db.explain(record["sql"], params, key=record["key"])
        return db.explain(record["sql"], params)
    raise ProtocolError(f"unknown operation {op!r}")  # pragma: no cover - server gates


def respond(db: Any, record: dict[str, Any], partitioned: bool) -> dict[str, Any]:
    """:func:`perform` wrapped into a wire reply; never raises.

    Engine errors become typed error replies; an *unexpected* exception
    (an engine bug) is still reported by its class name — the client
    falls back to :class:`ServerError` — and the server stays up.
    """
    try:
        return value_reply(perform(db, record, partitioned))
    except ReproError as exc:
        return error_reply(exc)
    except Exception as exc:  # noqa: BLE001 - a served engine must not die
        return error_reply(exc)


__all__ = [
    "PROTOCOL_VERSION",
    "OPS",
    "EXEMPT_OPS",
    "CONNECTION_OPS",
    "value_reply",
    "error_reply",
    "hello_reply",
    "perform",
    "respond",
    "decode_value",
    "encode_value",
    "ServerError",
]
