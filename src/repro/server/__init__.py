"""Network front door: serve the engine over TCP with admission control.

``ReproServer`` fronts a :class:`~repro.engine.database.Database` or a
:class:`~repro.partition.coordinator.PartitionedDatabase`; ``ReproClient``
(blocking) and ``AsyncReproClient`` (asyncio) speak its frame protocol.
See ARCHITECTURE.md § "Network front door" for the wire format,
handshake, and backpressure rules.
"""

from .client import AsyncReproClient, ReproClient
from .protocol import PROTOCOL_VERSION
from .server import ReproServer, serve

__all__ = [
    "AsyncReproClient",
    "PROTOCOL_VERSION",
    "ReproClient",
    "ReproServer",
    "serve",
]
