"""Clients for the network front door.

:class:`ReproClient` is the workhorse: a blocking, socket-based client
mirroring the engine facade (``execute`` / ``executemany`` / ``call`` /
``ingest`` / ``drain`` / ``stats``), safe to use from benchmark worker
threads or processes (one client per worker — a client is a connection,
and a connection is a FIFO reply stream owned by one caller at a time).

:class:`AsyncReproClient` is the minimal asyncio twin for callers that
already live on an event loop.

Both support **pipelining**: ``post()`` sends a request without waiting
and ``collect()`` takes the oldest outstanding reply — the same FIFO
matching the coordinator uses against its workers.  The high-level
methods are strictly request/reply and refuse to run with posts
outstanding (interleaving them would mis-match replies).

Error replies re-raise as the engine's own exception classes, resolved
by name (foreign names fall back to
:class:`~repro.common.errors.ServerError`), with the message prefixed
``[server]`` so a remote failure names its origin.  Admission-control
rejections are :class:`~repro.common.errors.BackpressureError` with
``retryable = True``; :meth:`ReproClient.ingest` can retry those itself
(``retries=``) with exponential backoff — safe because a rejected batch
was never executed.
"""

from __future__ import annotations

import asyncio
import socket
import time
from collections import deque
from typing import Any, Optional, Sequence

from ..common.errors import ProtocolError, ServerError, error_class
from ..common.framing import (
    MAX_FRAME_BYTES,
    TRACE_KEY,
    encode_frame,
    read_frame_async,
    recv_frame,
    send_frame,
)
from ..obs import observability
from .protocol import PROTOCOL_VERSION, decode_value

#: connection-level ops that never get a ``client.<op>`` span
_UNTRACED_OPS = frozenset({"hello", "bye", "ping", "stats"})


def _raise_reply(reply: dict[str, Any]) -> None:
    cls = error_class(reply.get("error", ""), ServerError)
    raise cls(f"[server] {reply.get('message', 'unknown server error')}")


def _decode_reply(reply: dict[str, Any]) -> Any:
    if not reply.get("ok"):
        _raise_reply(reply)
    return decode_value(reply.get("value"))


def _ingest_result(value: Any) -> Any:
    # a partitioned reply is {partition: batch ids}; JSON stringified the
    # int keys in transit — restore them
    if isinstance(value, dict):
        return {int(pid): ids for pid, ids in value.items()}
    return value


class ReproClient:
    """Blocking client for one :class:`~repro.server.ReproServer`.

    Connecting performs the handshake; :attr:`server_info` then carries
    the server's metadata (``partitioned``, limits).  Close with
    :meth:`close` or use as a context manager.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        connect_timeout: float = 5.0,
        max_frame_bytes: int = MAX_FRAME_BYTES,
        obs=None,
    ):
        self._limit = max_frame_bytes
        #: client-side observability (``None``/``"off"``/``"metrics"``/
        #: ``"full"`` or an Observability).  With tracing on, each posted
        #: request opens a ``client.<op>`` span whose context rides the
        #: frame — the server's work stitches under it.
        self.obs = observability(obs, process="client")
        self._spans: deque = deque()
        self._sock = socket.create_connection((host, port), timeout=connect_timeout)
        self._sock.settimeout(None)
        self._outstanding = 0
        self._closed = False
        try:
            self.server_info: dict[str, Any] = self._request(
                {"op": "hello", "protocol": PROTOCOL_VERSION}
            )
        except BaseException:
            self._sock.close()
            self._closed = True
            raise
        self.partitioned: bool = bool(self.server_info.get("partitioned"))

    # -- pipelining primitives ------------------------------------------------

    def post(self, record: dict[str, Any]) -> None:
        """Send one request without waiting; replies arrive in FIFO order
        via :meth:`collect`."""
        obs = self.obs
        span = None
        if obs.enabled and record.get("op") not in _UNTRACED_OPS:
            # detached: pipelined posts complete in FIFO, not span, order
            span = obs.tracer.start(
                f"client.{record.get('op')}", None, detached=True
            )
            if obs.tracing:
                record = dict(record)  # never mutate the caller's dict
                record[TRACE_KEY] = span.context()
        send_frame(self._sock, record, limit=self._limit)
        self._spans.append(span)
        self._outstanding += 1

    def collect(self) -> Any:
        """Take the oldest outstanding reply (raises its typed error)."""
        if not self._outstanding:
            raise ProtocolError("collect() with no outstanding post()")
        reply, _ = recv_frame(self._sock, limit=self._limit)
        self._outstanding -= 1
        span = self._spans.popleft() if self._spans else None
        if span is not None:
            span.finish(ok=bool(reply.get("ok")))
        return _decode_reply(reply)

    def trace_spans(self) -> list[dict[str, Any]]:
        """Drain this client's buffered spans (empty unless tracing)."""
        if not self.obs.tracing:
            return []
        return self.obs.tracer.drain()

    @property
    def outstanding(self) -> int:
        return self._outstanding

    def _request(self, record: dict[str, Any]) -> Any:
        if self._outstanding:
            raise ProtocolError(
                f"{self._outstanding} pipelined post(s) outstanding — "
                "collect() them before a synchronous call"
            )
        self.post(record)
        return self.collect()

    # -- the engine facade, remoted -------------------------------------------

    def execute(self, sql: str, params: Sequence[Any] = (), *, key: Any = None) -> Any:
        """Run one statement; returns the :class:`ResultSet`.  ``key=``
        routes to one partition of a partitioned engine (ignored by a
        single engine — it is the one partition)."""
        return self._request(
            {"op": "execute", "sql": sql, "params": list(params), "key": key}
        )

    def query(self, sql: str, params: Sequence[Any] = (), *, key: Any = None) -> list[dict]:
        return self.execute(sql, params, key=key).to_dicts()

    def explain(self, sql: str, params: Sequence[Any] = (), *, key: Any = None) -> dict:
        """The server-side plan tree for ``sql``: chosen access path and
        join algorithms, estimated rows/costs, the alternatives considered,
        and — for SELECT, which is executed — actual per-operator rows."""
        return self._request(
            {"op": "explain", "sql": sql, "params": list(params), "key": key}
        )

    def executemany(
        self, sql: str, param_rows, *, key_position: Optional[int] = None
    ) -> int:
        return self._request(
            {
                "op": "executemany",
                "sql": sql,
                "rows": [list(r) for r in param_rows],
                "key_position": key_position,
            }
        )

    def call(self, name: str, *args: Any, key: Any = None) -> Any:
        return self._request({"op": "call", "proc": name, "args": list(args), "key": key})

    def ingest(
        self,
        stream: str,
        rows,
        batch_id: Optional[int] = None,
        *,
        retries: int = 0,
        backoff: float = 0.01,
    ) -> Any:
        """Ingest one atomic batch.  Returns the applied batch ids — a
        list from a single engine, ``{partition: ids}`` from a
        partitioned one.

        ``retries`` re-submits after a *retryable* rejection (admission
        control), sleeping ``backoff * 2**attempt`` between tries.  A
        rejected batch was never executed, so the retry applies exactly
        once.
        """
        record = {
            "op": "ingest",
            "stream": stream,
            "rows": [list(r) for r in rows],
            "batch_id": batch_id,
        }
        attempt = 0
        while True:
            try:
                return _ingest_result(self._request(record))
            except ServerError as exc:
                if not exc.retryable or attempt >= retries:
                    raise
                time.sleep(backoff * (2 ** attempt))
                attempt += 1

    def drain(self) -> int:
        return self._request({"op": "drain"})

    def flush_log(self) -> None:
        return self._request({"op": "flush_log"})

    def stats(self, section: Optional[str] = None) -> Any:
        """The server engine's stats snapshot — or one section of it
        (``section=`` computes and ships only that section)."""
        return self._request({"op": "stats", "section": section})

    def ping(self) -> str:
        return self._request({"op": "ping"})

    # -- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        """Graceful goodbye (best-effort) and socket close.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        try:
            if not self._outstanding:
                self._request({"op": "bye"})
        except Exception:
            pass  # the goodbye is courtesy; the close is what matters
        self._sock.close()

    def __enter__(self) -> "ReproClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class AsyncReproClient:
    """Minimal asyncio client — the same protocol on an event loop.

    Build with :meth:`connect`; one outstanding-reply FIFO per client,
    same pipelining rules as :class:`ReproClient`.
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        *,
        max_frame_bytes: int = MAX_FRAME_BYTES,
        obs=None,
    ):
        self._reader = reader
        self._writer = writer
        self._limit = max_frame_bytes
        self._outstanding = 0
        self.obs = observability(obs, process="client")
        self._spans: deque = deque()
        self.server_info: dict[str, Any] = {}
        self.partitioned = False

    @classmethod
    async def connect(
        cls,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_frame_bytes: int = MAX_FRAME_BYTES,
        obs=None,
    ) -> "AsyncReproClient":
        reader, writer = await asyncio.open_connection(host, port)
        client = cls(reader, writer, max_frame_bytes=max_frame_bytes, obs=obs)
        client.server_info = await client.request(
            {"op": "hello", "protocol": PROTOCOL_VERSION}
        )
        client.partitioned = bool(client.server_info.get("partitioned"))
        return client

    async def post(self, record: dict[str, Any]) -> None:
        obs = self.obs
        span = None
        if obs.enabled and record.get("op") not in _UNTRACED_OPS:
            span = obs.tracer.start(
                f"client.{record.get('op')}", None, detached=True
            )
            if obs.tracing:
                record = dict(record)
                record[TRACE_KEY] = span.context()
        self._writer.write(encode_frame(record, limit=self._limit))
        await self._writer.drain()
        self._spans.append(span)
        self._outstanding += 1

    async def collect(self) -> Any:
        if not self._outstanding:
            raise ProtocolError("collect() with no outstanding post()")
        reply, _ = await read_frame_async(self._reader, limit=self._limit)
        self._outstanding -= 1
        span = self._spans.popleft() if self._spans else None
        if span is not None:
            span.finish(ok=bool(reply.get("ok")))
        return _decode_reply(reply)

    def trace_spans(self) -> list[dict[str, Any]]:
        """Drain this client's buffered spans (empty unless tracing)."""
        if not self.obs.tracing:
            return []
        return self.obs.tracer.drain()

    async def request(self, record: dict[str, Any]) -> Any:
        if self._outstanding:
            raise ProtocolError(
                f"{self._outstanding} pipelined post(s) outstanding — "
                "collect() them before a synchronous call"
            )
        await self.post(record)
        return await self.collect()

    async def execute(self, sql: str, params: Sequence[Any] = (), *, key: Any = None) -> Any:
        return await self.request(
            {"op": "execute", "sql": sql, "params": list(params), "key": key}
        )

    async def explain(self, sql: str, params: Sequence[Any] = (), *, key: Any = None) -> dict:
        return await self.request(
            {"op": "explain", "sql": sql, "params": list(params), "key": key}
        )

    async def call(self, name: str, *args: Any, key: Any = None) -> Any:
        return await self.request(
            {"op": "call", "proc": name, "args": list(args), "key": key}
        )

    async def ingest(self, stream: str, rows, batch_id: Optional[int] = None) -> Any:
        return _ingest_result(
            await self.request(
                {
                    "op": "ingest",
                    "stream": stream,
                    "rows": [list(r) for r in rows],
                    "batch_id": batch_id,
                }
            )
        )

    async def drain(self) -> int:
        return await self.request({"op": "drain"})

    async def stats(self, section: Optional[str] = None) -> Any:
        return await self.request({"op": "stats", "section": section})

    async def ping(self) -> str:
        return await self.request({"op": "ping"})

    async def close(self) -> None:
        try:
            if not self._outstanding:
                await self.request({"op": "bye"})
        except Exception:
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (OSError, ConnectionError):
            pass
