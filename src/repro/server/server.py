"""The asyncio TCP server fronting a single or partitioned engine.

Architecture — three kinds of thread, one writer of engine state:

* the **event-loop thread** owns all sockets and every admission-control
  counter.  Connections are coroutines; budget increments (at admit) and
  decrements (at engine completion) happen only here, so the counters
  need no locks;
* the **engine thread** — a one-worker :class:`ThreadPoolExecutor` — is
  the only thread that ever touches the engine.  Every engine operation,
  from every connection, is submitted to it in arrival order, preserving
  the serial execution model the engine is built on.  This also makes
  server-assigned batch ids safe: concurrent clients ingesting the same
  stream are serialised here, so each batch draws the next id with no
  interleaving (no :class:`~repro.common.errors.BatchOrderError`);
* **client threads** live in other processes and speak frames.

Backpressure is *rejection*, not buffering.  Each connection carries a
bounded in-flight budget and the server a global one; a request arriving
with either budget full is answered — in FIFO position — with a
:class:`~repro.common.errors.BackpressureError` reply (``retryable``)
and **nothing** is queued or executed.  Stream GC bounds engine memory
and group commit bounds fsyncs; this layer bounds the request queue, so
no component of the pipeline grows without limit under overload.  The
reply path is bounded too: the per-connection reply queue blocks frame
reading when full, and a peer that stops reading its replies for
``drain_timeout`` seconds is declared dead and disconnected.

In-flight means *admitted but not yet executed*: the budget is released
the moment the engine finishes the request, before its reply is written.
That ordering matters — by the time a client can react to a reply the
budget it held is already free, so a strict request/reply client is
never spuriously rejected even at budget 1.  A client that disconnects
mid-request does not abort anything — admitted work runs to completion
on the engine thread (the transaction either fully applies or never
started; there is no partial state to roll back), its budget is
released, and the undeliverable reply is dropped.
"""

from __future__ import annotations

import asyncio
import threading
import time
from collections import Counter
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Optional

from ..common.errors import (
    BackpressureError,
    ConnectionClosedError,
    FrameTooLargeError,
    ProtocolError,
    ServerError,
)
from ..common.framing import MAX_FRAME_BYTES, TRACE_KEY, encode_frame, read_frame_async
from .protocol import (
    CONNECTION_OPS,
    EXEMPT_OPS,
    OPS,
    PROTOCOL_VERSION,
    error_reply,
    hello_reply,
    respond,
    value_reply,
)

#: reply-queue slack beyond the admission budget, for rejection/ping
#: replies that carry no budget.  When even this fills, the reader stops
#: pulling frames and TCP flow control pushes back on the client.
_REPLY_QUEUE_SLACK = 32


class ServerStats:
    """Counters surfaced as the ``server`` section of ``db.stats()``.

    Mutated only on the event-loop thread; read (GIL-atomic ints) from
    the engine thread when a stats snapshot is taken.
    """

    def __init__(self) -> None:
        self.connections_accepted = 0
        self.connections_active = 0
        self.requests: Counter[str] = Counter()
        self.replies = 0
        self.rejected: Counter[str] = Counter()
        self.protocol_errors = 0
        self.bytes_in = 0
        self.bytes_out = 0

    def snapshot(self, server: "ReproServer") -> dict[str, Any]:
        return {
            "listening": list(server.address),
            "connections": {
                "accepted": self.connections_accepted,
                "active": self.connections_active,
            },
            "requests": dict(self.requests),
            "replies": self.replies,
            "rejected": {
                "total": sum(self.rejected.values()),
                "by_op": dict(self.rejected),
            },
            "inflight": {
                "now": server._inflight_total,
                "limit_per_connection": server.max_inflight_per_conn,
                "limit_total": server.max_inflight_total,
            },
            "protocol_errors": self.protocol_errors,
            "bytes": {"in": self.bytes_in, "out": self.bytes_out},
        }


class _Conn:
    """Per-connection session: its reply queue and in-flight budget."""

    __slots__ = ("writer", "replies", "inflight", "alive")

    def __init__(self, writer: asyncio.StreamWriter, queue_size: int):
        self.writer = writer
        #: FIFO of reply dicts / engine-task futures; ``None`` ends it
        self.replies: asyncio.Queue = asyncio.Queue(maxsize=queue_size)
        self.inflight = 0
        self.alive = True


class ReproServer:
    """Serve a :class:`~repro.engine.database.Database` or
    :class:`~repro.partition.coordinator.PartitionedDatabase` over TCP.

    The server owns no engine state and closes without touching the
    engine — ``close()`` stops accepting, finishes or abandons
    connections, joins its threads, and leaves ``db`` usable in-process.

    Args:
        db: the engine to front.  Partitioned engines are detected by
            their ``partition_map`` and get ``key=`` routing support.
        host/port: bind address; port 0 picks a free port (read it back
            from :attr:`address`).
        max_inflight_per_conn: admitted-but-unexecuted budget per
            connection; requests beyond it are rejected retryably.
        max_inflight_total: the same budget across all connections.
        max_frame_bytes: per-frame ceiling, enforced both directions.
        idle_timeout: seconds a connection may sit with no request and
            nothing in flight before the server hangs up (None = never).
        drain_timeout: seconds a reply write may stall on a non-reading
            peer before the connection is declared dead.
    """

    def __init__(
        self,
        db: Any,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_inflight_per_conn: int = 8,
        max_inflight_total: int = 64,
        max_frame_bytes: int = MAX_FRAME_BYTES,
        idle_timeout: Optional[float] = None,
        drain_timeout: float = 30.0,
    ):
        if max_inflight_per_conn < 1 or max_inflight_total < 1:
            raise ValueError("in-flight budgets must be >= 1")
        self.db = db
        self.partitioned = hasattr(db, "partition_map")
        self.max_inflight_per_conn = max_inflight_per_conn
        self.max_inflight_total = max_inflight_total
        self.max_frame_bytes = max_frame_bytes
        self.idle_timeout = idle_timeout
        self.drain_timeout = drain_timeout
        self.stats = ServerStats()
        self.address: tuple[str, int] = (host, port)
        self._host, self._port = host, port
        self._inflight_total = 0
        self._conns: set[_Conn] = set()
        self._conn_tasks: set[asyncio.Task] = set()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._loop_thread: Optional[threading.Thread] = None
        self._engine: Optional[ThreadPoolExecutor] = None
        self._aserver: Optional[asyncio.AbstractServer] = None
        self._started = False
        self._closed = False

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "ReproServer":
        """Bind, listen, and register the ``server`` stats section.

        Returns ``self`` so ``ReproServer(db).start()`` reads naturally.
        """
        if self._started:
            raise ServerError("server already started")
        self._started = True
        self._engine = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-engine"
        )
        self._loop = asyncio.new_event_loop()
        self._loop_thread = threading.Thread(
            target=self._loop.run_forever, name="repro-server", daemon=True
        )
        self._loop_thread.start()
        try:
            self._aserver = asyncio.run_coroutine_threadsafe(
                asyncio.start_server(self._handle, self._host, self._port),
                self._loop,
            ).result()
        except BaseException:
            self.close()
            raise
        sock = self._aserver.sockets[0]
        self.address = sock.getsockname()[:2]
        self.db.add_stats_section("server", lambda: self.stats.snapshot(self))
        return self

    def close(self) -> None:
        """Stop accepting, finish open connections, join all server
        threads, and detach from the engine.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        if self._loop is not None and self._loop_thread is not None:
            if self._loop_thread.is_alive():
                asyncio.run_coroutine_threadsafe(
                    self._shutdown(), self._loop
                ).result()
                self._loop.call_soon_threadsafe(self._loop.stop)
            self._loop_thread.join()
            self._loop.close()
        if self._engine is not None:
            self._engine.shutdown(wait=True)
        self.db.remove_stats_section("server")

    async def _shutdown(self) -> None:
        if self._aserver is not None:
            self._aserver.close()
            await self._aserver.wait_closed()
        # hang up on every live connection; handlers observe the closed
        # transport, finish their in-flight work, and exit
        for conn in list(self._conns):
            conn.alive = False
            conn.writer.close()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)

    def __enter__(self) -> "ReproServer":
        return self.start() if not self._started else self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- connection handling (event-loop thread) -----------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        st = self.stats
        st.connections_accepted += 1
        st.connections_active += 1
        conn = _Conn(writer, self.max_inflight_per_conn + _REPLY_QUEUE_SLACK)
        self._conns.add(conn)
        self._conn_tasks.add(asyncio.current_task())
        writer_task = asyncio.ensure_future(self._write_replies(conn))
        try:
            if await self._handshake(conn, reader):
                await self._serve(conn, reader)
        finally:
            await conn.replies.put(None)
            await writer_task  # drains pending replies, releases budget
            st.connections_active -= 1
            self._conns.discard(conn)
            self._conn_tasks.discard(asyncio.current_task())
            writer.close()
            try:
                await writer.wait_closed()
            except (OSError, ConnectionError):
                pass

    async def _handshake(
        self, conn: _Conn, reader: asyncio.StreamReader
    ) -> bool:
        """First frame must be a versioned hello; anything else gets one
        error frame and the connection closes."""
        try:
            record, nbytes = await read_frame_async(
                reader, limit=self.max_frame_bytes, header_timeout=self.idle_timeout
            )
        except (TimeoutError, asyncio.TimeoutError, ConnectionClosedError):
            return False
        except (FrameTooLargeError, ProtocolError) as exc:
            self.stats.protocol_errors += 1
            await conn.replies.put(error_reply(exc))
            return False
        self.stats.bytes_in += nbytes
        self.stats.requests["hello"] += 1
        if record.get("op") != "hello":
            self.stats.protocol_errors += 1
            await conn.replies.put(error_reply(ProtocolError(
                f"expected hello, got {record.get('op')!r}"
            )))
            return False
        if record.get("protocol") != PROTOCOL_VERSION:
            self.stats.protocol_errors += 1
            await conn.replies.put(error_reply(ProtocolError(
                f"unsupported protocol version {record.get('protocol')!r} "
                f"(server speaks {PROTOCOL_VERSION})"
            )))
            return False
        await conn.replies.put(hello_reply(
            partitioned=self.partitioned,
            max_frame_bytes=self.max_frame_bytes,
            max_inflight_per_conn=self.max_inflight_per_conn,
        ))
        return True

    async def _serve(self, conn: _Conn, reader: asyncio.StreamReader) -> None:
        st = self.stats
        while True:
            try:
                record, nbytes = await read_frame_async(
                    reader,
                    limit=self.max_frame_bytes,
                    header_timeout=self.idle_timeout,
                )
            except (TimeoutError, asyncio.TimeoutError):
                if conn.inflight or not conn.replies.empty():
                    continue  # quiet socket but work in flight — not idle
                await conn.replies.put(error_reply(ConnectionClosedError(
                    f"idle timeout ({self.idle_timeout}s with no request)"
                )))
                return
            except ConnectionClosedError:
                return  # client hung up; in-flight work still completes
            except (FrameTooLargeError, ProtocolError) as exc:
                # the byte stream is no longer trustworthy: one typed
                # error frame, then hang up
                st.protocol_errors += 1
                await conn.replies.put(error_reply(exc))
                return
            st.bytes_in += nbytes
            op = record.get("op")
            st.requests[op if isinstance(op, str) else "?"] += 1
            if op == "ping":
                await conn.replies.put(value_reply("pong"))
                continue
            if op == "bye":
                await conn.replies.put(value_reply("bye"))
                return
            if op not in OPS:
                hint = "duplicate hello" if op in CONNECTION_OPS else f"unknown op {op!r}"
                await conn.replies.put(error_reply(ProtocolError(hint)))
                continue
            if op not in EXEMPT_OPS:
                rejection = self._admit(conn, op)
                if rejection is not None:
                    await conn.replies.put(rejection)
                    continue
            task = asyncio.ensure_future(self._run_on_engine(record))
            if op not in EXEMPT_OPS:
                # release at engine completion (runs on the loop), not at
                # reply-write time: by the time a client can react to its
                # reply the budget is already free, so a request/reply
                # client is never spuriously rejected at budget 1 — and a
                # vanished client cannot pin budget behind a dead socket
                task.add_done_callback(lambda _t, c=conn: self._release(c))
            await conn.replies.put(task)

    def _admit(self, conn: _Conn, op: str) -> Optional[dict[str, Any]]:
        """Take one unit of budget, or return the rejection reply.

        Nothing is queued for a rejected request — the engine never sees
        it, so a client retry cannot double-apply anything.
        """
        if conn.inflight >= self.max_inflight_per_conn:
            scope = f"connection budget full ({self.max_inflight_per_conn} in flight)"
        elif self._inflight_total >= self.max_inflight_total:
            scope = f"server budget full ({self.max_inflight_total} in flight)"
        else:
            conn.inflight += 1
            self._inflight_total += 1
            return None
        self.stats.rejected[op] += 1
        return error_reply(BackpressureError(
            f"{op} rejected: {scope}; nothing was executed, retry later"
        ))

    def _release(self, conn: _Conn) -> None:
        conn.inflight -= 1
        self._inflight_total -= 1

    async def _run_on_engine(self, record: dict[str, Any]) -> dict[str, Any]:
        # stamped at submission so the engine thread can report how long
        # the request sat behind earlier work in the one-worker executor
        queued_ns = time.perf_counter_ns()
        return await self._loop.run_in_executor(
            self._engine, self._respond, record, queued_ns
        )

    def _respond(self, record: dict[str, Any], queued_ns: int) -> dict[str, Any]:
        """Engine-thread entry: measure executor queue wait, adopt the
        client's trace context (if any), span the request, execute."""
        ctx = record.pop(TRACE_KEY, None)
        obs = self.db.obs
        op = record.get("op")
        if not obs.enabled or op in EXEMPT_OPS:
            # stats polls stay out of the span ring (and the disabled
            # path pays nothing beyond this branch)
            return respond(self.db, record, self.partitioned)
        wait_us = (time.perf_counter_ns() - queued_ns) / 1000.0
        obs.observe("server.queue_wait", wait_us)
        with obs.tracer.activate(ctx):
            with obs.span("server.request", op=op, queue_wait_us=round(wait_us, 1)):
                return respond(self.db, record, self.partitioned)

    async def _write_replies(self, conn: _Conn) -> None:
        """Drain the reply queue in FIFO order.  Runs until the ``None``
        sentinel, even once the socket is dead — every queued engine task
        must still be awaited to completion (admitted work always runs,
        reachable client or not)."""
        st = self.stats
        while True:
            payload = await conn.replies.get()
            if payload is None:
                return
            if isinstance(payload, asyncio.Future):
                try:
                    reply = await payload
                except Exception as exc:  # noqa: BLE001 - owe a reply regardless
                    reply = error_reply(ServerError(f"request lost: {exc}"))
            else:
                reply = payload
            if conn.alive:
                try:
                    data = self._encode_reply(reply)
                    conn.writer.write(data)
                    await asyncio.wait_for(
                        conn.writer.drain(), timeout=self.drain_timeout
                    )
                    st.bytes_out += len(data)
                    st.replies += 1
                except (TimeoutError, asyncio.TimeoutError, OSError, ConnectionError):
                    conn.alive = False  # dead or non-reading peer
                    conn.writer.close()

    def _encode_reply(self, reply: dict[str, Any]) -> bytes:
        """A reply that cannot be framed must still produce a frame —
        the client is owed exactly one reply per request."""
        try:
            return encode_frame(reply, limit=self.max_frame_bytes)
        except FrameTooLargeError as exc:
            return encode_frame(error_reply(exc), limit=self.max_frame_bytes)
        except Exception as exc:  # noqa: BLE001 - e.g. unserialisable value
            return encode_frame(
                error_reply(ServerError(f"reply not serialisable: {exc}")),
                limit=self.max_frame_bytes,
            )


def serve(db: Any, host: str = "127.0.0.1", port: int = 0, **options: Any) -> ReproServer:
    """Start a :class:`ReproServer` and return it (convenience)."""
    return ReproServer(db, host, port, **options).start()
