"""End-to-end observability: metrics registry + wall-clock trace spans.

This package is the measurement substrate of the engine (ISSUE 8): a
:class:`MetricsRegistry` of counters/gauges/mergeable latency histograms
and a :class:`~repro.obs.tracing.Tracer` of per-stage wall-clock spans,
bundled behind one :class:`Observability` facade that every layer —
engine, streaming, recovery, partition coordinator/workers, network
server, clients — holds as its ``obs`` attribute.

Three operating points:

* ``DISABLED`` (the default everywhere) — a shared singleton whose
  ``enabled`` is False and whose :meth:`~Observability.span` returns a
  stateless no-op; an un-instrumented run pays one attribute load and a
  branch per site (``bench_observability`` proves the bound);
* ``Observability(tracing=False)`` — **metrics only**: every span site
  still times itself and feeds its name's latency histogram, but nothing
  is buffered in the span ring;
* ``Observability()`` — **full tracing**: spans additionally land in the
  bounded ring, stitched across process hops by the trace context that
  rides request dicts (:data:`repro.common.framing.TRACE_KEY`).

The registry *backs* ``stats()`` rather than duplicating it: a database
built with ``obs=`` registers :meth:`Observability.stats_section` as the
``"obs"`` section through the ``add_stats_section`` hook, so dashboards
read p99s from the same snapshot API as every other counter.
"""

from __future__ import annotations

from typing import Any, Optional, Union

from .metrics import BUCKET_BOUNDS_US, LatencyHistogram, MetricsRegistry
from .tracing import NOOP_SPAN, Span, Tracer, read_jsonl, write_jsonl

__all__ = [
    "BUCKET_BOUNDS_US",
    "DISABLED",
    "LatencyHistogram",
    "MetricsRegistry",
    "NOOP_SPAN",
    "Observability",
    "Span",
    "Tracer",
    "observability",
    "read_jsonl",
    "write_jsonl",
]


class Observability:
    """One subsystem's metrics + tracing handle.

    Args:
        tracing: buffer finished spans in the ring (full mode).  With
            ``False`` the span sites still time themselves and feed the
            latency histograms — metrics-only mode.
        capacity: span ring size (oldest spans drop beyond it).
        process: label stamped on every span (``client``, ``server``,
            ``coord``, ``p000``, ...) so a stitched trace names where
            each stage ran.
    """

    __slots__ = ("enabled", "tracing", "metrics", "tracer")

    def __init__(
        self,
        *,
        tracing: bool = True,
        capacity: int = 4096,
        process: str = "engine",
    ):
        self.enabled = True
        self.tracing = tracing
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(
            capacity=capacity,
            process=process,
            record=tracing,
            on_finish=self.metrics.observe,
        )

    # -- instrumentation entry points (sites guard on ``obs.enabled``) --------

    def span(self, name: str, **tags: Any) -> Span:
        """Open a span under the current parent; it starts now, ends at
        ``finish()``/``with``-exit, and feeds the ``name`` histogram."""
        return self.tracer.start(name, tags or None)

    def observe(self, name: str, us: float) -> None:
        self.metrics.observe(name, us)

    def count(self, name: str, n: int = 1) -> None:
        self.metrics.inc(name, n)

    # -- surfacing -------------------------------------------------------------

    def stats_section(self) -> dict[str, Any]:
        """The ``"obs"`` section registered through ``add_stats_section``."""
        snap = self.metrics.snapshot()
        snap["enabled"] = True
        snap["tracing"] = self.tracing
        snap["spans"] = self.tracer.stats()
        return snap

    def export_jsonl(self, path: str, extra_spans: Optional[list] = None) -> int:
        """Write the buffered spans (plus any ``extra_spans``, e.g. spans
        fetched from partition workers) as tracetool-renderable JSONL."""
        spans = self.tracer.spans()
        if extra_spans:
            spans = spans + list(extra_spans)
        return write_jsonl(path, spans)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Observability(process={self.tracer.process!r}, "
            f"tracing={self.tracing})"
        )


class _Disabled:
    """The shared do-nothing observability (the no-op fast path).

    Instrumentation sites read ``obs.enabled`` and branch away; the few
    sites that unconditionally enter a span context get the stateless
    :data:`~repro.obs.tracing.NOOP_SPAN`.  Kept deliberately free of any
    per-call allocation.
    """

    __slots__ = ()

    enabled = False
    tracing = False
    metrics = None
    tracer = None

    def span(self, name: str, **tags: Any):
        return NOOP_SPAN

    def observe(self, name: str, us: float) -> None:
        pass

    def count(self, name: str, n: int = 1) -> None:
        pass

    def stats_section(self) -> dict[str, Any]:
        return {"enabled": False}

    def export_jsonl(self, path: str, extra_spans: Optional[list] = None) -> int:
        return write_jsonl(path, list(extra_spans or []))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "Observability(DISABLED)"


#: the one disabled instance every un-instrumented component shares
DISABLED = _Disabled()


def observability(
    spec: Union[None, str, Observability], *, process: str = "engine"
) -> Union[Observability, _Disabled]:
    """Normalise an ``obs=`` constructor argument.

    Accepts an :class:`Observability` (used as-is), ``None``/``"off"``
    (→ :data:`DISABLED`), ``"metrics"`` (metrics-only), or ``"full"``
    (tracing).  The string forms are what crosses the fork to partition
    workers, which build their own instance labelled ``process``.
    """
    if spec is None or spec is DISABLED:
        return DISABLED
    if isinstance(spec, Observability):
        return spec
    if spec == "off":
        return DISABLED
    if spec == "metrics":
        return Observability(tracing=False, process=process)
    if spec == "full":
        return Observability(tracing=True, process=process)
    raise ValueError(
        f"obs must be an Observability, None, 'off', 'metrics', or 'full' "
        f"(got {spec!r})"
    )
