"""Counters, gauges, and mergeable fixed-bucket latency histograms.

The registry is the *data* half of the observability layer (the tracer in
:mod:`repro.obs.tracing` is the *event* half): every span name doubles as
a latency histogram, so ``stats()`` can answer "what is the p99 of a
worker transaction" without anyone keeping raw samples around.

Histograms use one fixed exponential bucket layout (powers of two from
1µs to ~67s) so two histograms of the same name — one per partition
worker — can be **merged by adding bucket counts**.  A snapshot is plain
JSON (counts, sum, min/max, interpolated p50/p95/p99), which is exactly
what crosses the worker RPC: the coordinator merges worker snapshots
into one logical histogram without any shared memory.
"""

from __future__ import annotations

from bisect import bisect_left
from collections import Counter
from typing import Any, Callable, Iterable, Optional

#: Upper bounds (µs) of the fixed histogram buckets: 2^0 .. 2^26, plus an
#: implicit overflow bucket.  Every histogram in the system shares this
#: layout — that is what makes cross-process merging a vector add.
BUCKET_BOUNDS_US: tuple[int, ...] = tuple(2 ** i for i in range(27))

_NUM_BUCKETS = len(BUCKET_BOUNDS_US) + 1  # + overflow


class LatencyHistogram:
    """A fixed-bucket latency histogram over microseconds.

    ``observe()`` is the hot path: one bisect into the shared bound
    table, four attribute updates.  Percentiles are computed on demand by
    linear interpolation inside the covering bucket, clamped to the
    observed min/max so a single sample reports itself exactly.
    """

    __slots__ = ("counts", "count", "sum_us", "min_us", "max_us")

    def __init__(self) -> None:
        self.counts = [0] * _NUM_BUCKETS
        self.count = 0
        self.sum_us = 0.0
        self.min_us: Optional[float] = None
        self.max_us: Optional[float] = None

    def observe(self, us: float) -> None:
        if us < 0:
            us = 0.0
        self.counts[bisect_left(BUCKET_BOUNDS_US, us)] += 1
        self.count += 1
        self.sum_us += us
        if self.min_us is None or us < self.min_us:
            self.min_us = us
        if self.max_us is None or us > self.max_us:
            self.max_us = us

    def percentile(self, q: float) -> float:
        """The ``q``-quantile (``0 < q <= 1``) in µs; 0.0 when empty."""
        if self.count == 0:
            return 0.0
        target = q * self.count
        cum = 0
        for i, n in enumerate(self.counts):
            if n == 0:
                continue
            lo = 0.0 if i == 0 else float(BUCKET_BOUNDS_US[i - 1])
            hi = float(BUCKET_BOUNDS_US[i]) if i < len(BUCKET_BOUNDS_US) else float(
                self.max_us if self.max_us is not None else BUCKET_BOUNDS_US[-1]
            )
            if cum + n >= target:
                frac = (target - cum) / n
                value = lo + (hi - lo) * frac
                break
            cum += n
        else:  # pragma: no cover - count > 0 guarantees a covering bucket
            value = float(self.max_us or 0.0)
        if self.min_us is not None:
            value = max(value, self.min_us)
        if self.max_us is not None:
            value = min(value, self.max_us)
        return value

    @property
    def mean_us(self) -> float:
        return self.sum_us / self.count if self.count else 0.0

    def snapshot(self) -> dict[str, Any]:
        """A JSON-safe, *mergeable* snapshot (see :meth:`merge`)."""
        return {
            "count": self.count,
            "sum_us": self.sum_us,
            "min_us": self.min_us,
            "max_us": self.max_us,
            "mean_us": self.mean_us,
            "p50_us": self.percentile(0.50),
            "p95_us": self.percentile(0.95),
            "p99_us": self.percentile(0.99),
            "buckets": list(self.counts),
        }

    def merge(self, snap: dict[str, Any]) -> None:
        """Fold another histogram's :meth:`snapshot` into this one.

        Bucket layouts are fixed and shared, so the merge is exact for
        counts/sum/min/max and as precise as the buckets allow for the
        re-derived percentiles — this is how per-partition-worker
        histograms combine coordinator-side.
        """
        buckets = snap.get("buckets") or []
        if len(buckets) != _NUM_BUCKETS:
            raise ValueError(
                f"histogram snapshot has {len(buckets)} buckets, "
                f"expected {_NUM_BUCKETS} (mismatched bucket layout)"
            )
        for i, n in enumerate(buckets):
            self.counts[i] += n
        self.count += snap.get("count", 0)
        self.sum_us += snap.get("sum_us", 0.0)
        for bound, pick in (("min_us", min), ("max_us", max)):
            other = snap.get(bound)
            if other is None:
                continue
            mine = getattr(self, bound)
            setattr(self, bound, other if mine is None else pick(mine, other))

    @classmethod
    def from_snapshot(cls, snap: dict[str, Any]) -> "LatencyHistogram":
        hist = cls()
        hist.merge(snap)
        return hist

    @classmethod
    def merged(cls, snaps: Iterable[dict[str, Any]]) -> "LatencyHistogram":
        hist = cls()
        for snap in snaps:
            hist.merge(snap)
        return hist

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LatencyHistogram(count={self.count}, p99_us={self.percentile(0.99):.1f})"


class MetricsRegistry:
    """Named counters, gauges, and :class:`LatencyHistogram` families.

    * **counters** — monotonically increasing tallies (``inc``);
    * **gauges** — point-in-time values, either set directly or backed by
      a callable evaluated at snapshot time;
    * **histograms** — created on first :meth:`observe`/:meth:`histogram`
      of a name; every histogram shares the fixed bucket layout.

    :meth:`snapshot` is JSON-safe; :meth:`merge_snapshots` combines the
    snapshots of several registries (counters add, numeric gauges add,
    histograms bucket-merge) — the coordinator uses it to present N
    partition workers as one logical registry.
    """

    __slots__ = ("counters", "_gauges", "_histograms")

    def __init__(self) -> None:
        self.counters: Counter[str] = Counter()
        self._gauges: dict[str, Any] = {}
        self._histograms: dict[str, LatencyHistogram] = {}

    def inc(self, name: str, n: int = 1) -> None:
        self.counters[name] += n

    def gauge(self, name: str, value: Any) -> None:
        """Set a gauge; a callable is re-evaluated at every snapshot."""
        self._gauges[name] = value

    def histogram(self, name: str) -> LatencyHistogram:
        hist = self._histograms.get(name)
        if hist is None:
            hist = self._histograms[name] = LatencyHistogram()
        return hist

    def observe(self, name: str, us: float) -> None:
        self.histogram(name).observe(us)

    def snapshot(self) -> dict[str, Any]:
        gauges: dict[str, Any] = {}
        for name, value in self._gauges.items():
            gauges[name] = value() if callable(value) else value
        return {
            "counters": dict(self.counters),
            "gauges": gauges,
            "histograms": {
                name: hist.snapshot() for name, hist in sorted(self._histograms.items())
            },
        }

    @staticmethod
    def merge_snapshots(snaps: Iterable[dict[str, Any]]) -> dict[str, Any]:
        counters: Counter[str] = Counter()
        gauges: dict[str, Any] = {}
        hists: dict[str, LatencyHistogram] = {}
        for snap in snaps:
            if not snap:
                continue
            counters.update(snap.get("counters") or {})
            for name, value in (snap.get("gauges") or {}).items():
                if isinstance(value, bool) or not isinstance(value, (int, float)):
                    gauges[name] = value  # non-numeric: last writer wins
                else:
                    gauges[name] = gauges.get(name, 0) + value
            for name, hsnap in (snap.get("histograms") or {}).items():
                hists.setdefault(name, LatencyHistogram()).merge(hsnap)
        return {
            "counters": dict(counters),
            "gauges": gauges,
            "histograms": {name: h.snapshot() for name, h in sorted(hists.items())},
        }


#: callback signature used by the tracer to feed finished span durations
#: into a registry without importing it
ObserveFn = Callable[[str, float], None]
