"""Wall-clock trace spans with cross-process context propagation.

A **span** is one timed stage of a batch's journey — ``client.ingest``,
``server.request``, ``rpc.ingest``, ``worker.ingest``, ``txn``,
``trigger.ee``, ``log.fsync`` — carrying ``trace_id`` / ``span_id`` /
``parent_id``, an epoch-aligned start, a monotonic-clock duration, and
free-form tags.  Spans of one request share a ``trace_id``; rendering the
parent tree (:mod:`tools.tracetool`) gives the per-stage latency
breakdown the paper's §4.4–§4.7 evaluation reasons about.

Two clocks on purpose: ``start_us`` is ``time.time_ns()`` (epoch µs) so
spans recorded in *different processes* — coordinator and partition
workers, client and server — line up on one timeline; ``duration_us`` is
``perf_counter_ns`` so stage durations are monotonic and immune to
clock steps.

**Propagation.**  A span crossing a process hop rides as a tiny JSON
context (``{"trace_id", "span_id"}``) under
:data:`repro.common.framing.TRACE_KEY` inside the request dict — the
frames already carry plain dicts, so no wire-format change is needed.
The receiving side :meth:`Tracer.activate`\\ s the context, making the
remote span the parent of everything it does for that request.

**Storage.**  Finished spans land in a bounded ring (``deque(maxlen)``);
when it is full the oldest spans fall out and ``dropped`` counts them.
:meth:`Tracer.drain` empties the ring (the worker RPC op ``obs_spans``
is exactly that), and :func:`write_jsonl` exports spans for
``tools/tracetool.py``.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from collections import deque
from typing import Any, Optional

from .metrics import ObserveFn


class _RemoteParent:
    """A parent adopted from another process's trace context."""

    __slots__ = ("trace_id", "span_id")

    def __init__(self, trace_id: str, span_id: str):
        self.trace_id = trace_id
        self.span_id = span_id


class Span:
    """One in-flight pipeline stage.  Context-manager friendly: the span
    starts when created (:meth:`Tracer.start`) and ends at
    :meth:`finish` / ``with``-exit."""

    __slots__ = (
        "_tracer", "trace_id", "span_id", "parent_id",
        "name", "tags", "start_us", "_t0_ns", "duration_us", "_stacked",
    )

    def __init__(
        self,
        tracer: "Tracer",
        trace_id: str,
        span_id: str,
        parent_id: Optional[str],
        name: str,
        tags: Optional[dict[str, Any]],
        stacked: bool,
    ):
        self._tracer = tracer
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.tags = tags
        self.start_us = time.time_ns() // 1000
        self._t0_ns = time.perf_counter_ns()
        self.duration_us: Optional[float] = None
        self._stacked = stacked

    def set(self, **tags: Any) -> "Span":
        if self.tags is None:
            self.tags = tags
        else:
            self.tags.update(tags)
        return self

    def context(self) -> dict[str, str]:
        """The propagation context that makes this span a remote parent."""
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    def finish(self, **tags: Any) -> None:
        if self.duration_us is not None:
            return  # already finished (e.g. explicit finish inside a with)
        self.duration_us = (time.perf_counter_ns() - self._t0_ns) / 1000.0
        if tags:
            self.set(**tags)
        self._tracer._finished(self)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None and self.duration_us is None:
            self.set(error=exc_type.__name__)
        self.finish()

    def to_dict(self) -> dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "process": self._tracer.process,
            "start_us": self.start_us,
            "duration_us": self.duration_us,
            "tags": self.tags or {},
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Span({self.name!r}, trace={self.trace_id}, dur={self.duration_us})"


class _NoopSpan:
    """The disabled fast path: one shared, stateless, do-nothing span."""

    __slots__ = ()

    def set(self, **tags: Any) -> "_NoopSpan":
        return self

    def finish(self, **tags: Any) -> None:
        pass

    def context(self) -> None:
        return None

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


#: the shared no-op span — ``bool(NOOP_SPAN)`` is False so call sites can
#: use it as both a context manager and an "is tracing on" sentinel
NOOP_SPAN = _NoopSpan()


class _Activation:
    """Context manager that installs a remote parent on the span stack."""

    __slots__ = ("_tracer", "_parent")

    def __init__(self, tracer: "Tracer", parent: Optional[_RemoteParent]):
        self._tracer = tracer
        self._parent = parent

    def __enter__(self) -> "_Activation":
        if self._parent is not None:
            self._tracer._stack().append(self._parent)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._parent is not None:
            stack = self._tracer._stack()
            if self._parent in stack:
                stack.remove(self._parent)


class Tracer:
    """Creates spans, keeps the current-parent stack, owns the ring.

    ``process`` labels every span with where it ran (``client``,
    ``server``, ``coord``, ``p000``, ...).  ``record=False`` runs the
    full timing path but skips the ring — the metrics-only mode, where
    spans exist solely to feed their name's latency histogram through
    ``on_finish``.
    """

    def __init__(
        self,
        *,
        capacity: int = 4096,
        process: str = "main",
        record: bool = True,
        on_finish: Optional[ObserveFn] = None,
    ):
        if capacity < 1:
            raise ValueError("tracer ring capacity must be >= 1")
        self.process = process
        self.capacity = capacity
        self.record = record
        self.on_finish = on_finish
        self.emitted = 0
        self.dropped = 0
        # the ring holds Span objects; they serialize at drain time, off
        # the instrumentation hot path
        self._ring: deque[Span] = deque(maxlen=capacity)
        self._tls = threading.local()
        # itertools.count.__next__ is atomic in CPython — no lock needed
        self._ids = itertools.count(1)
        # pid in the prefix keeps ids unique across forked workers; the
        # urandom salt keeps them unique across successive processes that
        # happen to reuse a pid
        self._prefix = f"{os.getpid():x}-{os.urandom(2).hex()}."

    # -- ids and the parent stack ---------------------------------------------

    def _stack(self) -> list:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    def _new_id(self) -> str:
        return self._prefix + format(next(self._ids), "x")

    def current(self) -> Optional[Any]:
        stack = self._stack()
        return stack[-1] if stack else None

    def context(self) -> Optional[dict[str, str]]:
        """The current span's propagation context (None outside a span)."""
        top = self.current()
        if top is None:
            return None
        return {"trace_id": top.trace_id, "span_id": top.span_id}

    def activate(self, ctx: Optional[dict[str, Any]]) -> _Activation:
        """Adopt a remote trace context for the duration of a ``with``
        block: spans started inside parent to the remote span.  A None or
        malformed context activates nothing (spans start a new trace)."""
        parent = None
        if isinstance(ctx, dict):
            trace_id, span_id = ctx.get("trace_id"), ctx.get("span_id")
            if isinstance(trace_id, str) and isinstance(span_id, str):
                parent = _RemoteParent(trace_id, span_id)
        return _Activation(self, parent)

    # -- span lifecycle --------------------------------------------------------

    def start(
        self,
        name: str,
        tags: Optional[dict[str, Any]] = None,
        *,
        detached: bool = False,
    ) -> Span:
        """Open a span under the current parent (or as a new trace root).

        ``detached=True`` keeps the span **off** the parent stack: it is
        a leaf that may finish out of creation order — the coordinator's
        pipelined per-worker RPC spans, the client's pipelined request
        spans.  Stacked (default) spans must finish innermost-first,
        which every ``with`` usage guarantees.
        """
        stack = self._stack()
        if stack:
            parent = stack[-1]
            trace_id = parent.trace_id
            parent_id = parent.span_id
        else:
            trace_id = self._new_id()
            parent_id = None
        span = Span(self, trace_id, self._new_id(), parent_id, name, tags, not detached)
        if not detached:
            stack.append(span)
        return span

    def _finished(self, span: Span) -> None:
        if span._stacked:
            stack = self._stack()
            # well-nested spans finish innermost-first: top of stack
            if stack and stack[-1] is span:
                stack.pop()
            elif span in stack:
                stack.remove(span)
        self.emitted += 1
        if self.record:
            ring = self._ring
            if len(ring) == self.capacity:
                self.dropped += 1
            ring.append(span)
        if self.on_finish is not None:
            self.on_finish(span.name, span.duration_us or 0.0)

    # -- the ring --------------------------------------------------------------

    def spans(self) -> list[dict[str, Any]]:
        """The buffered finished spans as dicts (oldest first)."""
        return [span.to_dict() for span in self._ring]

    def drain(self) -> list[dict[str, Any]]:
        """Take and clear the buffered spans (the ``obs_spans`` RPC op)."""
        spans = [span.to_dict() for span in self._ring]
        self._ring.clear()
        return spans

    def stats(self) -> dict[str, Any]:
        return {
            "buffered": len(self._ring),
            "capacity": self.capacity,
            "emitted": self.emitted,
            "dropped": self.dropped,
        }


def write_jsonl(path: str, spans: list[dict[str, Any]]) -> int:
    """Write spans as JSON lines (one span per line, start-time ordered);
    returns the number written.  The file format ``tools/tracetool.py``
    renders."""
    ordered = sorted(spans, key=lambda s: (s.get("trace_id", ""), s.get("start_us", 0)))
    with open(path, "w", encoding="utf-8") as f:
        for span in ordered:
            f.write(json.dumps(span, sort_keys=True) + "\n")
    return len(ordered)


def read_jsonl(path: str) -> list[dict[str, Any]]:
    """Load a span JSONL file (blank lines skipped)."""
    spans = []
    with open(path, "r", encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if line:
                spans.append(json.loads(line))
    return spans
