"""Column types and value coercion.

The engine stores rows as plain Python tuples; this module defines the small
set of column types the SQL layer understands and the coercion rules used
when values enter a table (INSERT/UPDATE) or when parameters are bound.

Types are deliberately close to H-Store's: integers, floats, fixed-point
handled as floats, strings, and timestamps (stored as integer microseconds).
``None`` represents SQL NULL for every type.
"""

from __future__ import annotations

import enum
import math
from typing import Any

from .errors import TypeMismatchError


class ColumnType(enum.Enum):
    """Supported column types.

    ``TIMESTAMP`` is stored as an integer number of microseconds since an
    arbitrary epoch (the simulated clock's origin), matching H-Store's
    microsecond-precision TIMESTAMP columns.
    """

    INTEGER = "INTEGER"
    BIGINT = "BIGINT"
    FLOAT = "FLOAT"
    VARCHAR = "VARCHAR"
    TIMESTAMP = "TIMESTAMP"
    BOOLEAN = "BOOLEAN"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ColumnType.{self.name}"


_INTEGER_TYPES = frozenset({ColumnType.INTEGER, ColumnType.BIGINT, ColumnType.TIMESTAMP})

#: Inclusive bounds for 32-bit INTEGER columns (BIGINT/TIMESTAMP are 64-bit).
INTEGER_MIN = -(2**31)
INTEGER_MAX = 2**31 - 1
BIGINT_MIN = -(2**63)
BIGINT_MAX = 2**63 - 1


def coerce_value(value: Any, ctype: ColumnType, *, column: str = "?") -> Any:
    """Coerce ``value`` to the Python representation of ``ctype``.

    ``None`` (SQL NULL) passes through unchanged for every type.  Raises
    :class:`TypeMismatchError` when the value cannot be represented.

    >>> coerce_value("42", ColumnType.INTEGER)
    42
    >>> coerce_value(1, ColumnType.BOOLEAN)
    True
    """
    if value is None:
        return None

    if ctype in _INTEGER_TYPES:
        out = _coerce_int(value, column)
        lo, hi = (INTEGER_MIN, INTEGER_MAX) if ctype is ColumnType.INTEGER else (BIGINT_MIN, BIGINT_MAX)
        if not lo <= out <= hi:
            raise TypeMismatchError(
                f"column {column!r}: value {out} out of range for {ctype.value}"
            )
        return out

    if ctype is ColumnType.FLOAT:
        if isinstance(value, bool):
            raise TypeMismatchError(f"column {column!r}: cannot store BOOLEAN in FLOAT")
        if isinstance(value, (int, float)):
            return float(value)
        if isinstance(value, str):
            try:
                return float(value)
            except ValueError:
                raise TypeMismatchError(
                    f"column {column!r}: cannot coerce {value!r} to FLOAT"
                ) from None
        raise TypeMismatchError(f"column {column!r}: cannot coerce {type(value).__name__} to FLOAT")

    if ctype is ColumnType.VARCHAR:
        if isinstance(value, str):
            return value
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            return str(value)
        raise TypeMismatchError(f"column {column!r}: cannot coerce {type(value).__name__} to VARCHAR")

    if ctype is ColumnType.BOOLEAN:
        if isinstance(value, bool):
            return value
        if isinstance(value, int) and value in (0, 1):
            return bool(value)
        raise TypeMismatchError(f"column {column!r}: cannot coerce {value!r} to BOOLEAN")

    raise TypeMismatchError(f"column {column!r}: unsupported type {ctype!r}")  # pragma: no cover


def _coerce_int(value: Any, column: str) -> int:
    if isinstance(value, bool):
        raise TypeMismatchError(f"column {column!r}: cannot store BOOLEAN in integer column")
    if isinstance(value, int):
        return value
    if isinstance(value, float):
        if not math.isfinite(value) or value != int(value):
            raise TypeMismatchError(f"column {column!r}: {value!r} is not an integral value")
        return int(value)
    if isinstance(value, str):
        try:
            return int(value)
        except ValueError:
            raise TypeMismatchError(f"column {column!r}: cannot coerce {value!r} to integer") from None
    raise TypeMismatchError(f"column {column!r}: cannot coerce {type(value).__name__} to integer")


def is_comparable(a: Any, b: Any) -> bool:
    """Return True when two non-NULL SQL values can be ordered against
    each other (numeric/numeric, string/string, bool/bool)."""
    if isinstance(a, bool) or isinstance(b, bool):
        return isinstance(a, bool) and isinstance(b, bool)
    if isinstance(a, (int, float)) and isinstance(b, (int, float)):
        return True
    return isinstance(a, str) and isinstance(b, str)


def sql_repr(value: Any) -> str:
    """Render a Python value the way it would appear in SQL output.

    >>> sql_repr(None)
    'NULL'
    >>> sql_repr("x")
    "'x'"
    """
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    return repr(value)
