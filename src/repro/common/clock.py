"""Deterministic simulated time and the architectural cost model.

Why simulated time
==================
The paper's evaluation ran a Java/C++ engine on a 64-core Xeon; absolute
CPython wall-clock numbers cannot (and should not) be compared to that.  The
paper's *relative* results, however, are driven entirely by counts of
architectural events — client round trips, PE→EE dispatches, trigger firings,
synchronous log writes, KV-store round trips, micro-batch scheduling, and
index probes versus full scans.  This module makes those events explicit:

* every engine in this repository does its data work for real (real tuples,
  real SQL, real logs), and
* every performance-relevant event *additionally* advances a deterministic
  :class:`SimClock` by an amount taken from a :class:`CostModel`.

Throughput and latency reported by the benchmark harness are computed from
simulated time, so results are deterministic, machine-independent, and —
because event counts are exact — reproduce the paper's shapes faithfully.
``CostModel.calibrated()`` returns the cost table used for EXPERIMENTS.md;
the ablation benchmark sweeps these costs to show conclusions are robust.

The clock also tallies event counts, which the test suite asserts on
directly (e.g. "weak recovery wrote exactly one log record per workflow").
"""

from __future__ import annotations

import dataclasses
from collections import Counter
from dataclasses import dataclass, field


@dataclass
class CostModel:
    """Costs, in simulated microseconds, of the architectural events the
    paper's evaluation attributes performance differences to.

    H-Store / S-Store engine costs
    ------------------------------
    client_rtt_us
        One synchronous client↔PE round trip.  Paid when a client must wait
        for a transaction result before submitting the next request (the
        H-Store workflow pattern of §4.2/§4.5).
    client_submit_us
        Asynchronous submission cost of one request or one ingested atomic
        batch (the stream-injection path).
    txn_base_us
        Fixed per-transaction-execution overhead: scheduling, begin/commit
        bookkeeping.
    txn_begin_us / txn_commit_us / txn_abort_us
        Transaction boundary costs charged by the engine's transactional
        front door: opening a transaction (explicit ``begin()`` or the
        implicit wrapper around an auto-commit statement), committing it,
        and aborting it (the abort additionally charges ``sql_row_us`` per
        undo-log record replayed, tallied as ``rows_undone`` events).
    pe_ee_rtt_us
        One PE→EE dispatch of a batch of SQL statements (§4.1 calls these
        "execution batches").
    sql_stmt_us / sql_row_us / index_probe_us
        Per-statement fixed cost, per-row scan/materialisation cost, and
        per-index-probe cost inside the EE.
    sql_plan_us / plan_cache_hit_us
        Cold lex+parse+plan cost of one statement versus the cost of a
        prepared-statement cache hit.  H-Store plans stored-procedure SQL
        at deployment time; the gap between these two is the compile-once
        advantage the plan cache buys on every repeated statement.
    ee_trigger_us / pe_trigger_us
        Firing one execution-engine / partition-engine trigger (§3.2.3).
    window_slide_us
        Native window slide bookkeeping (§3.2.2).
    log_write_us / log_group_commit_us
        A synchronous command-log write, and the amortised per-transaction
        cost when group commit is enabled (§3.1, §4.4).
    snapshot_row_us
        Per-row cost of writing or loading a checkpoint.

    Comparison-system costs (§4.6)
    ------------------------------
    kv_rtt_us / kv_op_us
        Round trip to an external KV store (Redis for Spark, Memcached for
        Trident) and the server-side cost of one operation.
    spark_batch_overhead_us / spark_task_us / spark_row_us / rdd_create_us
        D-Stream micro-batch scheduling, per-task launch, per-row
        transformation cost, and creation of one immutable RDD + lineage node.
    storm_emit_us / storm_ack_us
        Per-tuple emit between bolts and the acker round trip that backs
        at-least-once semantics.
    trident_batch_us
        Per mini-batch exactly-once coordination cost in Trident.

    Multi-core (§4.7)
    -----------------
    partition_overhead_frac
        Fractional per-partition maintenance drag added for every partition
        beyond the first (the paper observes "about 5-10 percent drop-off
        per added core").
    """

    client_rtt_us: float = 550.0
    client_submit_us: float = 30.0
    txn_base_us: float = 30.0
    txn_begin_us: float = 8.0
    txn_commit_us: float = 12.0
    txn_abort_us: float = 20.0
    pe_ee_rtt_us: float = 25.0
    sql_stmt_us: float = 5.0
    sql_row_us: float = 0.05
    index_probe_us: float = 0.5
    sql_plan_us: float = 75.0
    plan_cache_hit_us: float = 0.4
    ee_trigger_us: float = 3.0
    pe_trigger_us: float = 5.0
    window_slide_us: float = 4.0
    log_write_us: float = 400.0
    log_group_commit_us: float = 40.0
    snapshot_row_us: float = 0.2

    kv_rtt_us: float = 150.0
    kv_op_us: float = 2.0
    spark_batch_overhead_us: float = 50_000.0
    spark_task_us: float = 200.0
    spark_row_us: float = 0.5
    rdd_create_us: float = 20.0
    storm_emit_us: float = 8.0
    storm_ack_us: float = 12.0
    trident_batch_us: float = 1_000.0

    partition_overhead_frac: float = 0.07

    @classmethod
    def calibrated(cls) -> "CostModel":
        """The cost table used for all EXPERIMENTS.md numbers.

        Values are the dataclass defaults; this constructor exists so call
        sites document that they rely on the calibrated table.
        """
        return cls()

    @classmethod
    def free(cls) -> "CostModel":
        """A zero-cost model: the clock never advances.

        Used by correctness tests that do not care about simulated time.
        """
        zeroed = {f.name: 0.0 for f in dataclasses.fields(cls)}
        return cls(**zeroed)

    def scaled(self, **overrides: float) -> "CostModel":
        """Return a copy with selected costs replaced (for ablations)."""
        return dataclasses.replace(self, **overrides)


class SimClock:
    """A deterministic logical clock measured in microseconds.

    The clock supports two operations: :meth:`charge`, which advances time by
    a named cost and tallies the event, and :meth:`advance_to`, used by
    workload drivers to model event arrival times.  Event tallies
    (:attr:`events`) let tests assert on exact architectural event counts
    independently of the cost table in use.
    """

    __slots__ = ("cost", "now_us", "events", "charged_us")

    def __init__(self, cost: CostModel | None = None, *, start_us: float = 0.0):
        self.cost = cost if cost is not None else CostModel.calibrated()
        self.now_us: float = float(start_us)
        self.events: Counter[str] = Counter()
        self.charged_us: Counter[str] = Counter()

    # -- charging -----------------------------------------------------------

    def charge(self, event: str, us: float, *, count: int = 1) -> None:
        """Advance the clock by ``us`` and record ``count`` ``event``s."""
        self.now_us += us
        self.events[event] += count
        self.charged_us[event] += us

    def charge_cost(self, event: str, *, count: int = 1, scale: float = 1.0) -> None:
        """Charge ``count`` occurrences of a named :class:`CostModel` field.

        ``event`` must be the name of a ``CostModel`` attribute without the
        ``_us`` suffix, e.g. ``charge_cost("pe_trigger")``.
        """
        unit = getattr(self.cost, f"{event}_us")
        self.charge(event, unit * count * scale, count=count)

    # -- time arithmetic ----------------------------------------------------

    def advance_to(self, when_us: float) -> None:
        """Move the clock forward to ``when_us`` (idle time); never backward."""
        if when_us > self.now_us:
            self.now_us = when_us

    def advance(self, us: float) -> None:
        """Advance the clock by an unlabelled amount of idle time."""
        if us < 0:
            raise ValueError("cannot advance the clock backwards")
        self.now_us += us

    @property
    def now_seconds(self) -> float:
        return self.now_us / 1_000_000.0

    def elapsed_since(self, t0_us: float) -> float:
        """Microseconds elapsed since an earlier reading of ``now_us``."""
        return self.now_us - t0_us

    def snapshot_events(self) -> Counter[str]:
        """A copy of the event tally (for before/after diffs in tests)."""
        return Counter(self.events)

    def reset(self) -> None:
        """Zero the clock and tallies (cost table is retained)."""
        self.now_us = 0.0
        self.events.clear()
        self.charged_us.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SimClock(now_us={self.now_us:.1f}, events={sum(self.events.values())})"


@dataclass
class Stopwatch:
    """Measures a span of simulated time on a :class:`SimClock`."""

    clock: SimClock
    start_us: float = field(default=0.0)

    def __post_init__(self) -> None:
        self.start_us = self.clock.now_us

    def restart(self) -> None:
        self.start_us = self.clock.now_us

    @property
    def elapsed_us(self) -> float:
        return self.clock.now_us - self.start_us

    @property
    def elapsed_seconds(self) -> float:
        return self.elapsed_us / 1_000_000.0

    def throughput_per_sec(self, completed: int) -> float:
        """``completed`` units per elapsed simulated second (0 if no time)."""
        secs = self.elapsed_seconds
        if secs <= 0.0:
            return 0.0
        return completed / secs
