"""Exception hierarchy for the S-Store reproduction.

Every error raised by the library derives from :class:`ReproError` so that
applications can catch library failures with a single ``except`` clause while
still being able to discriminate on the specific subclass.

The hierarchy mirrors the layering of the system:

* storage-level errors (:class:`StorageError` and subclasses),
* SQL front-end errors (:class:`SQLError` and subclasses),
* transaction/engine errors (:class:`TransactionError` and subclasses),
* streaming-model errors (:class:`StreamingError` and subclasses).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library.

    ``retryable`` marks errors that describe a *transient* condition the
    caller may safely retry (today: admission-control rejections).  It is
    a class attribute so the flag survives a trip across a process or
    socket boundary, where errors are rebuilt by class name.
    """

    retryable = False


# ---------------------------------------------------------------------------
# Storage layer
# ---------------------------------------------------------------------------

class StorageError(ReproError):
    """Base class for storage-layer failures."""


class SchemaError(StorageError):
    """Invalid schema definition (duplicate column, bad type, missing key)."""


class DuplicateTableError(StorageError):
    """A table with the same name already exists in the catalog."""


class NoSuchTableError(StorageError):
    """The referenced table does not exist."""


class NoSuchColumnError(StorageError):
    """The referenced column does not exist in the table/row source."""


class NoSuchIndexError(StorageError):
    """The referenced index does not exist."""


class NoSuchRowError(StorageError):
    """The referenced rowid is not present in the table (stale undo record,
    replay of a corrupt log, or a caller bug)."""


class ConstraintViolation(StorageError):
    """A NOT NULL / UNIQUE / PRIMARY KEY constraint was violated."""


class TypeMismatchError(StorageError):
    """A value could not be coerced to the declared column type."""


# ---------------------------------------------------------------------------
# SQL front-end
# ---------------------------------------------------------------------------

class SQLError(ReproError):
    """Base class for SQL front-end failures."""


class LexError(SQLError):
    """The SQL text could not be tokenised."""

    def __init__(self, message: str, position: int = -1):
        super().__init__(message)
        self.position = position


class ParseError(SQLError):
    """The token stream does not form a valid statement."""

    def __init__(self, message: str, position: int = -1):
        super().__init__(message)
        self.position = position


class PlanningError(SQLError):
    """The statement is well-formed but cannot be planned (unknown table,
    ambiguous column, aggregate misuse, wrong parameter count, ...)."""


class ExpressionError(SQLError):
    """Runtime failure while evaluating a SQL expression."""


# ---------------------------------------------------------------------------
# Transactions / engine
# ---------------------------------------------------------------------------

class TransactionError(ReproError):
    """Base class for transaction-processing failures."""


class TransactionAborted(TransactionError):
    """Raised (or recorded) when a transaction aborts.

    User stored-procedure code can raise this to request a rollback; the
    engine also raises it when a constraint violation forces an abort.
    """


class UserAbort(TransactionAborted):
    """Transaction aborted explicitly by stored-procedure code."""


class NoSuchProcedureError(TransactionError):
    """An unknown stored procedure was invoked."""


class ProcedureError(TransactionError):
    """A stored procedure raised an unexpected exception; wraps the cause."""


class RecoveryError(TransactionError):
    """Crash-recovery could not restore a consistent state."""


class PartitionError(TransactionError):
    """A partitioned-execution failure: a worker process died, a remote
    reply could not be decoded, or the ordered-commit protocol observed a
    partition fail after some participants had already committed."""


# ---------------------------------------------------------------------------
# Network front door / wire layer
# ---------------------------------------------------------------------------

class ServerError(ReproError):
    """Base class for network front-door failures (framing, protocol,
    handshake, admission control)."""


class ConnectionClosedError(ServerError):
    """The peer hung up — cleanly between frames, or tearing one mid-read
    (``mid_frame=True``)."""

    def __init__(self, message: str, *, mid_frame: bool = False):
        super().__init__(message)
        self.mid_frame = mid_frame


class ProtocolError(ServerError):
    """The byte stream violated the wire protocol: bad handshake, corrupt
    or malformed frame, or an unknown operation."""


class FrameTooLargeError(ProtocolError):
    """A frame announced a length beyond the configured limit.  Raised
    sender-side before writing and receiver-side before reading the body,
    so neither end ever materialises an oversized payload."""


class BackpressureError(ServerError):
    """Admission control rejected the request: an in-flight budget (per
    connection or global) was full.  Nothing was queued or executed; the
    request is safe to retry — the typed, retryable shed-load signal."""

    retryable = True


# ---------------------------------------------------------------------------
# Streaming model
# ---------------------------------------------------------------------------

class StreamingError(ReproError):
    """Base class for streaming-model failures."""


class WorkflowError(StreamingError):
    """Invalid workflow definition (cycle, unknown SP, disconnected edge)."""


class WindowVisibilityError(StreamingError):
    """A window table was accessed outside its owning stored procedure.

    Per paper §3.2.2, a window must only be visible to transaction
    executions of the stored procedure that defined it.
    """


class TriggerError(StreamingError):
    """Invalid trigger definition (e.g., a PE trigger on a window table)."""


class BatchOrderError(StreamingError):
    """Atomic batches were observed out of order on a stream."""


class ScheduleViolation(StreamingError):
    """A committed schedule violated the workflow/stream order constraints."""


# ---------------------------------------------------------------------------
# Wire registry: errors that cross a process or socket boundary are sent
# by class name and rebuilt here on the other side.
# ---------------------------------------------------------------------------

#: name → class for every public error in this module.
ERROR_CLASSES: dict[str, type] = {
    _name: _obj
    for _name, _obj in list(globals().items())
    if isinstance(_obj, type) and issubclass(_obj, ReproError)
}


def error_class(name: str, default: type = ReproError) -> type:
    """Resolve a wire error-class name; foreign names fall back to
    ``default`` so a peer can never make the caller raise a non-library
    exception type."""
    return ERROR_CLASSES.get(name, default)
