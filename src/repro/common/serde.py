"""Stable serialisation for snapshots and the command log.

Checkpoints and command-log records must survive a (simulated or real)
process crash, so both are serialised to JSON with a small framing layer:
a format version and a CRC32 checksum per record.  Corrupt or truncated
trailing records are detected and dropped during replay, matching the
behaviour of H-Store's command log (a torn final write is discarded).

Only JSON-safe SQL values appear in rows (int/float/str/bool/None), so no
custom value encoding is needed beyond the framing.
"""

from __future__ import annotations

import json
import zlib
from typing import Any, Iterable, Iterator

from .errors import RecoveryError

#: Bump when the record layout changes incompatibly.
FORMAT_VERSION = 1


def encode_record(record: dict[str, Any]) -> str:
    """Encode one record as a single framed line: ``<crc> <json>``.

    The JSON payload embeds the format version; the CRC32 covers the payload
    so truncated/corrupt lines can be rejected on replay.
    """
    payload = json.dumps({"v": FORMAT_VERSION, "d": record}, separators=(",", ":"), sort_keys=True)
    crc = zlib.crc32(payload.encode("utf-8")) & 0xFFFFFFFF
    return f"{crc:08x} {payload}"


def decode_record(line: str) -> dict[str, Any]:
    """Decode one framed line, verifying checksum and version.

    Raises :class:`RecoveryError` on any corruption.
    """
    try:
        crc_hex, payload = line.split(" ", 1)
        expected = int(crc_hex, 16)
    except ValueError:
        raise RecoveryError(f"malformed log line: {line[:60]!r}") from None
    actual = zlib.crc32(payload.encode("utf-8")) & 0xFFFFFFFF
    if actual != expected:
        raise RecoveryError("log record checksum mismatch")
    try:
        wrapper = json.loads(payload)
    except json.JSONDecodeError:
        raise RecoveryError("log record is not valid JSON") from None
    if wrapper.get("v") != FORMAT_VERSION:
        raise RecoveryError(f"unsupported log format version {wrapper.get('v')!r}")
    return wrapper["d"]


def decode_stream(lines: Iterable[str], *, tolerate_torn_tail: bool = True) -> Iterator[dict[str, Any]]:
    """Decode a sequence of framed lines.

    With ``tolerate_torn_tail`` (the default, matching command-log replay),
    a corrupt *final* record is silently dropped — it corresponds to a write
    torn by the crash.  Corruption anywhere else raises
    :class:`RecoveryError`.
    """
    buffered: list[str] = [line for line in lines if line.strip()]
    for i, line in enumerate(buffered):
        try:
            yield decode_record(line)
        except RecoveryError:
            if tolerate_torn_tail and i == len(buffered) - 1:
                return
            raise


def rows_to_jsonable(rows: Iterable[tuple]) -> list[list[Any]]:
    """Convert row tuples to JSON arrays (tuples are not JSON-native)."""
    return [list(row) for row in rows]


def rows_from_jsonable(rows: Iterable[list]) -> list[tuple]:
    """Inverse of :func:`rows_to_jsonable`."""
    return [tuple(row) for row in rows]
