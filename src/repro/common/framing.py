"""Length-prefixed frames: the one wire format of the whole system.

Every message that crosses a process or socket boundary — partition RPC
(:mod:`repro.partition.rpc`) and the network front door
(:mod:`repro.server`) — is one :func:`repro.common.serde.encode_record`
line (versioned JSON with a CRC32), prefixed by a 4-byte big-endian
length.  This module is the single implementation of that framing, with
one set of guards shared by every user:

* **oversized frames** are rejected on both sides: the sender refuses to
  emit a frame beyond ``limit`` (:class:`FrameTooLargeError` before any
  byte is written), and the receiver refuses to read the body of a frame
  whose header announces a length beyond its own limit — a malicious or
  confused peer cannot make either end materialise an unbounded payload;
* **torn frames** — a peer hanging up mid-read — raise
  :class:`ConnectionClosedError` with ``mid_frame=True``, distinct from a
  clean close between frames (``mid_frame=False``), so callers can tell
  "peer finished" from "peer died mid-message";
* **corrupt frames** (checksum mismatch, bad JSON, bad UTF-8) raise
  :class:`ProtocolError` — the serde CRC turns line noise into a typed,
  catchable failure instead of garbage data.

Blocking-socket helpers (:func:`send_frame`/:func:`recv_frame`) serve the
partition RPC channel and the synchronous client; the asyncio helper
(:func:`read_frame_async`) serves the server's event loop.  Reads return
``(record, frame_bytes)`` so callers can keep byte-level accounting
without re-measuring.
"""

from __future__ import annotations

import asyncio
import socket
import struct
from typing import Any

from .errors import (
    ConnectionClosedError,
    FrameTooLargeError,
    ProtocolError,
    RecoveryError,
)
from .serde import decode_record, encode_record

#: 4-byte big-endian unsigned length prefix.
HEADER = struct.Struct(">I")

#: Reserved request-dict key carrying trace context across a hop.
#: Because every frame is a plain JSON dict, distributed tracing needs no
#: wire-format change: a sender that wants its span to parent the
#: receiver's work puts ``{"trace_id": ..., "span_id": ...}`` under this
#: key (see :meth:`repro.obs.tracing.Span.context`), and the receiver
#: pops it before dispatch and ``activate()``\ s it.  Both the
#: client→server and coordinator→worker hops use exactly this mechanism,
#: which is what lets one ingested batch's trace stitch end to end.
TRACE_KEY = "__trace__"

#: Default per-frame byte ceiling (header excluded).  Generous enough for
#: any sane batch; small enough that one bad frame cannot exhaust memory.
MAX_FRAME_BYTES = 8 * 1024 * 1024


def encode_frame(record: dict[str, Any], *, limit: int = MAX_FRAME_BYTES) -> bytes:
    """Encode one record as a complete frame (header + serde line).

    Encodes fully before returning, so an unserialisable record raises
    without a partial frame ever reaching the wire.

    Raises:
        FrameTooLargeError: the encoded record exceeds ``limit``.
    """
    line = encode_record(record).encode("utf-8")
    if len(line) > limit:
        raise FrameTooLargeError(
            f"refusing to send a {len(line)}-byte frame (limit {limit} bytes)"
        )
    return HEADER.pack(len(line)) + line


def decode_payload(data: bytes) -> dict[str, Any]:
    """Decode one frame body, mapping serde corruption to the wire's
    typed error.

    Raises:
        ProtocolError: checksum mismatch, invalid JSON, or invalid UTF-8.
    """
    try:
        return decode_record(data.decode("utf-8"))
    except (RecoveryError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"malformed frame: {exc}") from None


def _check_announced_length(length: int, limit: int) -> None:
    if length > limit:
        raise FrameTooLargeError(
            f"peer announced a {length}-byte frame (limit {limit} bytes)"
        )


# ---------------------------------------------------------------------------
# Blocking sockets
# ---------------------------------------------------------------------------

def send_frame(
    sock: socket.socket, record: dict[str, Any], *, limit: int = MAX_FRAME_BYTES
) -> int:
    """Write one frame; returns the bytes written.

    Raises:
        FrameTooLargeError: the record encodes beyond ``limit``.
        ConnectionClosedError: the peer is gone (broken pipe/reset).
    """
    data = encode_frame(record, limit=limit)
    try:
        sock.sendall(data)
    except OSError as exc:
        raise ConnectionClosedError(f"connection broken during send: {exc}") from exc
    return len(data)


def recv_frame(
    sock: socket.socket, *, limit: int = MAX_FRAME_BYTES
) -> tuple[dict[str, Any], int]:
    """Read exactly one frame; returns ``(record, frame_bytes)``.

    Raises:
        ConnectionClosedError: clean close before the header
            (``mid_frame=False``) or a tear anywhere after
            (``mid_frame=True``).
        FrameTooLargeError: the header announces a body beyond ``limit``
            (the body is never read).
        ProtocolError: the body fails the serde checksum/JSON checks.
    """
    (length,) = HEADER.unpack(recv_exact(sock, HEADER.size))
    _check_announced_length(length, limit)
    payload = recv_exact(sock, length, mid_frame=True)
    return decode_payload(payload), HEADER.size + length


def recv_exact(sock: socket.socket, n: int, *, mid_frame: bool = False) -> bytes:
    """Read exactly ``n`` bytes from a blocking socket.

    ``mid_frame`` marks reads that are already inside a frame (the body
    after its header), so a close there is always reported as torn.
    """
    chunks: list[bytes] = []
    remaining = n
    while remaining:
        try:
            chunk = sock.recv(remaining)
        except OSError as exc:
            raise ConnectionClosedError(
                f"connection broken during recv: {exc}"
            ) from exc
        if not chunk:
            torn = mid_frame or bool(chunks)
            raise ConnectionClosedError(
                "connection closed mid-frame" if torn else "connection closed",
                mid_frame=torn,
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


# ---------------------------------------------------------------------------
# asyncio streams
# ---------------------------------------------------------------------------

async def read_frame_async(
    reader: asyncio.StreamReader,
    *,
    limit: int = MAX_FRAME_BYTES,
    header_timeout: float | None = None,
) -> tuple[dict[str, Any], int]:
    """Read exactly one frame from an asyncio stream; returns
    ``(record, frame_bytes)``.

    ``header_timeout`` bounds only the wait for the *header* — the idle
    gap between frames — and raises ``TimeoutError`` when it elapses.
    Timing out there is cancellation-safe: ``readexactly`` consumes
    nothing until all requested bytes are buffered, so the caller may
    keep the connection and read again.  Once a header has arrived the
    peer has committed to a frame and the body is read without a timeout.

    Raises:
        TimeoutError: no header arrived within ``header_timeout``.
        ConnectionClosedError | FrameTooLargeError | ProtocolError: as
            :func:`recv_frame`.
    """
    try:
        head = reader.readexactly(HEADER.size)
        if header_timeout is not None:
            head = asyncio.wait_for(head, header_timeout)
        header = await head
    except asyncio.IncompleteReadError as exc:
        torn = bool(exc.partial)
        raise ConnectionClosedError(
            "connection closed mid-frame" if torn else "connection closed",
            mid_frame=torn,
        ) from None
    except (TimeoutError, asyncio.TimeoutError):
        raise  # the idle gap elapsed — NOT a dead peer (3.11+ makes
        # TimeoutError an OSError subclass, so this must precede it)
    except OSError as exc:
        raise ConnectionClosedError(f"connection broken during recv: {exc}") from exc
    (length,) = HEADER.unpack(header)
    _check_announced_length(length, limit)
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError:
        raise ConnectionClosedError(
            "connection closed mid-frame", mid_frame=True
        ) from None
    except OSError as exc:
        raise ConnectionClosedError(f"connection broken during recv: {exc}") from exc
    return decode_payload(payload), HEADER.size + length
