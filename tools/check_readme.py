#!/usr/bin/env python
"""Execute every ```python code block in README.md (the docs CI gate).

Blocks run top to bottom in one shared namespace, from the repository
root (so the quickstart's ``sys.path.insert(0, "src")`` works), with
``assert`` statements live.  Any exception fails the check — a README
example that stops running stops merging.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

BLOCK_RE = re.compile(r"^```python\n(.*?)^```\s*$", re.DOTALL | re.MULTILINE)


def main() -> int:
    readme = ROOT / "README.md"
    blocks = BLOCK_RE.findall(readme.read_text(encoding="utf-8"))
    if not blocks:
        print("check_readme: no ```python blocks found in README.md", file=sys.stderr)
        return 1
    namespace: dict = {"__name__": "__readme__"}
    for i, source in enumerate(blocks, 1):
        try:
            code = compile(source, f"README.md#block{i}", "exec")
            exec(code, namespace)  # noqa: S102 - executing our own docs is the point
        except Exception as exc:  # pragma: no cover - failure path
            print(
                f"check_readme: README.md python block {i} failed: "
                f"{type(exc).__name__}: {exc}",
                file=sys.stderr,
            )
            return 1
    print(f"check_readme: {len(blocks)} README python block(s) executed cleanly")
    return 0


if __name__ == "__main__":
    import os

    os.chdir(ROOT)
    raise SystemExit(main())
