#!/usr/bin/env python
"""Render trace-span JSONL files as per-batch latency trees.

Input is the span format written by :func:`repro.obs.write_jsonl` — one
JSON object per line with ``trace_id`` / ``span_id`` / ``parent_id`` /
``name`` / ``process`` / ``start_us`` / ``duration_us`` / ``tags``.
Spans from any number of processes (client, server/coordinator,
partition workers) can share a file; they stitch by id.

Usage::

    python tools/tracetool.py TRACE.jsonl            # list traces
    python tools/tracetool.py TRACE.jsonl --trace ID # render one tree
    python tools/tracetool.py TRACE.jsonl --all      # render every tree

A rendered tree shows, per stage, the process it ran in, its wall-clock
duration, and its tags — the end-to-end per-batch latency breakdown::

    trace 2c74-0508.1 (14 spans, 2296us)
    └─ client.ingest                      client    2296us
       └─ server.request                  coord     1458us  op=ingest
          └─ coord.ingest                 coord     1440us  rows=8
             ├─ ingest.split              coord      101us
             ├─ rpc.ingest                coord     1300us  partition=0
             │  └─ worker.ingest          p000       653us
             │     └─ ingest              p000       629us  batch_id=1
             │        └─ txn              p000       552us  outcome=commit
             │           └─ log.fsync     p000       422us  records=1
             ...

Spans whose parent is absent from the file (e.g. the ring dropped it, or
only one process's spans were exported) render as additional roots of
their trace, so partial captures still display.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Any

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.obs import read_jsonl  # noqa: E402


def group_traces(spans: list[dict[str, Any]]) -> dict[str, list[dict[str, Any]]]:
    """Spans keyed by ``trace_id``, in file order."""
    traces: dict[str, list[dict[str, Any]]] = {}
    for span in spans:
        traces.setdefault(str(span.get("trace_id")), []).append(span)
    return traces


def _fmt_tags(tags: dict[str, Any]) -> str:
    if not tags:
        return ""
    return "  " + " ".join(f"{k}={v}" for k, v in sorted(tags.items()))


def _fmt_dur(duration_us: Any) -> str:
    if duration_us is None:
        return "?"
    return f"{duration_us:,.0f}us"


def render_trace(trace_id: str, spans: list[dict[str, Any]]) -> str:
    """One trace's spans as an indented parent tree (a list of lines
    joined) — children sorted by start time, orphans as extra roots."""
    by_id = {s.get("span_id"): s for s in spans}
    children: dict[Any, list[dict[str, Any]]] = {}
    roots: list[dict[str, Any]] = []
    for span in spans:
        parent = span.get("parent_id")
        if parent is not None and parent in by_id:
            children.setdefault(parent, []).append(span)
        else:
            roots.append(span)

    def start_key(span: dict[str, Any]) -> Any:
        return (span.get("start_us") or 0, str(span.get("span_id")))

    total = sum(s.get("duration_us") or 0.0 for s in roots)
    lines = [f"trace {trace_id} ({len(spans)} spans, {total:,.0f}us)"]

    def walk(span: dict[str, Any], prefix: str, last: bool) -> None:
        branch = "└─ " if last else "├─ "
        label = f"{prefix}{branch}{span.get('name', '?')}"
        pad = max(1, 42 - len(label))
        lines.append(
            f"{label}{' ' * pad}{span.get('process', '?'):<8}"
            f"{_fmt_dur(span.get('duration_us')):>10}"
            f"{_fmt_tags(span.get('tags') or {})}"
        )
        kids = sorted(children.get(span.get("span_id"), ()), key=start_key)
        child_prefix = prefix + ("   " if last else "│  ")
        for i, kid in enumerate(kids):
            walk(kid, child_prefix, i == len(kids) - 1)

    for i, root in enumerate(sorted(roots, key=start_key)):
        walk(root, "", i == len(roots) - 1)
    return "\n".join(lines)


def list_traces(traces: dict[str, list[dict[str, Any]]]) -> str:
    lines = [f"{len(traces)} trace(s)"]
    for trace_id, spans in sorted(
        traces.items(), key=lambda kv: min(s.get("start_us") or 0 for s in kv[1])
    ):
        names = {str(s.get("name")) for s in spans}
        procs = sorted({str(s.get("process")) for s in spans})
        dur = max(s.get("duration_us") or 0.0 for s in spans)
        lines.append(
            f"  {trace_id}: {len(spans)} spans across {', '.join(procs)} "
            f"(longest stage {dur:,.0f}us; {len(names)} stage kinds)"
        )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="render repro trace-span JSONL as per-batch latency trees"
    )
    parser.add_argument("path", help="span JSONL file (repro.obs.write_jsonl format)")
    parser.add_argument(
        "--trace", help="render the tree of this trace id (default: list traces)"
    )
    parser.add_argument(
        "--all", action="store_true", help="render every trace's tree"
    )
    args = parser.parse_args(argv)

    try:
        spans = read_jsonl(args.path)
    except OSError as exc:
        print(f"tracetool: cannot read {args.path}: {exc}", file=sys.stderr)
        return 1
    if not spans:
        print(f"tracetool: {args.path} contains no spans", file=sys.stderr)
        return 1
    traces = group_traces(spans)

    if args.trace is not None:
        selected = traces.get(args.trace)
        if selected is None:
            print(
                f"tracetool: no trace {args.trace!r} "
                f"(have: {', '.join(sorted(traces))})",
                file=sys.stderr,
            )
            return 1
        print(render_trace(args.trace, selected))
        return 0
    if args.all:
        for i, (trace_id, selected) in enumerate(sorted(traces.items())):
            if i:
                print()
            print(render_trace(trace_id, selected))
        return 0
    print(list_traces(traces))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
