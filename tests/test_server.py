"""The network front door: handshake, FIFO pipelining, admission
control/backpressure, typed error propagation, wire-level fault
handling, and the served-partitioned path.

Every test binds port 0 (a fresh ephemeral port) and runs a real
asyncio server in its own thread — the same code path production
traffic takes, no mocked transports.
"""

import asyncio
import socket
import struct
import threading
import time

import pytest

from repro.common.errors import (
    BackpressureError,
    BatchOrderError,
    ConnectionClosedError,
    FrameTooLargeError,
    ProtocolError,
    SchemaError,
    ServerError,
)
from repro.common.framing import HEADER, recv_frame, send_frame
from repro.common.types import ColumnType as T
from repro.engine import Database
from repro.partition import PartitionedDatabase
from repro.server import AsyncReproClient, PROTOCOL_VERSION, ReproClient, ReproServer, serve
from repro.storage.schema import schema


def deploy(db, part=None):
    """One keyed stream feeding a balance table through a workflow —
    identical deployment for single and partitioned engines."""
    db.create_stream(schema("feed", ("acct", T.INTEGER), ("amt", T.INTEGER)))
    db.create_table(
        schema(
            "bal",
            ("acct", T.INTEGER, False),
            ("total", T.INTEGER, False),
            primary_key=["acct"],
        )
    )

    @db.register_procedure
    def absorb(ctx, batch):
        for acct, amt in batch.rows:
            if ctx.execute(
                "UPDATE bal SET total = total + ? WHERE acct = ?", (amt, acct)
            ).rowcount == 0:
                ctx.execute("INSERT INTO bal (acct, total) VALUES (?, ?)", (acct, amt))

    db.create_workflow("flow", [("feed", "absorb", None)])


@pytest.fixture
def db():
    d = Database()
    deploy(d)
    return d


@pytest.fixture
def server(db):
    with ReproServer(db) as srv:
        yield srv


def client(server, **kw):
    return ReproClient(*server.address, **kw)


def wait_until(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return False


def raw_connection(server):
    sock = socket.create_connection(server.address, timeout=5.0)
    sock.settimeout(5.0)
    return sock


# ---------------------------------------------------------------------------
# Handshake and session
# ---------------------------------------------------------------------------

class TestHandshake:
    def test_hello_carries_server_metadata(self, server):
        with client(server) as c:
            assert c.server_info["protocol"] == PROTOCOL_VERSION
            assert c.server_info["partitioned"] is False
            assert c.server_info["max_inflight_per_conn"] == server.max_inflight_per_conn

    def test_wrong_protocol_version_is_rejected(self, server):
        sock = raw_connection(server)
        try:
            send_frame(sock, {"op": "hello", "protocol": 999})
            reply, _ = recv_frame(sock)
            assert reply["ok"] is False and reply["error"] == "ProtocolError"
            assert "version" in reply["message"]
            with pytest.raises(ConnectionClosedError):  # then the server hangs up
                recv_frame(sock)
        finally:
            sock.close()

    def test_first_frame_must_be_hello(self, server):
        sock = raw_connection(server)
        try:
            send_frame(sock, {"op": "ping"})
            reply, _ = recv_frame(sock)
            assert reply["ok"] is False and reply["error"] == "ProtocolError"
        finally:
            sock.close()

    def test_duplicate_hello_errors_but_keeps_connection(self, server):
        with client(server) as c:
            with pytest.raises(ProtocolError):
                c._request({"op": "hello", "protocol": PROTOCOL_VERSION})
            assert c.ping() == "pong"  # still usable

    def test_unknown_op_errors_but_keeps_connection(self, server):
        with client(server) as c:
            with pytest.raises(ProtocolError, match="unknown op"):
                c._request({"op": "frobnicate"})
            assert c.ping() == "pong"

    def test_many_sequential_connections(self, db, server):
        for i in range(5):
            with client(server) as c:
                c.ingest("feed", [(i, 1)])
        with client(server) as c:
            c.drain()
            assert c.query("SELECT count(*) FROM bal") == [{"count": 5}]
        assert db.stats()["server"]["connections"]["accepted"] == 6


class TestEngineFacadeOverTheWire:
    def test_execute_returns_result_set(self, server):
        with client(server) as c:
            c.execute("INSERT INTO bal (acct, total) VALUES (?, ?)", (1, 10))
            rs = c.execute("SELECT acct, total FROM bal")
            assert rs.columns == ("acct", "total")
            assert rs.rows == [(1, 10)]
            assert rs.rowcount == 1

    def test_executemany_and_query(self, server):
        with client(server) as c:
            n = c.executemany(
                "INSERT INTO bal (acct, total) VALUES (?, ?)", [(1, 1), (2, 2), (3, 3)]
            )
            assert n == 3
            assert c.query("SELECT sum(total) FROM bal") == [{"sum": 6}]

    def test_call_procedure(self, db, server):
        @db.register_procedure
        def double(ctx, x):
            return x * 2

        with client(server) as c:
            assert c.call("double", 21) == 42

    def test_ingest_drain_flush(self, server):
        with client(server) as c:
            ids = c.ingest("feed", [(1, 5), (2, 7)])
            assert ids == [1]
            c.drain()
            assert c.flush_log() is None  # memory-only: a no-op, but a reply
            assert c.query("SELECT total FROM bal WHERE acct = 2") == [{"total": 7}]

    def test_stats_includes_server_section(self, server):
        with client(server) as c:
            st = c.stats()
            assert st["server"]["connections"]["active"] == 1
            assert st["server"]["requests"]["hello"] == 1
            assert st["server"]["bytes"]["in"] > 0

    def test_pipelined_replies_are_fifo(self, server):
        with client(server) as c:
            for acct in range(5):
                c.post({"op": "execute",
                        "sql": "INSERT INTO bal (acct, total) VALUES (?, ?)",
                        "params": [acct, acct * 10]})
            c.post({"op": "execute", "sql": "SELECT count(*) FROM bal", "params": []})
            for _ in range(5):
                assert c.collect().rowcount == 1  # the inserts, in order
            assert c.collect().rows == [(5,)]  # then the select — position 6


# ---------------------------------------------------------------------------
# Wire-level faults
# ---------------------------------------------------------------------------

class TestWireFaults:
    def test_malformed_frame_gets_error_frame_then_close(self, db, server):
        txns_before = dict(db.txn_stats)
        sock = raw_connection(server)
        try:
            send_frame(sock, {"op": "hello", "protocol": PROTOCOL_VERSION})
            recv_frame(sock)
            garbage = b"not a serde record at all"
            sock.sendall(HEADER.pack(len(garbage)) + garbage)
            reply, _ = recv_frame(sock)
            assert reply["ok"] is False and reply["error"] == "ProtocolError"
            with pytest.raises(ConnectionClosedError):
                recv_frame(sock)  # stream untrustworthy: server hung up
        finally:
            sock.close()
        assert wait_until(lambda: db.stats()["server"]["protocol_errors"] == 1)
        assert dict(db.txn_stats) == txns_before  # engine never touched

    def test_oversized_request_rejected_by_server(self, db):
        with ReproServer(db, max_frame_bytes=2048) as srv:
            with client(srv, max_frame_bytes=1 << 20) as c:
                big = [(i, 1) for i in range(2000)]
                with pytest.raises(FrameTooLargeError):
                    c.ingest("feed", big)
            # nothing of the batch landed
            assert db.query("SELECT count(*) FROM feed") == [{"count": 0}]

    def test_oversized_reply_becomes_error_frame(self, db):
        for i in range(300):
            db.execute("INSERT INTO bal (acct, total) VALUES (?, ?)", (i, i))
        with ReproServer(db, max_frame_bytes=2048) as srv:
            with client(srv, max_frame_bytes=1 << 20) as c:
                with pytest.raises(FrameTooLargeError):
                    c.execute("SELECT acct, total FROM bal")
                assert c.ping() == "pong"  # the connection survives

    def test_client_send_guard_matches_server(self, server):
        with client(server, max_frame_bytes=256) as c:
            with pytest.raises(FrameTooLargeError):
                c.ingest("feed", [(i, 1) for i in range(100)])

    def test_mid_request_disconnect_applies_fully_exactly_once(self, db, server):
        # post one ingest and hang up without reading the reply: the
        # admitted batch still runs to completion on the engine thread —
        # fully applied, exactly once, nothing to roll back
        c = client(server)
        c.post({"op": "ingest", "stream": "feed",
                "rows": [[1, 5], [2, 7]], "batch_id": None})
        c._sock.close()  # vanish mid-request, reply undeliverable
        assert wait_until(
            lambda: db.stats()["streaming"]["streams"]["feed"]["last_committed"] == 1
        )
        with client(server) as c2:
            c2.drain()
            assert c2.query("SELECT total FROM bal WHERE acct = 1") == [{"total": 5}]
            assert c2.query("SELECT count(*) FROM feed") == [{"count": 2}]
        # the budget taken by the orphaned request was released
        assert wait_until(lambda: db.stats()["server"]["inflight"]["now"] == 0)

    @pytest.mark.slow
    @pytest.mark.wallclock
    def test_idle_timeout_closes_quiet_connection(self, db):
        # a quiet connection gets one unsolicited typed error frame
        # ("idle timeout"), then EOF — read raw, since writing first
        # would RST away the buffered farewell
        with ReproServer(db, idle_timeout=0.15) as srv:
            c = client(srv)
            assert c.ping() == "pong"
            time.sleep(0.5)
            try:
                reply, _ = recv_frame(c._sock)
                assert reply["error"] == "ConnectionClosedError"
                assert "idle timeout" in reply["message"]
                with pytest.raises(ConnectionClosedError):
                    recv_frame(c._sock)  # and then the server hung up
            finally:
                c._sock.close()


# ---------------------------------------------------------------------------
# Typed errors across the wire
# ---------------------------------------------------------------------------

class TestTypedErrors:
    def test_batch_order_error_round_trip(self, server):
        with client(server) as c:
            c.ingest("feed", [(1, 1)])  # server-assigned id 1
            with pytest.raises(BatchOrderError, match=r"\[server\]"):
                c.ingest("feed", [(2, 2)], batch_id=1)  # behind the watermark
            assert c.ping() == "pong"  # a typed engine error is not fatal

    def test_schema_error_round_trip(self):
        def deploy_with_orphan(db, part=None):
            deploy(db, part)
            db.create_stream(schema("orphan", ("x", T.INTEGER)))

        pdb = PartitionedDatabase(
            num_partitions=2,
            deploy=deploy_with_orphan,
            partition_keys={"feed": "acct", "bal": "acct", "orphan": "nope"},
            workers="inline",
        )
        try:
            with ReproServer(pdb) as srv:
                with client(srv) as c:
                    with pytest.raises(SchemaError, match="not a declared column"):
                        c.ingest("orphan", [(1,)])
        finally:
            pdb.close()

    def test_engine_exception_is_typed_procedure_error(self, db, server):
        @db.register_procedure
        def keyerror(ctx):
            return {}["missing"]

        from repro.common.errors import ProcedureError

        with client(server) as c:
            with pytest.raises(ProcedureError, match="rolled back"):
                c.call("keyerror")
            assert c.ping() == "pong"  # engine abort did not kill the server

    def test_foreign_error_class_falls_back_to_server_error(self, db, server):
        # an exception class outside the wire registry (here the KeyError
        # an unknown stats section raises engine-side) still produces one
        # reply; the client re-raises it as the ServerError fallback
        with client(server) as c:
            with pytest.raises(ServerError, match="no_such_section"):
                c.stats(section="no_such_section")
            assert c.stats()["server"]["requests"]["stats"] == 2

    def test_raising_stats_section_degrades_instead_of_erroring(self, db, server):
        # a raising registered thunk no longer takes down the whole
        # snapshot: its section degrades to {"error": ...} over the wire
        db.add_stats_section("boom", lambda: 1 // 0)
        try:
            with client(server) as c:
                snap = c.stats()
                assert snap["boom"] == {
                    "error": "ZeroDivisionError: integer division or modulo by zero"
                }
                assert snap["server"]["requests"]["stats"] == 1
        finally:
            db.remove_stats_section("boom")


# ---------------------------------------------------------------------------
# Admission control / backpressure
# ---------------------------------------------------------------------------

class TestBackpressure:
    def test_overload_rejects_with_retryable_error(self, db):
        with ReproServer(db, max_inflight_per_conn=2, max_inflight_total=2) as srv:
            with client(srv) as c:
                for i in range(10):
                    c.post({"op": "ingest", "stream": "feed",
                            "rows": [[1, 1]], "batch_id": None})
                admitted = rejected = 0
                for _ in range(10):
                    try:
                        c.collect()
                        admitted += 1
                    except BackpressureError as exc:
                        assert exc.retryable is True
                        rejected += 1
                assert admitted >= 1 and rejected >= 1
                assert admitted + rejected == 10
                st = c.stats()["server"]
                assert st["rejected"]["total"] == rejected
                assert st["rejected"]["by_op"] == {"ingest": rejected}
        # every admitted batch applied; every rejected one never started
        db.drain()
        assert db.query("SELECT total FROM bal WHERE acct = 1") == [{"total": admitted}]

    @pytest.mark.slow
    @pytest.mark.wallclock
    def test_rejected_batch_retries_and_applies_exactly_once(self, db):
        with ReproServer(db, max_inflight_per_conn=1, max_inflight_total=1) as srv:
            blocker = client(srv)
            victim = client(srv)
            # saturate the global budget with a slow call...
            event = threading.Event()

            @db.register_procedure
            def slow(ctx):
                event.wait(5.0)

            blocker.post({"op": "call", "proc": "slow", "args": [], "key": None})
            # ...so the victim's first try is rejected, then retried once
            # the budget frees.  The retried batch must land exactly once.
            def release():
                time.sleep(0.15)
                event.set()

            t = threading.Thread(target=release)
            t.start()
            try:
                with pytest.raises(BackpressureError):
                    victim.ingest("feed", [(7, 3)])  # no retries: rejected
                victim.ingest("feed", [(7, 3)], retries=50, backoff=0.02)
                blocker.collect()
            finally:
                t.join()
            victim.drain()
            assert victim.query("SELECT total FROM bal WHERE acct = 7") == [{"total": 3}]
            assert victim.stats()["server"]["rejected"]["total"] >= 2
            blocker.close(), victim.close()

    @pytest.mark.slow
    @pytest.mark.wallclock
    def test_stats_exempt_from_admission(self, db):
        # observability must survive overload: with the budget saturated,
        # stats still answers instead of being rejected
        with ReproServer(db, max_inflight_per_conn=1, max_inflight_total=1) as srv:
            blocker = client(srv)
            event = threading.Event()

            @db.register_procedure
            def slow(ctx):
                event.set()
                time.sleep(0.3)

            blocker.post({"op": "call", "proc": "slow", "args": [], "key": None})
            assert event.wait(5.0)
            with client(srv) as c:
                st = c.stats()["server"]  # not a BackpressureError
                assert st["inflight"]["now"] == 1
            blocker.collect()
            blocker.close()

    def test_budget_validation(self, db):
        with pytest.raises(ValueError):
            ReproServer(db, max_inflight_per_conn=0)


# ---------------------------------------------------------------------------
# Concurrency: server-assigned batch ids
# ---------------------------------------------------------------------------

class TestConcurrentClients:
    def test_concurrent_ingest_never_sees_batch_order_error(self, db, server):
        # regression (PR 6 sequencing over the wire): N clients ingesting
        # the same stream concurrently under server-assigned ids must
        # serialise on the engine thread — ids never collide or reorder
        clients, errors = 4, []
        batches_each, rows_each = 10, 3

        def hammer(i):
            try:
                with client(server) as c:
                    for b in range(batches_each):
                        c.ingest("feed", [(i, 1)] * rows_each, retries=20)
            except Exception as exc:  # noqa: BLE001 - collected for the assert
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(i,)) for i in range(clients)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        db.drain()
        feed = db.stats()["streaming"]["streams"]["feed"]
        assert feed["last_committed"] == clients * batches_each  # gapless sequence
        assert feed["pending_batches"] == []  # nothing stuck out of order
        assert db.query("SELECT sum(total) FROM bal") == [
            {"sum": clients * batches_each * rows_each}
        ]


# ---------------------------------------------------------------------------
# Partitioned engine behind the server
# ---------------------------------------------------------------------------

class TestPartitionedServer:
    @pytest.fixture
    def pdb(self):
        p = PartitionedDatabase(
            num_partitions=2,
            deploy=deploy,
            partition_keys={"feed": "acct", "bal": "acct"},
            workers="inline",
        )
        yield p
        p.close()

    def test_split_ingest_and_keyed_routing(self, pdb):
        with ReproServer(pdb) as srv:
            with client(srv) as c:
                assert c.partitioned is True
                ids = c.ingest("feed", [(a, 10) for a in range(8)])
                assert set(ids) == {0, 1}  # both partitions took a sub-batch
                assert all(isinstance(pid, int) for pid in ids)
                c.drain()
                rs = c.execute("SELECT total FROM bal WHERE acct = 3", key=3)
                assert rs.rows == [(10,)]
                assert sum(r[0] for r in c.execute("SELECT total FROM bal").rows) == 80
                assert c.stats()["routing"]["ingest_sub_batches"] == 2

    def test_executemany_requires_key_position(self, pdb):
        with ReproServer(pdb) as srv:
            with client(srv) as c:
                with pytest.raises(ProtocolError, match="key_position"):
                    c.executemany(
                        "INSERT INTO bal (acct, total) VALUES (?, ?)", [(1, 1)]
                    )
                n = c.executemany(
                    "INSERT INTO bal (acct, total) VALUES (?, ?)",
                    [(a, a) for a in range(6)],
                    key_position=0,
                )
                assert n == 6

    def test_keyed_call_and_stats_section(self, pdb):
        with ReproServer(pdb) as srv:
            with client(srv) as c:
                c.execute("INSERT INTO bal (acct, total) VALUES (?, ?)", (4, 9), key=4)
                st = c.stats()
                assert st["num_partitions"] == 2
                assert st["server"]["connections"]["active"] == 1
            # section detaches with the server
        assert "server" not in pdb.stats()


# ---------------------------------------------------------------------------
# The async client
# ---------------------------------------------------------------------------

class TestAsyncClient:
    def test_async_round_trip(self, server):
        async def go():
            c = await AsyncReproClient.connect(*server.address)
            assert c.server_info["protocol"] == PROTOCOL_VERSION
            assert await c.ping() == "pong"
            await c.ingest("feed", [(1, 2), (2, 4)])
            await c.drain()
            rs = await c.execute("SELECT total FROM bal WHERE acct = 2")
            assert rs.rows == [(4,)]
            st = await c.stats()
            assert st["server"]["requests"]["ingest"] == 1
            await c.close()

        asyncio.run(go())

    def test_async_pipelining_and_typed_errors(self, server):
        async def go():
            c = await AsyncReproClient.connect(*server.address)
            for i in range(4):
                await c.post({"op": "ingest", "stream": "feed",
                              "rows": [[i, 1]], "batch_id": None})
            got = [await c.collect() for _ in range(4)]
            assert got == [[1], [2], [3], [4]]  # FIFO: server-assigned ids in order
            with pytest.raises(BatchOrderError):
                await c.ingest("feed", [(9, 9)], batch_id=2)
            await c.close()

        asyncio.run(go())


# ---------------------------------------------------------------------------
# Lifecycle and stats plumbing
# ---------------------------------------------------------------------------

class TestLifecycle:
    def test_serve_helper_and_double_close(self, db):
        srv = serve(db)
        with client(srv) as c:
            assert c.ping() == "pong"
        srv.close()
        srv.close()  # idempotent
        with pytest.raises(ServerError):
            srv.start()  # a server is one lifecycle

    def test_engine_stays_usable_after_close(self, db):
        srv = serve(db)
        with client(srv) as c:
            c.ingest("feed", [(1, 1)])
        srv.close()
        db.drain()
        assert db.query("SELECT total FROM bal WHERE acct = 1") == [{"total": 1}]

    def test_stats_section_hooks(self, db):
        db.add_stats_section("custom", lambda: {"x": 1})
        assert db.stats()["custom"] == {"x": 1}
        db.add_stats_section("custom", lambda: {"x": 2})  # replace
        assert db.stats()["custom"] == {"x": 2}
        db.remove_stats_section("custom")
        assert "custom" not in db.stats()
        db.remove_stats_section("custom")  # no-op

    def test_wire_framing_of_frames_is_shared(self, server):
        # the server speaks the exact framing of common/framing.py: a raw
        # socket driving frame helpers directly completes a full session
        sock = raw_connection(server)
        try:
            send_frame(sock, {"op": "hello", "protocol": PROTOCOL_VERSION})
            hello, _ = recv_frame(sock)
            assert hello["ok"] is True
            send_frame(sock, {"op": "ping"})
            pong, nbytes = recv_frame(sock)
            assert pong == {"ok": True, "value": "pong"}
            (length,) = struct.unpack(">I", HEADER.pack(nbytes - HEADER.size))
            assert length == nbytes - 4
        finally:
            sock.close()
