"""Vectorized bulk paths: differential equivalence with the row-at-a-time
paths (identical physical state on commit and after abort), compact range
undo records, batch atomicity, and stream garbage collection."""

import pytest

from repro.common.clock import CostModel
from repro.common.errors import ConstraintViolation, NoSuchRowError
from repro.common.types import ColumnType as T
from repro.engine import Database
from repro.storage.schema import schema
from repro.storage.table import Table


def make_table():
    t = Table(
        schema(
            "items",
            ("id", T.BIGINT, False),
            ("grp", T.INTEGER, False),
            ("val", T.FLOAT),
            ("name", T.VARCHAR),
            primary_key=["id"],
            unique_keys=[["name"]],
        )
    )
    t.create_index("items_grp_ord", ["grp"], ordered=True)
    return t


def rows_for(n, start=0):
    return [(start + i, (start + i) % 3, float(i) / 2.0, f"n{start + i}") for i in range(n)]


def physical_state(table):
    """Everything the differential tests compare: rows+rowids+arrival order
    (snapshot_state) and the full contents of every index."""
    snap = table.snapshot_state()
    indexes = {}
    for name, index in table.indexes.items():
        entries = []
        for _rowid, row in table.scan():
            key = table.schema.key_of(row, index.key_columns)
            if None not in key:
                entries.append((key, sorted(index.lookup(key))))
        indexes[name] = sorted(entries)
    return snap, indexes


# -- storage layer -------------------------------------------------------------


def test_insert_many_matches_row_at_a_time_exactly():
    row_t, bulk_t = make_table(), make_table()
    data = rows_for(50)
    for values in data:
        row_t.insert(values)
    rowids = bulk_t.insert_many(data)
    assert list(rowids) == list(range(1, 51))  # contiguous, arrival order
    assert physical_state(row_t) == physical_state(bulk_t)


def test_insert_many_coerces_and_applies_defaults():
    t = make_table()
    t.insert_many([("7", "1", "2.5", "a")])  # strings coerced per column type
    assert t.get(1) == (7, 1, 2.5, "a")


def test_insert_many_duplicate_against_existing_leaves_table_unchanged():
    t = make_table()
    t.insert_many(rows_for(5))
    before = physical_state(t)
    next_rowid = t.snapshot_state()["next_rowid"]
    with pytest.raises(ConstraintViolation):
        t.insert_many([(100, 0, 0.0, "x"), (3, 1, 1.0, "y")])  # id 3 exists
    assert physical_state(t) == before
    # the failed batch consumed no rowids (checked before any mutation)
    assert t.snapshot_state()["next_rowid"] == next_rowid


def test_insert_many_intra_batch_duplicate_leaves_table_unchanged():
    t = make_table()
    before = physical_state(t)
    with pytest.raises(ConstraintViolation):
        t.insert_many([(1, 0, 0.0, "a"), (2, 1, 1.0, "b"), (1, 2, 2.0, "c")])
    assert physical_state(t) == before


def test_insert_many_null_keys_not_indexed_but_rows_stored():
    t = make_table()
    t.insert_many([(1, 0, 0.0, None), (2, 1, 1.0, None)])  # NULL unique key twice
    assert t.row_count() == 2
    assert len(t.index("items_uniq0")) == 0  # NULL never indexes


def test_delete_many_and_delete_range_maintain_indexes():
    t = make_table()
    t.insert_many(rows_for(10))
    t.delete_many([2, 4, 6])  # ids 1, 3, 5
    assert t.row_count() == 7
    assert list(t.index("items_pkey").lookup((2,))) == [3]  # id 2 at rowid 3
    assert list(t.index("items_pkey").lookup((1,))) == []  # id 1 was deleted
    # range undo primitive: drop the tail the bulk insert appended; rows
    # and indexes match a table that never saw the batch (the rowid cursor
    # legitimately differs: consumed rowids are never reused)
    t2 = make_table()
    t2.insert_many(rows_for(4))
    rowids = t2.insert_many(rows_for(3, start=100))
    assert t2.delete_range(rowids.start, len(rowids)) == 3
    reference = make_table()
    reference.insert_many(rows_for(4))
    t2_snap, t2_indexes = physical_state(t2)
    ref_snap, ref_indexes = physical_state(reference)
    assert t2_snap["rows"] == ref_snap["rows"]
    assert t2_indexes == ref_indexes


def test_delete_many_unknown_rowid_deletes_nothing():
    t = make_table()
    t.insert_many(rows_for(3))
    before = physical_state(t)
    with pytest.raises(NoSuchRowError):
        t.delete_many([1, 99])
    assert physical_state(t) == before


def test_delete_many_duplicate_rowid_deletes_nothing():
    t = make_table()
    t.insert_many(rows_for(3))
    before = physical_state(t)
    with pytest.raises(NoSuchRowError, match="duplicate"):
        t.delete_many([2, 2])
    assert physical_state(t) == before  # rows AND indexes untouched


def test_ordered_index_bulk_insert_keeps_range_scans_sorted():
    t = make_table()
    t.insert_many(rows_for(30))
    t.insert_many(rows_for(30, start=100))
    idx = t.index("items_grp_ord")
    keys = [t.get(r)[1] for r in idx.range_scan()]
    assert keys == sorted(keys)
    assert len(keys) == 60


# -- engine layer: executemany bulk path ---------------------------------------


def engine_db():
    db = Database(cost=CostModel.free())
    db.create_table(
        schema(
            "users",
            ("id", T.BIGINT, False),
            ("name", T.VARCHAR),
            ("age", T.INTEGER),
            primary_key=["id"],
        )
    )
    return db


INSERT_USERS = "INSERT INTO users (id, name, age) VALUES (?, ?, ?)"


def user_rows(n):
    return [(i, f"u{i}", 20 + i) for i in range(n)]


def test_executemany_bulk_matches_per_row_execute_on_commit():
    bulk, perrow = engine_db(), engine_db()
    bulk.executemany(INSERT_USERS, user_rows(40))
    with perrow.transaction():
        for params in user_rows(40):
            perrow.execute(INSERT_USERS, params)
    assert (
        bulk.catalog.table("users").snapshot_state()
        == perrow.catalog.table("users").snapshot_state()
    )
    assert bulk.counters["rows_inserted"] == perrow.counters["rows_inserted"] == 40
    assert bulk.last_counters["rows_inserted"] == 40


def test_executemany_bulk_abort_restores_identical_state():
    bulk, perrow = engine_db(), engine_db()
    for db in (bulk, perrow):
        db.executemany(INSERT_USERS, user_rows(5))
    txn = bulk.begin()
    bulk.executemany(INSERT_USERS, user_rows(30)[5:])
    txn.abort()
    txn = perrow.begin()
    for params in user_rows(30)[5:]:
        perrow.execute(INSERT_USERS, params)
    txn.abort()
    # identical physical state after abort: rows, rowids (both paths consumed
    # the same 25 rowids), and arrival order
    assert (
        bulk.catalog.table("users").snapshot_state()
        == perrow.catalog.table("users").snapshot_state()
    )


def test_executemany_records_one_compact_undo_entry():
    db = Database(cost=CostModel.calibrated())
    db.create_table(
        schema("t", ("id", T.BIGINT, False), primary_key=["id"])
    )
    txn = db.begin()
    db.executemany("INSERT INTO t (id) VALUES (?)", [(i,) for i in range(100)])
    assert len(txn.undo) == 1  # one range record for 100 rows
    txn.abort()
    assert db.clock.events["rows_undone"] == 100  # charged per row undone
    assert db.execute("SELECT count(*) FROM t").scalar() == 0


def test_executemany_midbatch_violation_is_atomic():
    db = engine_db()
    db.executemany(INSERT_USERS, [(0, "u0", 20)])
    with pytest.raises(ConstraintViolation):
        db.executemany(INSERT_USERS, [(1, "a", 1), (0, "dup", 2), (2, "b", 3)])
    assert db.execute("SELECT count(*) FROM users").scalar() == 1
    # inside an explicit transaction the batch is one statement with its own
    # savepoint: the whole batch rolls back, the transaction stays usable
    with db.transaction():
        with pytest.raises(ConstraintViolation):
            db.executemany(INSERT_USERS, [(5, "e", 5), (0, "dup", 6)])
        db.execute(INSERT_USERS, (9, "ok", 9))
    assert db.query("SELECT id FROM users ORDER BY id") == [{"id": 0}, {"id": 9}]


def test_executemany_fallback_batch_is_atomic_in_explicit_txn():
    # UPDATE has no vectorized binder; the per-row fallback must still give
    # the whole batch one savepoint — a mid-batch failure rolls back the
    # rows already applied, leaving the transaction usable
    db = engine_db()
    db.executemany(INSERT_USERS, user_rows(3))
    with db.transaction():
        with pytest.raises(ConstraintViolation):
            db.executemany(
                "UPDATE users SET id = ? WHERE id = ?",
                [(100, 0), (1, 2)],  # second row collides with existing id 1
            )
        assert db.execute("SELECT count(*) FROM users WHERE id = 100").scalar() == 0
        db.execute("UPDATE users SET age = 99 WHERE id = 0")
    assert db.query("SELECT id, age FROM users ORDER BY id") == [
        {"id": 0, "age": 99}, {"id": 1, "age": 21}, {"id": 2, "age": 22},
    ]


def test_multirow_values_insert_uses_bulk_path():
    db = engine_db()
    db.execute("INSERT INTO users (id, name, age) VALUES (1, 'a', 1), (2, 'b', 2), (3, 'c', 3)")
    assert db.execute("SELECT count(*) FROM users").scalar() == 3
    txn = db.begin()
    db.execute("INSERT INTO users (id, name, age) VALUES (4, 'd', 4), (5, 'e', 5)")
    assert len(txn.undo) == 1  # one range record for the two-row VALUES list
    txn.abort()
    assert db.execute("SELECT count(*) FROM users").scalar() == 3


def test_insert_select_uses_bulk_path_and_rolls_back():
    db = engine_db()
    db.create_table(
        schema(
            "archive",
            ("id", T.BIGINT, False),
            ("name", T.VARCHAR),
            ("age", T.INTEGER),
            primary_key=["id"],
        )
    )
    db.executemany(INSERT_USERS, user_rows(8))
    txn = db.begin()
    db.execute("INSERT INTO archive (id, name, age) SELECT id, name, age FROM users")
    assert len(txn.undo) == 1
    txn.abort()
    assert db.execute("SELECT count(*) FROM archive").scalar() == 0
    db.execute("INSERT INTO archive (id, name, age) SELECT id, name, age FROM users")
    # same row contents in the same arrival order (rowids differ: the
    # aborted bulk insert consumed rowids, which are never reused)
    assert [row for _rid, row in db.catalog.table("archive").snapshot_state()["rows"]] == [
        row for _rid, row in db.catalog.table("users").snapshot_state()["rows"]
    ]


def test_executemany_column_subset_applies_defaults():
    # an in-order *prefix* of the columns must not take the full-width fast
    # path: unmentioned trailing columns get their defaults (here NULL)
    db = engine_db()
    db.executemany("INSERT INTO users (id, name) VALUES (?, ?)", [(1, "a"), (2, "b")])
    assert db.query("SELECT id, name, age FROM users ORDER BY id") == [
        {"id": 1, "name": "a", "age": None},
        {"id": 2, "name": "b", "age": None},
    ]
    # non-prefix subsets and permuted column lists route through the
    # generic binder and land values in the right slots
    db.executemany("INSERT INTO users (age, id) VALUES (?, ?)", [(30, 3)])
    assert db.query("SELECT id, name, age FROM users WHERE id = 3") == [
        {"id": 3, "name": None, "age": 30}
    ]


def test_executemany_parameter_arity_checked_per_row():
    from repro.common.errors import PlanningError

    db = engine_db()
    with pytest.raises(PlanningError, match="parameter"):
        db.executemany(INSERT_USERS, [(1, "a", 1), (2, "b")])
    assert db.execute("SELECT count(*) FROM users").scalar() == 0


# -- streaming layer: bulk ingest + garbage collection -------------------------


def stream_db():
    db = Database(cost=CostModel.free())
    db.create_stream(schema("s", ("v", T.INTEGER)))
    db.create_table(schema("sink", ("v", T.INTEGER)))
    return db


def test_ingest_bulk_apply_preserves_rows_metadata_and_order():
    db = stream_db()
    db.ingest("s", [(3,), (1,), (2,)])
    db.ingest("s", [(9,)])
    assert db.execute("SELECT v, __batch_id__, __seq__ FROM s").rows == [
        (3, 1, 1), (1, 1, 2), (2, 1, 3), (9, 2, 4),
    ]


def test_aborted_ingest_rolls_back_bulk_insert():
    db = stream_db()

    def explode(ctx, rows):
        raise RuntimeError("boom")

    db.create_ee_trigger("bomb", "s", explode)
    before = db.catalog.table("s").snapshot_state()["rows"]
    with pytest.raises(Exception, match="boom"):
        db.ingest("s", [(1,), (2,), (3,)])
    # the bulk insert was fully undone (rowids consumed, as per-row would)
    assert db.catalog.table("s").snapshot_state()["rows"] == before
    assert db.streaming.streams["s"].last_committed == 0


def test_drain_reclaims_fully_consumed_batches():
    db = stream_db()

    @db.register_procedure
    def consume(ctx, batch):
        for (v,) in batch.rows:
            ctx.execute("INSERT INTO sink (v) VALUES (?)", (v,))

    db.create_workflow("w", [("s", "consume")])
    for b in range(1, 11):
        db.ingest("s", [(b,), (b * 10,)])
    st = db.stats()["streaming"]
    # only the newest consumed batch is resident; the rest were reclaimed
    assert st["streams"]["s"]["rows"] == 2
    assert st["streams"]["s"]["rows_reclaimed"] == 18
    assert st["scheduler"]["rows_reclaimed"] == 18
    # the logical stream state is untouched by GC
    assert db.streaming.streams["s"].last_committed == 10
    assert db.execute("SELECT count(*) FROM sink").scalar() == 20
    # ingest continues normally after reclamation
    db.ingest("s", [(99,)])
    assert db.execute("SELECT v FROM s WHERE __batch_id__ = 11").rows == [(99,)]


def test_unconsumed_batches_are_never_reclaimed():
    db = stream_db()
    calls = []

    @db.register_procedure
    def flaky(ctx, batch):
        if not calls:
            calls.append(batch.batch_id)
            raise RuntimeError("transient")
        ctx.execute("INSERT INTO sink (v) VALUES (?)", (batch.rows[0][0],))

    db.create_workflow("w", [("s", "flaky")])
    with pytest.raises(Exception, match="transient"):
        db.ingest("s", [(1,)])
    # delivery failed: the batch is not consumed, so nothing is reclaimed
    assert db.stats()["streaming"]["streams"]["s"]["rows"] == 1
    assert db.stats()["streaming"]["streams"]["s"]["rows_reclaimed"] == 0
    db.drain()  # retry succeeds; batch 1 is now the horizon and is retained
    assert db.stats()["streaming"]["streams"]["s"]["rows"] == 1


def test_streams_without_subscribers_keep_all_rows():
    db = stream_db()
    for b in range(1, 6):
        db.ingest("s", [(b,)])
    db.drain()
    assert db.stats()["streaming"]["streams"]["s"]["rows"] == 5
    assert db.stats()["streaming"]["streams"]["s"]["rows_reclaimed"] == 0
