"""Streams, hidden metadata, batch ordering, EE triggers, and windows."""

import pytest

from repro.common.clock import CostModel
from repro.common.errors import (
    BatchOrderError,
    ConstraintViolation,
    SchemaError,
    StreamingError,
    TransactionError,
    WindowVisibilityError,
)
from repro.common.types import ColumnType as T
from repro.engine import Database
from repro.storage.schema import TableKind, schema


def fresh_db(cost=None):
    return Database(cost=cost if cost is not None else CostModel.free())


def votes_db(cost=None):
    db = fresh_db(cost)
    db.create_stream(schema("votes", ("phone", T.BIGINT), ("contestant", T.INTEGER)))
    return db


# -- streams and hidden metadata ----------------------------------------------


def test_create_stream_extends_schema_with_hidden_columns():
    db = votes_db()
    table = db.catalog.table("votes")
    assert table.schema.kind is TableKind.STREAM
    assert table.schema.column_names() == (
        "phone", "contestant", "__batch_id__", "__seq__",
    )
    assert table.schema.declared_columns() == ("phone", "contestant")
    assert table.schema.hidden_columns() == ("__batch_id__", "__seq__")


def test_select_star_hides_metadata_but_explicit_reference_works():
    db = votes_db()
    db.ingest("votes", [(100, 1), (101, 2)])
    result = db.execute("SELECT * FROM votes")
    assert result.columns == ("phone", "contestant")
    assert result.rows == [(100, 1), (101, 2)]
    meta = db.execute("SELECT __batch_id__, __seq__ FROM votes")
    assert meta.rows == [(1, 1), (1, 2)]


def test_stats_lists_declared_columns_only():
    db = votes_db()
    tables = db.stats()["tables"]
    assert tables["votes"]["columns"] == ["phone", "contestant"]
    assert tables["votes"]["kind"] == "STREAM"


def test_declared_schema_may_not_use_reserved_prefix():
    db = fresh_db()
    with pytest.raises(SchemaError, match="reserved"):
        db.create_stream(schema("bad", ("__x__", T.INTEGER)))


def test_create_table_rejects_stream_kind_schema():
    db = fresh_db()
    with pytest.raises(SchemaError, match="create_stream"):
        db.create_table(schema("s", ("v", T.INTEGER), kind=TableKind.STREAM))


def test_create_table_rejects_reserved_prefix_columns():
    # SELECT * / stats() hide '__'-prefixed columns everywhere, so a user
    # column by that name would silently vanish — reject it at DDL time.
    db = fresh_db()
    with pytest.raises(SchemaError, match="reserved"):
        db.create_table(schema("t", ("a", T.INTEGER), ("__b", T.INTEGER)))


def test_ingest_accepts_dict_rows_and_applies_defaults():
    db = fresh_db()
    db.create_stream(
        schema("ev", ("k", T.INTEGER, False), ("note", T.VARCHAR))
    )
    db.ingest("ev", [{"k": 1}, {"k": 2, "note": "hi"}])
    assert db.execute("SELECT k, note FROM ev").rows == [(1, None), (2, "hi")]


def test_ingest_rejects_wrong_arity_rows_atomically():
    db = votes_db()
    with pytest.raises(SchemaError, match="expects 2"):
        db.ingest("votes", [(1, 2), (3, 4, 5)])
    assert db.execute("SELECT count(*) FROM votes").scalar() == 0
    assert db.streaming.streams["votes"].last_committed == 0


# -- direct DML rejection (streams and windows are ingest-only) ----------------


def test_direct_dml_on_stream_rejected_with_ingest_hint():
    db = votes_db()
    for sql in (
        "INSERT INTO votes (phone, contestant) VALUES (1, 1)",
        "UPDATE votes SET contestant = 2",
        "DELETE FROM votes",
    ):
        with pytest.raises(StreamingError, match=r"db\.ingest"):
            db.execute(sql)


def test_direct_dml_on_window_rejected():
    db = votes_db()
    db.create_window("recent", "votes", size=4, slide=2)
    with pytest.raises(StreamingError, match="streaming layer"):
        db.execute("DELETE FROM recent")


def test_stream_reads_are_unrestricted():
    db = votes_db()
    db.ingest("votes", [(1, 1)])
    assert db.execute("SELECT count(*) FROM votes").scalar() == 1
    with db.transaction():
        assert db.execute("SELECT phone FROM votes").rows == [(1,)]


def test_rejected_dml_leaves_enclosing_transaction_usable():
    db = votes_db()
    db.create_table(schema("t", ("v", T.INTEGER)))
    with db.transaction():
        db.execute("INSERT INTO t (v) VALUES (1)")
        with pytest.raises(StreamingError):
            db.execute("DELETE FROM votes")
        db.execute("INSERT INTO t (v) VALUES (2)")
    assert db.execute("SELECT count(*) FROM t").scalar() == 2


# -- batch ordering ------------------------------------------------------------


def test_batch_ids_autoincrement_and_report_applied():
    db = votes_db()
    assert db.ingest("votes", [(1, 1)]) == [1]
    assert db.ingest("votes", [(2, 1)]) == [2]
    assert db.streaming.streams["votes"].last_committed == 2


def test_stale_or_duplicate_batch_rejected():
    db = votes_db()
    db.ingest("votes", [(1, 1)], batch_id=1)
    with pytest.raises(BatchOrderError, match="not after"):
        db.ingest("votes", [(2, 1)], batch_id=1)
    with pytest.raises(BatchOrderError, match="not after"):
        db.ingest("votes", [(2, 1)], batch_id=0)


def test_future_batch_queued_until_gap_fills():
    db = votes_db()
    assert db.ingest("votes", [(3, 3)], batch_id=3) == []      # queued
    assert db.ingest("votes", [(2, 2)], batch_id=2) == []      # queued
    assert db.execute("SELECT count(*) FROM votes").scalar() == 0
    # batch 1 fills the gap: all three apply, in batch-id order
    assert db.ingest("votes", [(1, 1)], batch_id=1) == [1, 2, 3]
    assert db.execute("SELECT phone, __batch_id__ FROM votes").rows == [
        (1, 1), (2, 2), (3, 3),
    ]
    assert db.streaming.streams["votes"].pending == {}


def test_queued_batch_id_cannot_be_submitted_twice():
    db = votes_db()
    db.ingest("votes", [(5, 1)], batch_id=5)
    with pytest.raises(BatchOrderError, match="already queued"):
        db.ingest("votes", [(5, 2)], batch_id=5)


def test_queued_batch_rows_validated_at_submission_time():
    # A malformed future batch must fail *now*, not poison the later
    # gap-filling ingest that would apply it.
    db = votes_db()
    with pytest.raises(SchemaError, match="expects 2"):
        db.ingest("votes", [(1, 2, 3)], batch_id=2)
    assert db.streaming.streams["votes"].pending == {}
    assert db.ingest("votes", [(1, 1)], batch_id=1) == [1]


def test_failed_gap_fill_batch_can_be_retried_by_reingest():
    db = fresh_db()
    db.create_stream(schema("keyed", ("k", T.INTEGER, False), primary_key=["k"]))
    db.ingest("keyed", [(1,)], batch_id=1)
    # queue batch 3 whose rows will violate the stream's key once applied
    db.ingest("keyed", [(1,)], batch_id=3)
    with pytest.raises(ConstraintViolation):
        db.ingest("keyed", [(2,)], batch_id=2)  # gap-fill of 3 fails
    assert db.streaming.streams["keyed"].last_committed == 2
    assert sorted(db.streaming.streams["keyed"].pending) == [3]
    # explicit re-ingest of the stuck batch replaces it and applies
    assert db.ingest("keyed", [(3,)], batch_id=3) == [3]
    assert db.streaming.streams["keyed"].pending == {}
    assert db.execute("SELECT k FROM keyed").rows == [(1,), (2,), (3,)]


def test_ingest_rejected_inside_open_transaction():
    db = votes_db()
    with db.transaction():
        with pytest.raises(TransactionError, match="ctx.emit"):
            db.ingest("votes", [(1, 1)])


def test_aborted_ingest_is_atomic_and_batch_id_reusable():
    db = fresh_db()
    db.create_stream(
        schema("keyed", ("k", T.INTEGER, False), primary_key=["k"])
    )
    with pytest.raises(ConstraintViolation):
        db.ingest("keyed", [(1,), (2,), (1,)])  # dup key on 3rd row
    assert db.execute("SELECT count(*) FROM keyed").scalar() == 0
    assert db.streaming.streams["keyed"].last_committed == 0
    # the failed batch id was never committed, so it can be retried
    assert db.ingest("keyed", [(1,), (2,)]) == [1]


# -- EE triggers ---------------------------------------------------------------


def test_ee_trigger_fires_in_ingesting_transaction():
    db = votes_db(cost=CostModel.calibrated())
    db.create_table(schema("audit", ("phone", T.BIGINT), ("batch", T.BIGINT)))

    def on_votes(ctx, rows):
        for phone, _contestant in rows:
            ctx.execute(
                "INSERT INTO audit (phone, batch) VALUES (?, ?)",
                (phone, ctx.batch_id),
            )

    db.create_ee_trigger("audit_votes", "votes", on_votes)
    fires_before = db.clock.events.get("ee_trigger", 0)
    db.ingest("votes", [(100, 1), (101, 2)])
    db.ingest("votes", [(102, 1)])
    assert db.execute("SELECT phone, batch FROM audit").rows == [
        (100, 1), (101, 1), (102, 2),
    ]
    # one firing per batch-insert statement
    assert db.clock.events["ee_trigger"] - fires_before == 2


def test_failing_ee_trigger_aborts_whole_ingest():
    db = votes_db()
    db.create_table(schema("audit", ("phone", T.BIGINT)))

    def explode(ctx, rows):
        ctx.execute("INSERT INTO audit (phone) VALUES (?)", (rows[0][0],))
        raise RuntimeError("trigger failure")

    db.create_ee_trigger("boom", "votes", explode)
    with pytest.raises(RuntimeError, match="trigger failure"):
        db.ingest("votes", [(100, 1)])
    # everything rolled back: stream rows, trigger writes, watermark
    assert db.execute("SELECT count(*) FROM votes").scalar() == 0
    assert db.execute("SELECT count(*) FROM audit").scalar() == 0
    assert db.streaming.streams["votes"].last_committed == 0


def test_ee_trigger_emit_cascades_within_one_transaction():
    db = votes_db()
    db.create_stream(schema("loud", ("phone", T.BIGINT)))

    def forward(ctx, rows):
        ctx.emit("loud", [(phone,) for phone, _c in rows])

    db.create_ee_trigger("forward", "votes", forward)
    db.ingest("votes", [(100, 1), (101, 2)])
    assert db.execute("SELECT phone FROM loud").rows == [(100,), (101,)]
    assert db.streaming.streams["loud"].last_committed == 1


def test_ee_trigger_requires_stream_and_unique_name():
    db = votes_db()
    db.create_window("w", "votes", size=2, slide=1)
    from repro.common.errors import TriggerError

    with pytest.raises(StreamingError, match="not a STREAM"):
        db.create_ee_trigger("t", "w", lambda ctx, rows: None)
    db.create_ee_trigger("t", "votes", lambda ctx, rows: None)
    with pytest.raises(TriggerError, match="already exists"):
        db.create_pe_trigger("t", "votes", lambda d, b: None)


# -- PE triggers ---------------------------------------------------------------


def test_pe_trigger_fires_after_commit_with_batch():
    db = votes_db(cost=CostModel.calibrated())
    seen = []

    def on_commit(d, batch):
        # runs outside any transaction: free to start its own
        assert d.stats()["transactions"]["open"] is False
        seen.append((batch.stream, batch.batch_id, batch.rows))

    db.create_pe_trigger("watch", "votes", on_commit)
    db.ingest("votes", [(100, 1)])
    db.ingest("votes", [(101, 2)])
    assert seen == [("votes", 1, ((100, 1),)), ("votes", 2, ((101, 2),))]
    assert db.clock.events["pe_trigger"] == 2


def test_aborted_ingest_fires_no_pe_triggers():
    db = fresh_db(cost=CostModel.calibrated())
    db.create_stream(schema("keyed", ("k", T.INTEGER, False), primary_key=["k"]))
    seen = []
    db.create_pe_trigger("watch", "keyed", lambda d, b: seen.append(b.batch_id))
    with pytest.raises(ConstraintViolation):
        db.ingest("keyed", [(1,), (1,)])
    assert seen == []
    assert db.clock.events.get("pe_trigger", 0) == 0
    assert db.stats()["streaming"]["scheduler"]["pending_deliveries"] == 0


# -- windows -------------------------------------------------------------------


def test_tuple_window_slides_and_evicts():
    db = votes_db(cost=CostModel.calibrated())
    db.create_window("recent", "votes", size=4, slide=2)
    db.ingest("votes", [(1, 1)])
    # one staged tuple: below the slide threshold, nothing visible
    assert db.execute("SELECT count(*) FROM recent").scalar() == 0
    db.ingest("votes", [(2, 1)])
    assert db.execute("SELECT phone FROM recent").rows == [(1,), (2,)]
    db.ingest("votes", [(3, 1), (4, 1), (5, 1)])
    # slide activated (3, 4); 5 stays staged; size 4 keeps 1..4
    assert db.execute("SELECT phone FROM recent").rows == [(1,), (2,), (3,), (4,)]
    db.ingest("votes", [(6, 1)])
    # (5, 6) activate; eviction drops (1, 2)
    assert db.execute("SELECT phone FROM recent").rows == [(3,), (4,), (5,), (6,)]
    assert db.clock.events["window_slide"] == 3


def test_tuple_window_with_large_slide_keeps_all_activated_rows():
    # slide > size/2 must not evict freshly activated rows (negative
    # eviction excess is "nothing to evict", not a slice from the front)
    db = votes_db()
    db.create_window("big", "votes", size=10, slide=6)
    db.ingest("votes", [(i, 0) for i in range(6)])
    assert db.execute("SELECT count(*) FROM big").scalar() == 6
    db.ingest("votes", [(i, 0) for i in range(6, 12)])
    # second slide: 12 active, evict the oldest 2 down to size 10
    assert db.execute("SELECT phone FROM big").rows == [
        (i,) for i in range(2, 12)
    ]


def test_emit_conflicting_with_queued_ingest_batches_rejected():
    db = votes_db()
    db.create_stream(schema("side", ("v", T.INTEGER)))
    db.ingest("side", [(9,)], batch_id=9)  # queued future batch

    @db.register_procedure
    def pusher(ctx):
        ctx.emit("side", [(1,)], batch_id=9)

    from repro.common.errors import ProcedureError

    with pytest.raises(ProcedureError, match="queued ingest batches"):
        db.call("pusher")
    # the queued batch is still intact and applies once the gap fills
    assert sorted(db.streaming.streams["side"].pending) == [9]


def test_batch_window_keeps_last_n_batches():
    db = votes_db()
    db.create_window("by_batch", "votes", size=2, slide=1, unit="batches")
    db.ingest("votes", [(1, 1), (2, 1)])
    db.ingest("votes", [(3, 1)])
    db.ingest("votes", [(4, 1), (5, 1)])
    # window = batches {2, 3}
    assert db.execute("SELECT phone, __batch_id__ FROM by_batch").rows == [
        (3, 2), (4, 3), (5, 3),
    ]


def test_window_spec_validation():
    db = votes_db()
    with pytest.raises(SchemaError, match="unit"):
        db.create_window("w1", "votes", size=2, slide=1, unit="years")
    with pytest.raises(SchemaError, match="exceed"):
        db.create_window("w2", "votes", size=2, slide=3)
    with pytest.raises(SchemaError, match=">= 1"):
        db.create_window("w3", "votes", size=0, slide=0)


def test_window_drops_source_key_constraints():
    # A window holds several batches, so a per-batch key is not unique
    # across its contents: the window schema must drop the stream's keys.
    db = fresh_db()
    db.create_stream(schema("keyed", ("k", T.INTEGER, False), primary_key=["k"]))
    window = db.create_window("wk", "keyed", size=4, slide=1, unit="batches")
    assert window.table.schema.primary_key == ()
    assert window.table.schema.unique_keys == ()
    assert window.table.indexes == {}
    db.ingest("keyed", [(1,)])
    assert db.execute("SELECT k FROM wk").rows == [(1,)]


def test_owned_window_visible_only_inside_owner():
    db = votes_db()

    @db.register_procedure
    def counter(ctx):
        return ctx.execute("SELECT count(*) FROM mine").scalar()

    @db.register_procedure
    def snoop(ctx):
        return ctx.execute("SELECT count(*) FROM mine").scalar()

    db.create_window("mine", "votes", size=2, slide=1, owner="counter")
    assert db.call("counter") == 0
    with pytest.raises(WindowVisibilityError, match="ad-hoc SQL"):
        db.execute("SELECT count(*) FROM mine")
    with pytest.raises(Exception, match="counter"):
        db.call("snoop")


def test_window_owner_must_be_registered():
    db = votes_db()
    with pytest.raises(StreamingError, match="not a registered"):
        db.create_window("w", "votes", size=2, slide=1, owner="ghost")


def test_ingest_rejected_while_owned_window_has_no_delivery_path():
    # An owned window only advances via deliveries of its source stream to
    # its owner; ingesting while no workflow subscribes the owner would
    # silently bypass the window forever — fail fast instead.
    db = votes_db()
    db.register_procedure("agg", lambda ctx, batch: None)
    db.create_window("mine", "votes", size=2, slide=1, owner="agg")
    with pytest.raises(StreamingError, match="not subscribed"):
        db.ingest("votes", [(1, 1)])
    assert db.execute("SELECT count(*) FROM votes").scalar() == 0
    # wiring the owner into a workflow makes the same ingest legal
    db.create_workflow("w", [("votes", "agg")])
    assert db.ingest("votes", [(1, 1)]) == [1]
    assert db.call("agg", None) is None  # owner can read its window
    assert db.streaming.windows["mine"].counts() == {
        "active_rows": 1, "staged_rows": 0,
    }


def test_drop_stream_with_dependents_rejected_then_cascades_manually():
    db = votes_db()
    db.create_window("recent", "votes", size=2, slide=1)
    with pytest.raises(StreamingError, match="referenced by"):
        db.drop_table("votes")
    db.drop_table("recent")
    db.drop_table("votes")
    assert not db.catalog.has_table("votes")
    assert "votes" not in db.streaming.streams
