"""The stats-section contract on both engine facades and over the wire:
registration, shadowing, degradation, and selective ``stats(section=)``."""

import pytest

from repro.common.clock import CostModel
from repro.common.errors import ServerError
from repro.common.types import ColumnType as T
from repro.engine import Database
from repro.partition import PartitionedDatabase
from repro.server import ReproClient, ReproServer
from repro.storage.schema import schema


def fresh_db():
    return Database(cost=CostModel.free())


def part_deploy(db, part):
    db.create_stream(schema("feed", ("k", T.INTEGER), ("v", T.INTEGER)))


def fresh_pdb():
    return PartitionedDatabase(
        2, part_deploy, partition_keys={"feed": "k"}, workers="inline"
    )


def facades():
    """Both stats facades under one id-labelled parametrisation."""
    return [
        pytest.param(fresh_db, id="database"),
        pytest.param(fresh_pdb, id="partitioned"),
    ]


def close(db):
    if hasattr(db, "close"):
        db.close()


# -- registration behaviour, identical on both facades ------------------------


@pytest.mark.parametrize("make", facades())
def test_registered_section_appears_in_snapshot_and_selectively(make):
    db = make()
    try:
        db.add_stats_section("custom", lambda: {"answer": 42})
        assert db.stats()["custom"] == {"answer": 42}
        assert db.stats(section="custom") == {"answer": 42}
    finally:
        close(db)


@pytest.mark.parametrize("make", facades())
def test_registered_section_shadows_builtin(make):
    db = make()
    try:
        assert isinstance(db.stats()["transactions"], dict)  # a real built-in
        db.add_stats_section("transactions", lambda: "shadowed")
        assert db.stats()["transactions"] == "shadowed"
        assert db.stats(section="transactions") == "shadowed"
        db.remove_stats_section("transactions")
        assert isinstance(db.stats()["transactions"], dict)  # built-in restored
    finally:
        close(db)


@pytest.mark.parametrize("make", facades())
def test_raising_thunk_degrades_without_breaking_stats(make):
    db = make()
    try:
        db.add_stats_section("boom", lambda: 1 // 0)
        snap = db.stats()
        assert snap["boom"] == {
            "error": "ZeroDivisionError: integer division or modulo by zero"
        }
        # the rest of the snapshot survived
        assert "transactions" in snap
        assert db.stats(section="boom")["error"].startswith("ZeroDivisionError")
    finally:
        close(db)


@pytest.mark.parametrize("make", facades())
def test_reregistration_replaces_and_removal_is_idempotent(make):
    db = make()
    try:
        db.add_stats_section("v", lambda: 1)
        db.add_stats_section("v", lambda: 2)
        assert db.stats(section="v") == 2
        db.remove_stats_section("v")
        db.remove_stats_section("v")  # absent: no-op
        with pytest.raises(KeyError):
            db.stats(section="v")
    finally:
        close(db)


@pytest.mark.parametrize("make", facades())
def test_unknown_section_raises_keyerror_naming_known_sections(make):
    db = make()
    try:
        with pytest.raises(KeyError, match="transactions"):
            db.stats(section="no_such_section")
    finally:
        close(db)


# -- selective fetch returns the same data as the full snapshot ---------------


def test_database_selective_sections_match_full_snapshot():
    db = fresh_db()
    db.create_stream(schema("s", ("v", T.INTEGER)))
    db.ingest("s", [(1,), (2,)])
    full = db.stats()
    for name in ("transactions", "streaming", "tables", "counters"):
        assert db.stats(section=name) == full[name]


def test_partitioned_selective_sections_match_full_snapshot():
    pdb = fresh_pdb()
    try:
        pdb.ingest("feed", [(k, k) for k in range(8)])
        full = pdb.stats()
        for name in ("transactions", "table_rows", "num_partitions", "partitions"):
            assert pdb.stats(section=name) == full[name]
    finally:
        pdb.close()


# -- over the wire ------------------------------------------------------------


def test_server_stats_section_over_the_wire():
    db = fresh_db()
    db.create_stream(schema("s", ("v", T.INTEGER)))
    with ReproServer(db, port=0) as server:
        with ReproClient(*server.address) as client:
            client.ingest("s", [(1,)])
            section = client.stats(section="transactions")
            assert section["committed"] >= 1
            # the server front door registers its own section on the engine
            assert client.stats(section="server")["requests"]["ingest"] == 1
            # unknown sections cross as a (foreign) KeyError -> ServerError
            with pytest.raises(ServerError, match="no_such"):
                client.stats(section="no_such")
            # full snapshot still includes every section plus the server's
            full = client.stats()
            assert "transactions" in full and "server" in full
