"""The observability layer: histograms, registry, tracer, the engine's
span taxonomy, cross-process trace stitching, and tracetool rendering."""

import subprocess
import sys
from pathlib import Path

import pytest

from repro.common.clock import CostModel
from repro.common.types import ColumnType as T
from repro.engine import Database
from repro.obs import (
    BUCKET_BOUNDS_US,
    DISABLED,
    LatencyHistogram,
    MetricsRegistry,
    NOOP_SPAN,
    Observability,
    Tracer,
    observability,
    read_jsonl,
    write_jsonl,
)
from repro.partition import PartitionedDatabase
from repro.server import ReproClient, ReproServer
from repro.storage.schema import schema

REPO = Path(__file__).resolve().parent.parent


def fresh_db(**kw):
    kw.setdefault("cost", CostModel.free())
    return Database(**kw)


def stream_db(**kw):
    db = fresh_db(**kw)
    db.create_stream(schema("s", ("v", T.INTEGER)))
    return db


# -- LatencyHistogram ---------------------------------------------------------


def test_histogram_observe_and_percentiles():
    hist = LatencyHistogram()
    for us in (10, 20, 30, 40, 1000):
        hist.observe(us)
    assert hist.count == 5
    assert hist.sum_us == 1100
    assert hist.min_us == 10
    assert hist.max_us == 1000
    # percentiles are bucket-interpolated but clamped to observed min/max
    assert hist.min_us <= hist.percentile(0.50) <= hist.max_us
    assert hist.percentile(0.99) <= hist.max_us
    assert hist.percentile(1.0) == hist.max_us


def test_histogram_single_sample_reports_itself_exactly():
    hist = LatencyHistogram()
    hist.observe(123.0)
    assert hist.percentile(0.50) == 123.0
    assert hist.percentile(0.99) == 123.0


def test_histogram_empty_and_negative():
    hist = LatencyHistogram()
    assert hist.percentile(0.99) == 0.0
    assert hist.mean_us == 0.0
    hist.observe(-5.0)  # clock weirdness clamps to zero, never raises
    assert hist.min_us == 0.0


def test_histogram_merge_is_exact_for_counts_and_bounds():
    a, b = LatencyHistogram(), LatencyHistogram()
    for us in (5, 15, 80):
        a.observe(us)
    for us in (1, 3000):
        b.observe(us)
    a.merge(b.snapshot())
    assert a.count == 5
    assert a.sum_us == 5 + 15 + 80 + 1 + 3000
    assert a.min_us == 1
    assert a.max_us == 3000
    # bucket counts added as vectors
    assert sum(a.counts) == 5


def test_histogram_merged_classmethod_and_from_snapshot():
    a, b = LatencyHistogram(), LatencyHistogram()
    a.observe(10)
    b.observe(100)
    merged = LatencyHistogram.merged([a.snapshot(), b.snapshot()])
    assert merged.count == 2
    clone = LatencyHistogram.from_snapshot(a.snapshot())
    assert clone.count == 1 and clone.min_us == 10


def test_histogram_merge_rejects_foreign_bucket_layout():
    hist = LatencyHistogram()
    with pytest.raises(ValueError, match="buckets"):
        hist.merge({"count": 1, "buckets": [0] * 5})


def test_bucket_layout_is_powers_of_two():
    assert BUCKET_BOUNDS_US[0] == 1
    assert BUCKET_BOUNDS_US[-1] == 2 ** 26
    assert len(BUCKET_BOUNDS_US) == 27


# -- MetricsRegistry ----------------------------------------------------------


def test_registry_counters_gauges_histograms():
    reg = MetricsRegistry()
    reg.inc("batches")
    reg.inc("batches", 2)
    reg.gauge("depth", 7)
    reg.gauge("live", lambda: 42)  # callables re-evaluate at snapshot
    reg.observe("txn", 100.0)
    snap = reg.snapshot()
    assert snap["counters"] == {"batches": 3}
    assert snap["gauges"] == {"depth": 7, "live": 42}
    assert snap["histograms"]["txn"]["count"] == 1


def test_registry_merge_snapshots_semantics():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.inc("n", 1)
    b.inc("n", 2)
    a.gauge("rows", 10)
    b.gauge("rows", 5)
    a.gauge("mode", "full")  # non-numeric: last writer wins
    b.gauge("mode", "metrics")
    a.gauge("up", True)  # bools are not summed
    b.gauge("up", True)
    a.observe("txn", 50.0)
    b.observe("txn", 150.0)
    merged = MetricsRegistry.merge_snapshots([a.snapshot(), b.snapshot(), {}])
    assert merged["counters"] == {"n": 3}
    assert merged["gauges"]["rows"] == 15
    assert merged["gauges"]["mode"] == "metrics"
    assert merged["gauges"]["up"] is True
    assert merged["histograms"]["txn"]["count"] == 2
    assert merged["histograms"]["txn"]["min_us"] == 50.0
    assert merged["histograms"]["txn"]["max_us"] == 150.0


# -- Tracer -------------------------------------------------------------------


def test_spans_nest_and_share_a_trace():
    tracer = Tracer(process="t")
    with tracer.start("outer") as outer:
        with tracer.start("inner") as inner:
            assert inner.trace_id == outer.trace_id
            assert inner.parent_id == outer.span_id
    spans = tracer.drain()
    assert [s["name"] for s in spans] == ["inner", "outer"]  # finish order
    assert all(s["process"] == "t" for s in spans)
    assert all(s["duration_us"] >= 0 for s in spans)


def test_detached_spans_do_not_become_parents():
    tracer = Tracer()
    with tracer.start("root") as root:
        detached = tracer.start("rpc", detached=True)
        with tracer.start("child") as child:
            # the stacked root, not the detached rpc span, is the parent
            assert child.parent_id == root.span_id
        detached.finish()
    assert detached.parent_id == root.span_id


def test_ring_is_bounded_and_counts_drops():
    tracer = Tracer(capacity=4)
    for i in range(10):
        tracer.start(f"s{i}").finish()
    assert len(tracer.spans()) == 4
    stats = tracer.stats()
    assert stats == {"buffered": 4, "capacity": 4, "emitted": 10, "dropped": 6}
    assert [s["name"] for s in tracer.drain()] == ["s6", "s7", "s8", "s9"]
    assert tracer.spans() == []


def test_activate_adopts_remote_parent():
    upstream, downstream = Tracer(process="up"), Tracer(process="down")
    with upstream.start("request") as remote:
        ctx = remote.context()
    with downstream.activate(ctx):
        with downstream.start("work") as span:
            assert span.trace_id == remote.trace_id
            assert span.parent_id == remote.span_id


@pytest.mark.parametrize(
    "ctx", [None, "garbage", {}, {"trace_id": 7, "span_id": "x"}, {"trace_id": "t"}]
)
def test_activate_malformed_context_is_a_noop(ctx):
    tracer = Tracer()
    with tracer.activate(ctx):
        with tracer.start("solo") as span:
            assert span.parent_id is None  # new trace root


def test_finish_is_idempotent_and_records_errors():
    tracer = Tracer()
    span = tracer.start("once")
    span.finish(ok=True)
    first = span.duration_us
    span.finish(ok=False)  # ignored
    assert span.duration_us == first
    assert tracer.drain()[0]["tags"] == {"ok": True}
    with pytest.raises(RuntimeError):
        with tracer.start("boom"):
            raise RuntimeError("x")
    assert tracer.drain()[0]["tags"] == {"error": "RuntimeError"}


def test_metrics_only_mode_feeds_histograms_without_buffering():
    obs = Observability(tracing=False)
    with obs.span("txn"):
        pass
    assert obs.tracer.spans() == []
    assert obs.tracer.emitted == 1
    assert obs.metrics.snapshot()["histograms"]["txn"]["count"] == 1


def test_write_and_read_jsonl_roundtrip(tmp_path):
    tracer = Tracer()
    tracer.start("a").finish()
    tracer.start("b").finish()
    path = tmp_path / "spans.jsonl"
    assert write_jsonl(str(path), tracer.drain()) == 2
    back = read_jsonl(str(path))
    assert {s["name"] for s in back} == {"a", "b"}


# -- the obs= facade ----------------------------------------------------------


def test_observability_normaliser():
    assert observability(None) is DISABLED
    assert observability("off") is DISABLED
    assert observability(DISABLED) is DISABLED
    metrics_only = observability("metrics", process="p000")
    assert metrics_only.enabled and not metrics_only.tracing
    assert metrics_only.tracer.process == "p000"
    full = observability("full")
    assert full.enabled and full.tracing
    inst = Observability()
    assert observability(inst) is inst
    with pytest.raises(ValueError, match="obs must be"):
        observability("loud")


def test_disabled_is_inert():
    assert DISABLED.enabled is False
    assert DISABLED.span("x") is NOOP_SPAN
    assert NOOP_SPAN.set(a=1) is NOOP_SPAN
    assert NOOP_SPAN.context() is None
    with DISABLED.span("x"):
        pass
    DISABLED.observe("x", 1.0)
    DISABLED.count("x")
    assert DISABLED.stats_section() == {"enabled": False}


# -- engine span taxonomy -----------------------------------------------------


def test_database_traces_txn_and_procedure_spans():
    db = fresh_db(obs="full")
    db.create_table(schema("t", ("v", T.INTEGER)))

    @db.register_procedure
    def put(ctx, v):
        ctx.execute("INSERT INTO t (v) VALUES (?)", (v,))

    db.call("put", 1)
    spans = db.obs.tracer.drain()
    names = [s["name"] for s in spans]
    assert "procedure" in names and "txn" in names
    txn = next(s for s in spans if s["name"] == "txn")
    assert txn["tags"]["outcome"] == "commit"
    proc = next(s for s in spans if s["name"] == "procedure")
    assert txn["parent_id"] == proc["span_id"]  # txn nests under the call


def test_database_ingest_spans_cover_triggers_and_delivery():
    db = stream_db(obs="full")
    db.create_table(schema("sink", ("v", T.INTEGER)))
    db.create_ee_trigger(
        "audit", "s",
        lambda ctx, rows: ctx.execute("INSERT INTO sink (v) VALUES (?)", (len(rows),)),
    )

    @db.register_procedure
    def absorb(ctx, batch):
        pass

    db.create_workflow("w", [("s", "absorb")])
    db.create_pe_trigger("watch", "s", lambda d, b: None)
    db.ingest("s", [(1,), (2,)])
    names = [s["name"] for s in db.obs.tracer.drain()]
    for expected in ("ingest", "txn", "trigger.ee", "delivery", "trigger.pe"):
        assert expected in names, f"missing {expected} in {names}"


def test_obs_section_backs_stats():
    db = stream_db(obs="full")
    db.ingest("s", [(1,)])
    section = db.stats(section="obs")
    assert section["enabled"] is True and section["tracing"] is True
    assert section["histograms"]["txn"]["count"] >= 1
    assert section["spans"]["emitted"] >= 2
    # and the same section rides the full snapshot
    assert db.stats()["obs"]["histograms"]["txn"]["count"] >= 1


def test_disabled_database_reports_disabled_section():
    db = stream_db()
    db.ingest("s", [(1,)])
    assert db.stats(section="obs") == {"enabled": False}


def test_group_commit_log_spans(tmp_path):
    db = stream_db(recovery_dir=str(tmp_path), group_commit=1, obs="full")
    db.ingest("s", [(1,)])
    spans = db.obs.tracer.drain()
    fsync = [s for s in spans if s["name"] == "log.fsync"]
    assert fsync and fsync[0]["tags"]["records"] >= 1
    hists = db.stats(section="obs")["histograms"]
    assert hists["log.buffer_wait"]["count"] >= 1


# -- partitioned: merged sections and stitched worker spans -------------------


def part_deploy(db, part):
    db.create_stream(schema("feed", ("k", T.INTEGER), ("v", T.INTEGER)))


def test_partitioned_obs_merges_worker_histograms():
    with PartitionedDatabase(
        2, part_deploy, partition_keys={"feed": "k"}, workers="inline", obs="full"
    ) as pdb:
        pdb.ingest("feed", [(k, k) for k in range(8)])
        section = pdb.stats(section="obs")
        assert section["enabled"] is True
        # both partitions ran a txn; the merged histogram sees them all
        assert section["histograms"]["txn"]["count"] >= 2
        assert section["spans"]["emitted"] > 0


def test_partitioned_trace_spans_stitch_coord_and_workers():
    with PartitionedDatabase(
        2, part_deploy, partition_keys={"feed": "k"}, workers="inline", obs="full"
    ) as pdb:
        pdb.ingest("feed", [(k, k) for k in range(8)])
        spans = pdb.trace_spans()
    processes = {s["process"] for s in spans}
    assert {"coord", "p000", "p001"} <= processes
    ingest_root = next(s for s in spans if s["name"] == "coord.ingest")
    same_trace = [s for s in spans if s["trace_id"] == ingest_root["trace_id"]]
    names = {s["name"] for s in same_trace}
    assert {"coord.ingest", "ingest.split", "rpc.ingest", "worker.ingest",
            "ingest", "txn"} <= names


def test_partitioned_disabled_obs_section():
    with PartitionedDatabase(
        2, part_deploy, partition_keys={"feed": "k"}, workers="inline"
    ) as pdb:
        assert pdb.stats(section="obs") == {"enabled": False}
        assert pdb.trace_spans() == []


# -- end to end: client -> server -> workers -> tracetool ---------------------


def test_stitched_trace_renders_with_tracetool(tmp_path):
    with PartitionedDatabase(
        2,
        part_deploy,
        partition_keys={"feed": "k"},
        workers="inline",
        recovery_dir=str(tmp_path / "wal"),
        group_commit=1,
        obs="full",
    ) as pdb:
        with ReproServer(pdb, port=0) as server:
            with ReproClient(*server.address, obs="full") as client:
                client.ingest("feed", [(k, k) for k in range(8)])
                spans = client.trace_spans()
        spans += pdb.trace_spans()

    trace_ids = {s["trace_id"] for s in spans}
    assert len(trace_ids) == 1, f"trace broke into {len(trace_ids)} pieces"
    names = {s["name"] for s in spans}
    assert {"client.ingest", "server.request", "coord.ingest", "rpc.ingest",
            "worker.ingest", "ingest", "txn", "log.fsync"} <= names

    path = tmp_path / "trace.jsonl"
    write_jsonl(str(path), spans)
    out = subprocess.run(
        [sys.executable, str(REPO / "tools" / "tracetool.py"), str(path), "--all"],
        capture_output=True, text=True, timeout=60,
    )
    assert out.returncode == 0, out.stderr
    for stage in ("client.ingest", "server.request", "worker.ingest", "log.fsync"):
        assert stage in out.stdout
    # one tree: the client root renders first at depth zero
    assert "└─ client.ingest" in out.stdout or "├─ client.ingest" in out.stdout


def test_server_queue_wait_histogram_populates():
    db = stream_db(obs="full")
    with ReproServer(db, port=0) as server:
        with ReproClient(*server.address) as client:
            client.ingest("s", [(1,)])
            section = client.stats(section="obs")
    assert section["histograms"]["server.queue_wait"]["count"] >= 1
