"""Crash-recovery matrix: command logging, checkpoints, weak/strong replay.

Every test follows the same shape: build a durable database, commit work,
"crash" it (abandon the object — the OS file state is exactly what a real
process death leaves behind, including an unflushed group-commit buffer),
then recover into a fresh ``Database`` and assert on the recovered state.
``copy_dir`` snapshots the recovery directory first where a test recovers
the same history twice (recovery itself re-checkpoints and truncates the
log, so each recovery needs its own copy of the crash-time directory).
"""

import shutil

import pytest

from repro.common.clock import CostModel
from repro.common.errors import RecoveryError, TransactionError
from repro.common.types import ColumnType as T
from repro.engine import Database
from repro.recovery.log import scan_log
from repro.storage.schema import schema

CONTESTANTS = 8


# ---------------------------------------------------------------------------
# Bootstraps (the "deployment": schema + procedures + triggers + workflows)
# ---------------------------------------------------------------------------


def table_bootstrap(db):
    db.create_table(
        schema(
            "accounts",
            ("id", T.BIGINT, False),
            ("balance", T.FLOAT, False),
            primary_key=["id"],
        )
    )

    @db.register_procedure
    def deposit(ctx, account_id, amount):
        updated = ctx.execute(
            "UPDATE accounts SET balance = balance + ? WHERE id = ?",
            (amount, account_id),
        )
        if updated.rowcount == 0:
            ctx.execute(
                "INSERT INTO accounts (id, balance) VALUES (?, ?)",
                (account_id, amount),
            )


def dag_bootstrap(db):
    """The 3-stage Voter DAG: raw -> ingest_votes -> votes -> count_votes
    (owned window) -> counts -> rank -> leaderboard, with an EE audit
    trigger on the input stream."""
    db.create_stream(schema("raw", ("phone", T.BIGINT), ("contestant", T.INTEGER)))
    db.create_stream(schema("votes", ("phone", T.BIGINT), ("contestant", T.INTEGER)))
    db.create_stream(schema("counts", ("contestant", T.INTEGER), ("n", T.INTEGER)))
    db.create_table(
        schema(
            "leaderboard",
            ("contestant", T.INTEGER, False),
            ("total", T.INTEGER, False),
            primary_key=["contestant"],
        )
    )
    db.create_table(schema("audit", ("batch", T.BIGINT)))

    @db.register_procedure
    def ingest_votes(ctx, batch):
        ctx.emit("votes", [(p, c) for p, c in batch.rows if 0 <= c < CONTESTANTS])

    @db.register_procedure
    def count_votes(ctx, batch):
        counts = ctx.execute(
            "SELECT contestant, count(*) AS n FROM recent GROUP BY contestant"
        )
        ctx.emit("counts", list(counts))

    @db.register_procedure
    def rank(ctx, batch):
        for contestant, n in batch.rows:
            updated = ctx.execute(
                "UPDATE leaderboard SET total = ? WHERE contestant = ?",
                (n, contestant),
            )
            if updated.rowcount == 0:
                ctx.execute(
                    "INSERT INTO leaderboard (contestant, total) VALUES (?, ?)",
                    (contestant, n),
                )

    db.create_window("recent", "votes", size=40, slide=20, owner="count_votes")
    db.create_ee_trigger(
        "audit_raw",
        "raw",
        lambda ctx, rows: ctx.execute(
            "INSERT INTO audit (batch) VALUES (?)", (ctx.batch_id,)
        ),
    )
    db.create_workflow(
        "voter",
        [
            ("raw", "ingest_votes", "votes"),
            ("votes", "count_votes", "counts"),
            ("counts", "rank", None),
        ],
    )


def drive_dag(db, batches, rows_per_batch=20, start=0):
    for b in range(start, start + batches):
        db.ingest(
            "raw", [(1000 + b * rows_per_batch + i, (b + i) % CONTESTANTS)
                    for i in range(rows_per_batch)]
        )


def copy_dir(src, dst):
    shutil.copytree(src, dst)
    return dst


def open_db(directory, bootstrap, **kw):
    kw.setdefault("cost", CostModel.free())
    return Database(recovery_dir=directory, bootstrap=bootstrap, **kw)


# ---------------------------------------------------------------------------
# Basic round trips
# ---------------------------------------------------------------------------


class TestStrongRecovery:
    def test_adhoc_and_procedure_commands_replay(self, tmp_path):
        d = tmp_path / "db"
        db = open_db(d, table_bootstrap)
        db.call("deposit", 1, 100.0)
        db.call("deposit", 2, 50.0)
        with db.transaction():
            db.execute("UPDATE accounts SET balance = balance - ? WHERE id = ?", (30.0, 1))
            db.execute("UPDATE accounts SET balance = balance + ? WHERE id = ?", (30.0, 2))
        db.executemany(
            "INSERT INTO accounts (id, balance) VALUES (?, ?)",
            [(3, 1.0), (4, 2.0)],
        )
        db.flush_log()
        pre = db.catalog.snapshot()

        recovered = open_db(d, table_bootstrap)
        assert recovered.catalog.snapshot() == pre
        assert recovered.execute("SELECT balance FROM accounts WHERE id = 1").scalar() == 70.0
        info = recovered.stats()["recovery"]["recovered"]
        assert info["mode"] == "strong"
        assert info["replayed"] == 4  # 2 calls + 1 txn + 1 executemany

    def test_aborted_transactions_are_not_replayed(self, tmp_path):
        d = tmp_path / "db"
        db = open_db(d, table_bootstrap)
        db.call("deposit", 1, 10.0)
        with pytest.raises(ZeroDivisionError):
            with db.transaction():
                db.execute("UPDATE accounts SET balance = 999 WHERE id = 1")
                _ = 1 / 0
        db.flush_log()
        recovered = open_db(d, table_bootstrap)
        assert recovered.execute("SELECT balance FROM accounts WHERE id = 1").scalar() == 10.0
        assert recovered.stats()["recovery"]["recovered"]["replayed"] == 1

    def test_read_only_commands_are_not_logged(self, tmp_path):
        d = tmp_path / "db"
        db = open_db(d, table_bootstrap)
        db.call("deposit", 1, 10.0)
        before = db.stats()["recovery"]["log"]["appended"]
        db.execute("SELECT * FROM accounts")
        with db.transaction():
            db.execute("SELECT balance FROM accounts WHERE id = 1")
        db.query("SELECT count(*) FROM accounts")
        assert db.stats()["recovery"]["log"]["appended"] == before

    def test_dag_snapshot_byte_identical(self, tmp_path):
        live = tmp_path / "live"
        db = open_db(live, dag_bootstrap)
        drive_dag(db, 6)
        db.flush_log()
        pre = db.catalog.snapshot()

        recovered = open_db(copy_dir(live, tmp_path / "r"), dag_bootstrap)
        assert recovered.catalog.snapshot() == pre
        # watermarks and scheduler positions resumed, not just rows
        assert recovered.streaming.streams["raw"].last_committed == 6
        assert recovered.streaming.delivered == db.streaming.delivered

    def test_recovered_database_keeps_working(self, tmp_path):
        live = tmp_path / "live"
        db = open_db(live, dag_bootstrap)
        drive_dag(db, 4)
        db.flush_log()

        recovered = open_db(copy_dir(live, tmp_path / "r"), dag_bootstrap)
        drive_dag(recovered, 3, start=4)  # ingest continues past the crash
        assert recovered.streaming.streams["raw"].last_committed == 7
        assert recovered.execute("SELECT count(*) FROM audit").scalar() == 7

    def test_reopening_the_same_directory_repeatedly(self, tmp_path):
        d = tmp_path / "db"
        db = open_db(d, dag_bootstrap)
        drive_dag(db, 3)
        db.close()
        for _ in range(3):
            db = open_db(d, dag_bootstrap)
            snap = db.catalog.snapshot()
            db.close()
        assert open_db(d, dag_bootstrap).catalog.snapshot() == snap


# ---------------------------------------------------------------------------
# Crash-point matrix
# ---------------------------------------------------------------------------


class TestCrashPoints:
    def test_mid_group_commit_loses_only_the_unflushed_tail(self, tmp_path):
        d = tmp_path / "db"
        db = open_db(d, table_bootstrap, group_commit=10_000)
        db.call("deposit", 1, 100.0)
        db.flush_log()  # durability boundary
        db.call("deposit", 1, 1.0)  # buffered, never fsynced
        db.call("deposit", 2, 2.0)  # buffered, never fsynced
        assert db.stats()["recovery"]["log"]["pending"] == 2
        # crash: the group-commit buffer dies with the process
        recovered = open_db(d, table_bootstrap)
        assert recovered.execute("SELECT balance FROM accounts WHERE id = 1").scalar() == 100.0
        assert recovered.execute("SELECT count(*) FROM accounts").scalar() == 1

    def test_torn_tail_record_is_discarded(self, tmp_path):
        d = tmp_path / "db"
        db = open_db(d, table_bootstrap, group_commit=1)
        db.call("deposit", 1, 100.0)
        db.call("deposit", 2, 50.0)
        db.close()
        # simulate a write torn mid-record: half a line, no newline
        with open(d / "command.log", "ab") as f:
            f.write(b"deadbeef {\"v\": 1, \"d\": {\"op\": \"call\"")
        recovered = open_db(d, table_bootstrap)
        assert recovered.stats()["recovery"]["recovered"]["replayed"] == 2
        assert recovered.execute("SELECT count(*) FROM accounts").scalar() == 2

    def test_corrupt_final_complete_record_is_discarded(self, tmp_path):
        d = tmp_path / "db"
        db = open_db(d, table_bootstrap, group_commit=1)
        db.call("deposit", 1, 100.0)
        db.call("deposit", 2, 50.0)
        db.close()
        log = d / "command.log"
        lines = log.read_bytes().splitlines(keepends=True)
        lines[-1] = b"00000000 " + lines[-1][9:]  # break the final checksum
        log.write_bytes(b"".join(lines))
        recovered = open_db(d, table_bootstrap)
        assert recovered.stats()["recovery"]["recovered"]["replayed"] == 1
        assert recovered.execute("SELECT count(*) FROM accounts").scalar() == 1

    def test_mid_log_corruption_raises(self, tmp_path):
        d = tmp_path / "db"
        db = open_db(d, table_bootstrap, group_commit=1)
        for i in range(4):
            db.call("deposit", i, 1.0)
        db.close()
        log = d / "command.log"
        lines = log.read_bytes().splitlines(keepends=True)
        lines[2] = b"00000000 " + lines[2][9:]  # corrupt a NON-final record
        log.write_bytes(b"".join(lines))
        with pytest.raises(RecoveryError, match="mid-file"):
            open_db(d, table_bootstrap)

    def test_mid_checkpoint_crash_falls_back_to_previous(self, tmp_path):
        d = tmp_path / "db"
        db = open_db(d, dag_bootstrap)
        drive_dag(db, 3)
        db.checkpoint()  # the good checkpoint
        drive_dag(db, 3, start=3)
        db.flush_log()
        pre = db.catalog.snapshot()
        # crash mid-checkpoint: a newer checkpoint file exists but is torn
        good = max(p.name for p in d.glob("checkpoint-*.ckpt"))
        torn = d / "checkpoint-999999999999.ckpt"
        torn.write_text("deadbeef {\"v\": 1, \"d\": {\"lsn\": 999")
        recovered = open_db(d, dag_bootstrap)
        info = recovered.stats()["recovery"]["recovered"]
        assert info["checkpoint"] == good  # the torn one was ignored
        assert recovered.catalog.snapshot() == pre

    def test_crash_between_workflow_stages_resumes_exactly_once(self, tmp_path):
        live = tmp_path / "live"
        fail_once = {"armed": True}

        def flaky_bootstrap(db):
            dag_bootstrap(db)
            original = db._procedures["count_votes"].fn

            def wrapper(ctx, batch):
                if fail_once["armed"]:
                    fail_once["armed"] = False
                    raise RuntimeError("injected crash between stages")
                return original(ctx, batch)

            db._procedures["count_votes"].fn = wrapper

        db = open_db(live, flaky_bootstrap)
        fail_once["armed"] = False
        drive_dag(db, 2)  # two clean pipelines
        fail_once["armed"] = True
        with pytest.raises(Exception):
            drive_dag(db, 1, start=2)  # stage 1 commits, stage 2 dies
        db.flush_log()
        # crash with the stage-2 delivery of batch 3 queued but unlogged
        fail_once["armed"] = False
        recovered = open_db(live, flaky_bootstrap)
        info = recovered.stats()["recovery"]["recovered"]
        assert info["regenerated_deliveries"] == 1  # the lost stage-2 hop
        recovered.drain()  # resumes the pipeline where the crash cut it
        # exactly-once: stage 1 ran once per batch — 3 batches x 20 votes
        # emitted in total (next_seq counts every row ever emitted, even
        # after stream GC reclaims consumed batches) and no extra audits
        assert recovered.streaming.streams["votes"].next_seq == 61
        assert recovered.streaming.streams["votes"].last_committed == 3
        assert recovered.execute("SELECT count(*) FROM audit").scalar() == 3
        # ... and the re-driven stages completed the third pipeline
        assert recovered.streaming.delivered[("votes", "count_votes")] == 3
        assert recovered.streaming.delivered[("counts", "rank")] == 3
        total = recovered.execute("SELECT sum(total) FROM leaderboard").scalar()
        assert total == 40  # the owned window holds the last 40 votes

    def test_queued_future_batches_are_not_durable(self, tmp_path):
        d = tmp_path / "db"
        db = open_db(d, dag_bootstrap)
        drive_dag(db, 2)
        assert db.ingest("raw", [(1, 1)], batch_id=9) == []  # queued
        db.flush_log()
        recovered = open_db(d, dag_bootstrap)
        assert recovered.streaming.streams["raw"].pending == {}
        assert recovered.streaming.streams["raw"].last_committed == 2


# ---------------------------------------------------------------------------
# Checkpoints and log truncation
# ---------------------------------------------------------------------------


class TestCheckpoints:
    def test_checkpoint_truncates_log_to_its_lsn(self, tmp_path):
        d = tmp_path / "db"
        db = open_db(d, table_bootstrap, group_commit=1)
        for i in range(5):
            db.call("deposit", i, 1.0)
        lsn_before = db.stats()["recovery"]["log"]["durable_lsn"]
        db.checkpoint()
        log = db.stats()["recovery"]["log"]
        assert log["base_lsn"] == lsn_before  # records <= LSN dropped
        db.call("deposit", 99, 9.0)
        db.flush_log()
        recovered = open_db(d, table_bootstrap)
        info = recovered.stats()["recovery"]["recovered"]
        assert info["checkpoint_lsn"] == lsn_before
        assert info["replayed"] == 1  # only the post-checkpoint suffix
        assert recovered.execute("SELECT count(*) FROM accounts").scalar() == 6

    def test_old_checkpoints_are_pruned_to_two(self, tmp_path):
        d = tmp_path / "db"
        db = open_db(d, table_bootstrap)
        for i in range(4):
            db.call("deposit", i, 1.0)
            db.checkpoint()
        assert len(list(d.glob("checkpoint-*.ckpt"))) == 2

    def test_checkpoint_rejected_inside_transaction(self, tmp_path):
        db = open_db(tmp_path / "db", table_bootstrap)
        with db.transaction():
            with pytest.raises(TransactionError, match="checkpoint"):
                db.checkpoint()

    def test_standalone_checkpoint_export(self, tmp_path):
        db = Database(cost=CostModel.free(), bootstrap=table_bootstrap)
        db.call("deposit", 1, 5.0)
        out = db.checkpoint(tmp_path / "export.ckpt")
        assert out.exists()
        with pytest.raises(RecoveryError, match="recovery_dir"):
            db.checkpoint()

    def test_recovery_checkpoint_re_anchors_the_log(self, tmp_path):
        # recovery itself ends with a checkpoint + truncation, so the next
        # recovery replays only post-recovery commands
        d = tmp_path / "db"
        db = open_db(d, table_bootstrap, group_commit=1)
        for i in range(5):
            db.call("deposit", i, 1.0)
        db.close()
        second = open_db(d, table_bootstrap)
        assert second.stats()["recovery"]["recovered"]["replayed"] == 5
        second.close()
        third = open_db(d, table_bootstrap)
        assert third.stats()["recovery"]["recovered"]["replayed"] == 0
        assert third.execute("SELECT count(*) FROM accounts").scalar() == 5


# ---------------------------------------------------------------------------
# Weak vs. strong differential
# ---------------------------------------------------------------------------


class TestWeakRecovery:
    def test_weak_matches_strong_with_strictly_fewer_records(self, tmp_path):
        live = tmp_path / "live"
        db = open_db(live, dag_bootstrap)
        drive_dag(db, 6)
        db.flush_log()
        pre = db.catalog.snapshot()

        strong = open_db(copy_dir(live, tmp_path / "s"), dag_bootstrap)
        weak = open_db(
            copy_dir(live, tmp_path / "w"), dag_bootstrap, recovery="weak"
        )
        s_info = strong.stats()["recovery"]["recovered"]
        w_info = weak.stats()["recovery"]["recovered"]
        assert strong.catalog.snapshot() == pre
        assert weak.catalog.snapshot() == strong.catalog.snapshot()
        assert w_info["replayed"] < s_info["replayed"]
        assert w_info["replayed"] + w_info["skipped"] == s_info["replayed"]

    def test_weak_with_built_in_verification(self, tmp_path):
        live = tmp_path / "live"
        db = open_db(live, dag_bootstrap)
        drive_dag(db, 4)
        db.flush_log()
        weak = open_db(
            copy_dir(live, tmp_path / "w"),
            dag_bootstrap,
            recovery="weak",
            verify_recovery=True,  # raises RecoveryError on divergence
        )
        assert weak.stats()["recovery"]["recovered"]["mode"] == "weak"

    def test_lost_delivery_tail_regenerates_and_matches_weak(self, tmp_path):
        live = tmp_path / "live"
        db = open_db(live, dag_bootstrap, group_commit=1)
        drive_dag(db, 3)
        db.close()
        # cut the last two records — the tail of batch 3's pipeline dies
        # with the crash (a lost group-commit window), so the ingest is
        # durable but its final delivery is not
        log = live / "command.log"
        lines = log.read_bytes().splitlines(keepends=True)
        log.write_bytes(b"".join(lines[:-2]))

        strong = open_db(copy_dir(live, tmp_path / "s"), dag_bootstrap)
        assert strong.stats()["recovery"]["recovered"]["regenerated_deliveries"] >= 1
        strong.drain()  # strong leaves the regenerated hop queued until asked
        weak = open_db(copy_dir(live, tmp_path / "w"), dag_bootstrap, recovery="weak")
        # weak re-drove the whole DAG during recovery — no drain needed
        assert weak.catalog.snapshot() == strong.catalog.snapshot()
        assert weak.streaming.delivered == strong.streaming.delivered


class TestBootstrapMismatch:
    def test_checkpoint_with_unknown_table_raises(self, tmp_path):
        d = tmp_path / "db"
        db = open_db(d, table_bootstrap)
        db.call("deposit", 1, 1.0)
        db.checkpoint()

        def empty_bootstrap(db):
            pass

        with pytest.raises(RecoveryError, match="accounts"):
            open_db(d, empty_bootstrap)

    def test_log_replay_against_missing_procedure_raises(self, tmp_path):
        d = tmp_path / "db"
        db = open_db(d, table_bootstrap, group_commit=1)
        db.call("deposit", 1, 1.0)
        db.close()

        def schema_only(db):
            db.create_table(
                schema(
                    "accounts",
                    ("id", T.BIGINT, False),
                    ("balance", T.FLOAT, False),
                    primary_key=["id"],
                )
            )

        with pytest.raises(RecoveryError, match="deposit"):
            open_db(d, schema_only)


# ---------------------------------------------------------------------------
# Log mechanics
# ---------------------------------------------------------------------------


class TestLogMechanics:
    def test_group_commit_batches_fsyncs(self, tmp_path):
        d = tmp_path / "db"
        db = open_db(d, table_bootstrap, group_commit=8)
        for i in range(32):
            db.call("deposit", i, 1.0)
        log = db.stats()["recovery"]["log"]
        assert log["appended"] == 32
        # 32 records / group of 8 = 4 data flushes (+1 header flush at open)
        assert log["appended"] / log["flushes"] >= 4.0

    def test_synchronous_mode_flushes_every_record(self, tmp_path):
        d = tmp_path / "db"
        db = open_db(d, table_bootstrap, group_commit=1)
        for i in range(5):
            db.call("deposit", i, 1.0)
        assert db.stats()["recovery"]["log"]["pending"] == 0

    def test_log_costs_are_charged(self, tmp_path):
        db = Database(recovery_dir=tmp_path / "db", bootstrap=table_bootstrap)
        db.call("deposit", 1, 1.0)
        db.flush_log()
        events = db.clock.events
        assert events["log_group_commit"] >= 1
        assert events["log_write"] >= 1

    def test_scan_log_round_trip(self, tmp_path):
        d = tmp_path / "db"
        db = open_db(d, table_bootstrap, group_commit=1)
        db.call("deposit", 1, 2.5)
        db.executemany(
            "INSERT INTO accounts (id, balance) VALUES (?, ?)", [(7, 1.0), (8, 2.0)]
        )
        db.close()
        base, records, _end = scan_log(d / "command.log")
        assert [r["op"] for r in records] == ["call", "txn"]
        assert records[0] == {"op": "call", "proc": "deposit", "args": [1, 2.5]}
        assert records[1]["cmds"][0][0] == "many"

    def test_readonly_open_writes_nothing(self, tmp_path):
        d = tmp_path / "db"
        db = open_db(d, dag_bootstrap)
        drive_dag(db, 2)
        db.close()
        before = {p.name: p.read_bytes() for p in d.iterdir()}
        ro = open_db(d, dag_bootstrap, readonly=True)
        ro.drain()
        assert ro.execute("SELECT count(*) FROM audit").scalar() == 2
        after = {p.name: p.read_bytes() for p in d.iterdir()}
        assert before == after
        with pytest.raises(RecoveryError):
            ro.checkpoint()

    def test_unserialisable_call_args_raise_before_any_effect(self, tmp_path):
        def bootstrap(db):
            table_bootstrap(db)

            @db.register_procedure
            def tagged_write(ctx, tag):
                # ``tag`` never reaches SQL, but it must ride in the log
                ctx.execute("INSERT INTO accounts (id, balance) VALUES (?, ?)", (42, 1.0))

        db = open_db(tmp_path / "db", bootstrap, group_commit=1)
        with pytest.raises(RecoveryError, match="JSON"):
            db.call("tagged_write", object())
        # validation fired before the transaction opened: nothing committed
        # in memory that the log does not also carry
        assert db.execute("SELECT count(*) FROM accounts").scalar() == 0
        assert db.stats()["transactions"]["open"] is False
        db.call("tagged_write", "fine")  # engine still fully usable
        assert db.execute("SELECT count(*) FROM accounts").scalar() == 1

    def test_unserialisable_statement_params_roll_back_in_open_txn(self, tmp_path):
        from decimal import Decimal

        db = open_db(tmp_path / "db", table_bootstrap, group_commit=1)
        with db.transaction() as txn:
            db.execute("INSERT INTO accounts (id, balance) VALUES (?, ?)", (1, 1.0))
            with pytest.raises(RecoveryError, match="JSON"):
                # a Decimal WHERE param compares fine at execution time
                # (1 == Decimal(1)), so the write succeeds — but it cannot
                # ride in a JSON log record; the statement must undo itself
                # so the open transaction stays consistent with its record
                db.execute(
                    "UPDATE accounts SET balance = ? WHERE id = ?",
                    (9.0, Decimal("1")),
                )
            assert txn.is_active
        db.close()
        recovered = open_db(tmp_path / "db", table_bootstrap)
        assert recovered.query("SELECT id, balance FROM accounts") == [
            {"id": 1, "balance": 1.0}
        ]

    def test_memory_only_database_reports_no_recovery(self):
        db = Database(cost=CostModel.free())
        assert db.stats()["recovery"] is None
        db.flush_log()  # no-ops
        db.close()


# ---------------------------------------------------------------------------
# Workload-driven crash (the conformance harness as a recovery oracle)
# ---------------------------------------------------------------------------


class TestWorkloadCrash:
    def test_linear_road_partitioned_crash_matches_no_crash_digest(self, tmp_path):
        """Crash the partitioned engine mid-Linear-Road, weak-recover every
        partition, finish the script: the conformance digest must equal the
        single-engine no-crash reference."""
        from repro.partition import PartitionedDatabase
        from repro.workloads import LinearRoadScenario, run_shape, state_digest
        from repro.workloads.scenario import Scale

        scenario = LinearRoadScenario()
        ops = scenario.ops(31, Scale.smoke())
        reference = run_shape(scenario, ops, "single")
        cut = len(ops) // 2

        kwargs = dict(
            partition_keys=scenario.partition_keys,
            workers="inline",
            recovery_dir=tmp_path / "lr",
            recovery="weak",
        )
        pdb = PartitionedDatabase(2, scenario.deploy, **kwargs)
        for op in ops[:cut]:
            pdb.ingest(op.target, [list(r) for r in op.rows])
        pdb.drain()
        pdb.flush_log()
        pdb.kill()  # crash: both partitions die with their buffers

        recovered = PartitionedDatabase(2, scenario.deploy, **kwargs)
        try:
            for op in ops[cut:]:
                recovered.ingest(op.target, [list(r) for r in op.rows])
            recovered.drain()

            def read(sql):
                return [tuple(r) for r in recovered.execute(sql).rows]

            digest, _ = state_digest(read, scenario.output_tables)
            assert digest == reference.digest
            assert scenario.check(read, ops, 0) == []
        finally:
            recovered.close()
