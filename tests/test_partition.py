"""The partitioned facade: routing, pipelined ingest, ordered commit,
fault-torn protocols, and per-partition durable recovery.

Most tests use ``workers="inline"`` — the same dispatch and serde wire
discipline as process workers, minus the fork cost — so the matrix stays
fast.  A small set of tests runs real worker processes end-to-end
(including kill-and-recover); they are the ones whose behaviour could
differ across a process boundary.
"""

import pytest

from repro.common.errors import (
    BatchOrderError,
    ConstraintViolation,
    PartitionError,
    SchemaError,
    TransactionError,
)
from repro.common.types import ColumnType as T
from repro.engine import Database
from repro.partition import PartitionInfo, PartitionedDatabase
from repro.storage.schema import schema

ACCOUNTS = 16
PARTITION_KEYS = {"feed": "acct", "bal": "acct"}


def deploy(db, part):
    """The deployment: a keyed input stream feeding a keyed balance table
    through a one-stage workflow, plus single- and cross-partition
    procedures.  Seeds only the balance rows this partition owns."""
    db.create_stream(schema("feed", ("acct", T.INTEGER), ("amt", T.INTEGER)))
    db.create_table(
        schema(
            "bal",
            ("acct", T.INTEGER, False),
            ("total", T.BIGINT, False),
            primary_key=["acct"],
        )
    )
    db.executemany(
        "INSERT INTO bal (acct, total) VALUES (?, ?)",
        ((a, 0) for a in range(ACCOUNTS) if part.owns(a)),
    )

    @db.register_procedure
    def absorb(ctx, batch):
        for acct, amt in batch.rows:
            ctx.execute("UPDATE bal SET total = total + ? WHERE acct = ?", (amt, acct))

    db.create_workflow("flow", [("feed", "absorb")])

    @db.register_procedure
    def deposit(ctx, acct, amt):
        ctx.execute("UPDATE bal SET total = total + ? WHERE acct = ?", (amt, acct))

    @db.register_procedure
    def bump_all(ctx, delta):
        ctx.execute("UPDATE bal SET total = total + ?", (delta,))

    @db.register_procedure
    def fail(ctx):
        raise ValueError("boom")


def make_pdb(n=2, *, workers="inline", **kwargs):
    return PartitionedDatabase(
        n, deploy, partition_keys=PARTITION_KEYS, workers=workers, **kwargs
    )


def single_reference(feed_batches, xp_deltas=()):
    """The same workload on one plain Database; returns sorted bal rows."""
    db = Database(bootstrap=lambda db: deploy(db, PartitionInfo(0, 1)))
    for batch in feed_batches:
        db.ingest("feed", batch)
    for delta in xp_deltas:
        db.call("bump_all", delta)
    rows = db.execute("SELECT acct, total FROM bal").rows
    return sorted(rows)


# ---------------------------------------------------------------------------
# Routing and ingest
# ---------------------------------------------------------------------------


def test_ingest_splits_by_partition_column():
    with make_pdb(4) as pdb:
        applied = pdb.ingest("feed", [(a, 10) for a in range(ACCOUNTS)])
        # every partition owns some of 16 keys and applied its own batch 1
        assert len(applied) >= 2
        assert all(ids == [1] for ids in applied.values())
        pdb.drain()
        assert pdb.merged_table_rows("bal") == [(a, 10) for a in range(ACCOUNTS)]


def test_per_partition_batch_id_sequences_advance_independently():
    with make_pdb(2) as pdb:
        # route two batches to only one partition's keys, then one to all
        own0 = [a for a in range(ACCOUNTS) if PartitionInfo(0, 2).owns(a)]
        pdb.ingest("feed", [(own0[0], 1)])
        pdb.ingest("feed", [(own0[1], 1)])
        applied = pdb.ingest("feed", [(a, 1) for a in range(ACCOUNTS)])
        # partition 0 is two batches ahead of partition 1
        assert applied[0] == [3]
        assert applied[1] == [1]


def test_explicit_batch_id_rejected_on_multi_partition():
    with make_pdb(2) as pdb:
        with pytest.raises(BatchOrderError, match="own batch-id sequence"):
            pdb.ingest("feed", [(1, 1)], batch_id=7)


def test_ingest_unkeyed_stream_raises_in_strict_mode():
    def lookup_deploy(db, part):
        db.create_stream(schema("nokey", ("x", T.INTEGER)))

    with PartitionedDatabase(2, lookup_deploy, workers="inline") as pdb:
        with pytest.raises(SchemaError, match="no partition key"):
            pdb.ingest("nokey", [(1,)])


def test_ingest_mapping_rows_route_by_name():
    with make_pdb(2) as pdb:
        pdb.ingest("feed", [{"acct": a, "amt": 3} for a in range(ACCOUNTS)])
        pdb.drain()
        assert pdb.merged_table_rows("bal") == [(a, 3) for a in range(ACCOUNTS)]


def test_pipelined_ingest_matches_waited_ingest():
    batches = [[(a, b + 1) for a in range(ACCOUNTS)] for b in range(10)]
    with make_pdb(2) as fast, make_pdb(2) as slow:
        for batch in batches:
            fast.ingest("feed", batch, wait=False)
        fast.barrier()
        fast.drain()
        for batch in batches:
            slow.ingest("feed", batch)
        slow.drain()
        assert fast.merged_table_rows("bal") == slow.merged_table_rows("bal")


def test_keyed_call_routes_to_one_partition():
    with make_pdb(4) as pdb:
        pdb.call("deposit", 5, 100, key=5)
        assert pdb.execute("SELECT total FROM bal WHERE acct = 5", key=5).scalar() == 100
        stats = pdb.stats()
        assert stats["routing"]["single_partition_calls"] == 1
        assert stats["routing"].get("cross_partition_txns", 0) == 0
        # exactly one partition holds the updated row
        holders = [
            pid
            for pid, snap in pdb.snapshot().items()
            if any(vals == [5, 100] for _rid, vals in snap["bal"]["rows"])
        ]
        assert len(holders) == 1


def test_fanout_select_unions_partitions():
    with make_pdb(4) as pdb:
        rs = pdb.execute("SELECT acct, total FROM bal")
        assert sorted(rs.rows) == [(a, 0) for a in range(ACCOUNTS)]
        assert pdb.stats()["routing"]["fanout_selects"] == 1


def test_unkeyed_insert_is_refused():
    with make_pdb(2) as pdb:
        with pytest.raises(PartitionError, match="INSERT"):
            pdb.execute("INSERT INTO bal (acct, total) VALUES (99, 0)")


def test_routed_executemany_by_key_position():
    with make_pdb(2) as pdb:
        n = pdb.executemany(
            "UPDATE bal SET total = ? WHERE acct = ?",
            [(50, a) for a in range(ACCOUNTS)],
            key_position=1,
        )
        assert n == ACCOUNTS
        assert pdb.merged_table_rows("bal") == [(a, 50) for a in range(ACCOUNTS)]


# ---------------------------------------------------------------------------
# Cross-partition transactions (ordered commit)
# ---------------------------------------------------------------------------


def test_cross_partition_call_runs_on_every_partition():
    with make_pdb(4) as pdb:
        results = pdb.call("bump_all", 7)
        assert len(results) == 4
        assert pdb.merged_table_rows("bal") == [(a, 7) for a in range(ACCOUNTS)]
        assert pdb.stats()["routing"]["cross_partition_commits"] == 1


def test_cross_partition_update_statement():
    with make_pdb(2) as pdb:
        rs = pdb.execute("UPDATE bal SET total = total + 5")
        assert rs.rowcount == ACCOUNTS
        assert pdb.merged_table_rows("bal") == [(a, 5) for a in range(ACCOUNTS)]


def test_prepare_failure_aborts_all_partitions():
    """A fragment that fails on any participant rolls back every
    participant: all-or-nothing across partitions."""
    with make_pdb(4) as pdb:
        before = pdb.merged_table_rows("bal")
        pdb.inject_fault(2, "xp_call")
        with pytest.raises(PartitionError, match=r"\[partition 2\] injected fault"):
            pdb.call("bump_all", 100)
        assert pdb.merged_table_rows("bal") == before
        # the database stays fully usable afterwards
        pdb.call("bump_all", 1)
        assert pdb.merged_table_rows("bal") == [(a, 1) for a in range(ACCOUNTS)]


def test_procedure_error_in_fragment_aborts_all():
    with make_pdb(2) as pdb:
        pdb.call("bump_all", 3)
        with pytest.raises(TransactionError):
            pdb.call("fail")
        assert pdb.merged_table_rows("bal") == [(a, 3) for a in range(ACCOUNTS)]


def test_mid_commit_failure_reports_partial_commit():
    """A participant torn out *during the commit phase* (only reachable by
    fault injection or a crash) leaves earlier participants committed; the
    coordinator must say exactly which."""
    with make_pdb(2) as pdb:
        pdb.inject_fault(1, "xp_commit")
        with pytest.raises(PartitionError, match=r"torn mid-commit: partition\(s\) \[0\]"):
            pdb.call("bump_all", 9)
        # partition 0 committed its fragment, partition 1 rolled back
        rows = dict(pdb.merged_table_rows("bal"))
        committed = [a for a in range(ACCOUNTS) if rows[a] == 9]
        rolled_back = [a for a in range(ACCOUNTS) if rows[a] == 0]
        assert committed and rolled_back
        assert sorted(committed + rolled_back) == list(range(ACCOUNTS))


def test_constraint_violation_in_fragment_maps_to_original_class():
    """Worker errors re-raise coordinator-side as their original class."""
    with make_pdb(2) as pdb:
        pdb.call("deposit", 1, 5, key=1)
        with pytest.raises(ConstraintViolation):
            pdb.execute(
                "INSERT INTO bal (acct, total) VALUES (?, ?)", (1, 0), key=1
            )


# ---------------------------------------------------------------------------
# Equivalence with the single-partition engine
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("n", [1, 2, 4])
def test_partitioned_state_matches_single_partition_reference(n):
    batches = [
        [(a, (a * 13 + b) % 7) for a in range(ACCOUNTS)] for b in range(6)
    ]
    expected = single_reference(batches, xp_deltas=(2, 3))
    with make_pdb(n) as pdb:
        for batch in batches:
            pdb.ingest("feed", batch, wait=False)
        pdb.barrier()
        pdb.drain()
        pdb.call("bump_all", 2)
        pdb.call("bump_all", 3)
        assert pdb.merged_table_rows("bal") == expected


# ---------------------------------------------------------------------------
# Stats aggregation
# ---------------------------------------------------------------------------


def test_stats_aggregates_partition_counters():
    with make_pdb(2) as pdb:
        pdb.ingest("feed", [(a, 1) for a in range(ACCOUNTS)])
        pdb.drain()
        pdb.call("deposit", 0, 1, key=0)
        stats = pdb.stats()
        assert stats["num_partitions"] == 2
        assert stats["workers"] == "inline"
        assert len(stats["partitions"]) == 2
        assert stats["table_rows"]["bal"] == ACCOUNTS
        # committed txns aggregate across partitions and exceed any single one
        per = [p["transactions"]["committed"] for p in stats["partitions"]]
        assert stats["transactions"]["committed"] == sum(per)
        assert stats["routing"]["ingest_rows"] == ACCOUNTS


# ---------------------------------------------------------------------------
# Real worker processes (fork + socketpair RPC)
# ---------------------------------------------------------------------------


@pytest.mark.multicore
def test_process_workers_end_to_end():
    with make_pdb(2, workers="process") as pdb:
        pdb.ingest("feed", [(a, 4) for a in range(ACCOUNTS)], wait=False)
        pdb.barrier()
        pdb.drain()
        pdb.call("bump_all", 1)
        assert pdb.merged_table_rows("bal") == [(a, 5) for a in range(ACCOUNTS)]
        stats = pdb.stats()
        assert stats["workers"] == "process"
        assert [p["partition"] for p in stats["partitions"]] == [0, 1]


@pytest.mark.multicore
def test_process_worker_error_propagates_with_partition_prefix():
    from repro.common.errors import NoSuchProcedureError

    with make_pdb(2, workers="process") as pdb:
        with pytest.raises(NoSuchProcedureError, match=r"\[partition"):
            pdb.call("no_such_proc", key=1)


@pytest.mark.multicore
def test_deploy_failure_surfaces_at_startup():
    def bad_deploy(db, part):
        raise RuntimeError("deploy exploded")

    with pytest.raises(PartitionError, match="deploy exploded"):
        PartitionedDatabase(2, bad_deploy, workers="process")


# ---------------------------------------------------------------------------
# Durability: per-partition recovery_dirs
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "workers",
    ["inline", pytest.param("process", marks=pytest.mark.multicore)],
)
def test_partitioned_recovery_restores_pre_crash_state(tmp_path, workers):
    pdb = make_pdb(2, workers=workers, recovery_dir=tmp_path)
    pdb.ingest("feed", [(a, 6) for a in range(ACCOUNTS)])
    pdb.drain()
    pdb.call("bump_all", 4)          # a cross-partition txn in every log
    pdb.call("deposit", 3, 10, key=3)
    expected = pdb.merged_table_rows("bal")
    pdb.flush_log()                  # the all-partitions durability boundary
    pdb.kill()                       # crash: no close, no further flush

    assert sorted(p.name for p in tmp_path.iterdir()) == ["p000", "p001"]
    recovered = make_pdb(2, workers=workers, recovery_dir=tmp_path)
    assert recovered.merged_table_rows("bal") == expected
    # recovered partitions keep working (batch sequences resume)
    recovered.ingest("feed", [(a, 1) for a in range(ACCOUNTS)])
    recovered.drain()
    assert recovered.merged_table_rows("bal") == [
        (a, t + 1) for a, t in expected
    ]
    recovered.close()


def test_unflushed_tail_is_lost_on_crash(tmp_path):
    """Work past the last flush_log() is inside the group-commit window
    and does not survive a crash — the documented durability contract."""
    pdb = make_pdb(2, recovery_dir=tmp_path, group_commit=64)
    pdb.ingest("feed", [(a, 2) for a in range(ACCOUNTS)])
    pdb.drain()
    durable = pdb.merged_table_rows("bal")
    pdb.flush_log()
    pdb.call("bump_all", 50)  # never flushed
    pdb.kill()
    recovered = make_pdb(2, recovery_dir=tmp_path)
    assert recovered.merged_table_rows("bal") == durable
    recovered.close()


def test_checkpoint_per_partition(tmp_path):
    pdb = make_pdb(2, recovery_dir=tmp_path)
    pdb.ingest("feed", [(a, 8) for a in range(ACCOUNTS)])
    pdb.drain()
    paths = pdb.checkpoint()
    assert len(paths) == 2
    assert all(str(tmp_path) in p for p in paths)
    expected = pdb.merged_table_rows("bal")
    pdb.kill()
    recovered = make_pdb(2, recovery_dir=tmp_path)
    assert recovered.merged_table_rows("bal") == expected
    recovered.close()


# ---------------------------------------------------------------------------
# Facade misc
# ---------------------------------------------------------------------------


def test_invalid_workers_mode():
    with pytest.raises(ValueError, match="process"):
        PartitionedDatabase(2, deploy, workers="threads")


def test_close_is_idempotent():
    pdb = make_pdb(2)
    pdb.close()
    pdb.close()
