"""Table statistics, the cost-based planner, ANALYZE, and EXPLAIN.

Covers the stats lifecycle (ANALYZE -> selectivities -> auto-refresh ->
stats-version plan-cache invalidation), the ``db.explain`` estimated-vs-
actual row accounting, the planner stats section, and the ``explain``
and ``analyze`` server/coordinator operations.
"""

import pytest

from repro.common.types import ColumnType as T
from repro.engine.database import Database
from repro.engine.stats import StatsCatalog, analyze_table
from repro.partition import PartitionedDatabase
from repro.server import protocol
from repro.storage.schema import schema


def make_db(rows: int = 200) -> Database:
    db = Database()
    db.create_table(
        schema(
            "txns",
            ("id", T.BIGINT, False),
            ("amount", T.FLOAT),
            ("status", T.VARCHAR),
            ("bucket", T.BIGINT),
            primary_key=["id"],
        )
    )
    for i in range(rows):
        db.execute(
            "INSERT INTO txns (id, amount, status, bucket) VALUES (?, ?, ?, ?)",
            (i, float(i * 10 % 1000), ("ok", "flagged")[i % 10 == 0], i % 4),
        )
    return db


# -- ANALYZE entry points ----------------------------------------------------


def test_analyze_statement_returns_per_table_rows():
    db = make_db(50)
    result = db.execute("ANALYZE")
    assert result.rows == [("txns", 50)]
    assert db.table_stats.get("txns").analyzed_rows == 50


def test_analyze_single_table_statement():
    db = make_db(30)
    result = db.execute("ANALYZE txns")
    assert result.rows == [("txns", 30)]


def test_analyze_api_bumps_stats_version():
    db = make_db(10)
    v0 = db.table_stats.version
    db.analyze()
    assert db.table_stats.version == v0 + 1
    db.analyze("txns")
    assert db.table_stats.version == v0 + 2


def test_analyze_charges_rows_scanned():
    db = make_db(40)
    before = db.clock.events.get("rows_scanned", 0)
    db.analyze()
    assert db.clock.events["rows_scanned"] - before == 40


# -- column statistics and selectivity ---------------------------------------


def test_analyze_table_collects_column_stats():
    db = make_db(100)
    stats = analyze_table(db.catalog.table("txns"))
    assert stats.analyzed_rows == 100
    assert stats.columns["bucket"].ndv == 4
    assert stats.columns["id"].min == 0
    assert stats.columns["id"].max == 99
    assert stats.columns["status"].ndv == 2


def test_eq_selectivity_uses_ndv():
    db = make_db(100)
    db.analyze()
    table = db.catalog.table("txns")
    # bucket has 4 distinct values -> eq selectivity 1/4
    assert db.table_stats.eq_selectivity(table, "bucket") == pytest.approx(0.25)
    # an unanalyzed catalog falls back to the default
    assert StatsCatalog().eq_selectivity(table, "bucket") == pytest.approx(0.1)


def test_range_selectivity_interpolates_min_max():
    db = make_db(100)
    db.analyze()
    info = db.explain("SELECT id FROM txns WHERE id > 74")
    # ids span 0..99, so > 74 covers ~one quarter of the table
    assert 15 <= info["estimated_rows"] <= 35
    assert info["actual_rows"] == 25


def test_estimates_respond_to_analyze():
    db = make_db(100)
    before = db.explain("SELECT id FROM txns WHERE bucket = 1")["estimated_rows"]
    db.analyze()
    after = db.explain("SELECT id FROM txns WHERE bucket = 1")["estimated_rows"]
    # default eq selectivity 0.1 -> 10 rows; with NDV=4 -> 25 rows
    assert before == pytest.approx(10, abs=2)
    assert after == pytest.approx(25, abs=2)


# -- auto refresh ------------------------------------------------------------


def test_auto_refresh_after_row_drift():
    db = make_db(10)
    db.table_stats.auto_refresh_floor = 16  # shrink the floor for the test
    db.analyze()
    assert db.table_stats.auto_refreshes == 0
    for i in range(1000, 1020):  # drift of 20 >= max(16, 0.5*10)
        db.execute(
            "INSERT INTO txns (id, amount, status, bucket) VALUES (?, ?, ?, ?)",
            (i, 1.0, "ok", 0),
        )
    db.prepare("SELECT id FROM txns WHERE bucket = 3")
    # the refresh fires on the first prepare after drift crosses the
    # threshold (the INSERTs themselves prepare, so it lands mid-loop)
    assert db.table_stats.auto_refreshes == 1
    assert db.table_stats.get("txns").analyzed_rows >= 10 + 16


def test_no_auto_refresh_without_initial_analyze():
    db = make_db(10)
    for i in range(1000, 1600):
        db.execute(
            "INSERT INTO txns (id, amount, status, bucket) VALUES (?, ?, ?, ?)",
            (i, 1.0, "ok", 0),
        )
    db.prepare("SELECT id FROM txns WHERE bucket = 3")
    assert db.table_stats.auto_refreshes == 0  # ANALYZE is the opt-in


# -- stale-plan regression: stats version must invalidate cached plans -------


def test_stats_refresh_invalidates_cached_plan():
    db = make_db(100)
    sql = "SELECT id FROM txns WHERE bucket = 1"
    first = db.prepare(sql)
    invalidations0 = db.plan_cache.stats()["stats_invalidations"]
    epoch0 = db.schema_epoch
    db.analyze()  # bumps the stats version, NOT the schema epoch
    second = db.prepare(sql)
    assert db.schema_epoch == epoch0
    assert second is not first, "stale plan served after a stats refresh"
    assert second.stats_version == db.table_stats.version
    assert db.plan_cache.stats()["stats_invalidations"] == invalidations0 + 1
    # the replaced plan reflects the refreshed statistics
    assert second.plan_info["estimated_rows"] != first.plan_info["estimated_rows"]


def test_stale_statement_still_executes():
    # stats staleness only means "possibly suboptimal" — unlike a schema
    # change, executing a pre-refresh statement must not be rejected
    db = make_db(20)
    sql = "SELECT id FROM txns WHERE bucket = 1"
    stmt = db.prepare(sql)
    db.analyze()
    rows = db.execute_prepared(stmt).rows
    assert rows == db.execute(sql).rows


def test_cache_hit_when_stats_unchanged():
    db = make_db(20)
    sql = "SELECT id FROM txns WHERE bucket = 1"
    db.prepare(sql)
    hits0 = db.plan_cache.stats()["hits"]
    db.prepare(sql)
    assert db.plan_cache.stats()["hits"] == hits0 + 1


# -- explain -----------------------------------------------------------------


def test_explain_reports_estimated_and_actual_rows():
    db = make_db(100)
    db.analyze()
    info = db.explain("SELECT id, amount FROM txns WHERE status = ?", ("flagged",))
    assert info["kind"] == "select"
    assert info["actual_rows"] == 10
    assert info["estimated_rows"] > 0
    scan = info["scan"]
    assert scan["op_id"] == 0
    assert scan["actual_rows"] == 10


def test_explain_join_includes_considered_costs():
    db = make_db(60)
    db.create_table(schema("buckets", ("num", T.BIGINT), ("label", T.VARCHAR)))
    for n in range(4):
        db.execute("INSERT INTO buckets (num, label) VALUES (?, ?)", (n, f"b{n}"))
    db.analyze()
    info = db.explain(
        "SELECT t.id, b.label FROM txns t JOIN buckets b ON t.bucket = b.num"
    )
    join = info["joins"][0]
    # inl appears only when the inner side has a usable index
    assert {"hash", "merge", "bnl"} <= set(join["considered"])
    assert join["op"] in ("HashJoin", "MergeJoin", "IndexNestedLoopJoin")
    assert join["actual_rows"] == 60


def test_explain_does_not_execute_dml():
    db = make_db(10)
    info = db.explain("DELETE FROM txns WHERE id >= 0")
    assert info["kind"] == "delete"
    assert "actual_rows" not in info
    assert db.execute("SELECT COUNT(*) FROM txns").rows == [(10,)]


def test_explain_does_not_disturb_later_queries():
    db = make_db(10)
    db.explain("SELECT id FROM txns WHERE bucket = 0")
    rows = db.execute("SELECT COUNT(*) FROM txns").rows
    assert rows == [(10,)]


# -- planner stats section ---------------------------------------------------


def test_planner_stats_section():
    db = make_db(30)
    db.create_table(schema("aux", ("ref", T.BIGINT)))
    db.execute("INSERT INTO aux (ref) VALUES (1)")
    db.analyze()
    db.execute("SELECT t.id FROM txns t JOIN aux a ON t.bucket = a.ref")
    section = db.stats("planner")
    assert section["plans_costed"] >= 1
    assert sum(section["joins"].values()) >= 1
    assert section["force_join"] is None
    assert len(section["stats"]["analyzed"]) == 2
    assert section["stats"]["version"] >= 1


# -- server protocol + partition ops ----------------------------------------


def test_protocol_explain_op():
    db = make_db(25)
    db.analyze()
    record = {"op": "explain", "sql": "SELECT id FROM txns WHERE bucket = ?",
              "params": [2]}
    info = protocol.perform(db, record, partitioned=False)
    assert info["kind"] == "select"
    assert info["actual_rows"] == 6


def test_protocol_rejects_unknown_op_still():
    assert "explain" in protocol.OPS


def test_partitioned_analyze_and_explain():
    def deploy(db, part):
        db.create_table(
            schema(
                "kv",
                ("k", T.BIGINT, False),
                ("v", T.VARCHAR),
                primary_key=["k"],
            )
        )

    pdb = PartitionedDatabase(
        2, deploy, partition_keys={"kv": "k"}, workers="inline"
    )
    with pdb:
        for i in range(40):
            pdb.execute("INSERT INTO kv (k, v) VALUES (?, ?)", (i, f"v{i}"), key=i)
        analyzed = pdb.analyze()
        assert analyzed["kv"] == 40  # summed across both partitions
        info = pdb.explain("SELECT k FROM kv WHERE k >= 0")
        assert info["kind"] == "select"
        assert info["scan"]["op_id"] == 0
        # routed explain lands on the key's partition: fewer actual rows
        routed = pdb.explain("SELECT k FROM kv WHERE k >= 0", key=0)
        assert routed["actual_rows"] < 40
