"""Workload scenarios × engine shapes: the cross-engine conformance matrix.

Every scenario replays one seeded script against each engine shape; the
single-``Database`` digest is the reference and any divergence fails.
The process-worker column forks real processes, so it is marked
``slow``/``multicore`` and the fast tier runs the inline column (same
wire discipline, no forks).
"""

import pytest

from repro.partition import PartitionedDatabase
from repro.workloads import (
    ALL_SCENARIOS,
    ContentionScenario,
    FraudScenario,
    Rng,
    run_shape,
    state_digest,
)
from repro.workloads.conformance import _SingleFacade, _single_db, run_ops
from repro.workloads.scenario import Scale, call

SEED = 20260808
NAMES = [cls().name for cls in ALL_SCENARIOS]


@pytest.fixture(scope="module")
def refs():
    """Single-engine reference run per scenario: (scenario, ops, result)."""
    out = {}
    for cls in ALL_SCENARIOS:
        s = cls()
        ops = s.ops(SEED, Scale.smoke())
        out[s.name] = (s, ops, run_shape(s, ops, "single"))
    return out


# ---------------------------------------------------------------------------
# The deterministic generator (satellite: seeded, byte-for-byte stable)
# ---------------------------------------------------------------------------


class TestGenerator:
    def test_splitmix64_known_vector(self):
        # published splitmix64 test vector: first output for seed 0
        assert Rng(0).next_u64() == 0xE220A8397B1DCDAF

    def test_same_seed_same_stream(self):
        a, b = Rng(123), Rng(123)
        assert [a.randint(0, 999) for _ in range(50)] == [
            b.randint(0, 999) for _ in range(50)
        ]

    def test_fork_streams_are_independent(self):
        r = Rng(5)
        c1, c2 = r.fork(1), r.fork(2)
        assert [c1.next_u64() for _ in range(5)] != [c2.next_u64() for _ in range(5)]

    def test_shuffle_and_choice_are_deterministic(self):
        items = list(range(10))
        Rng(9).shuffle(items)
        again = list(range(10))
        Rng(9).shuffle(again)
        assert items == again
        assert Rng(9).choice("abcdef") == Rng(9).choice("abcdef")

    @pytest.mark.parametrize("name", NAMES)
    def test_scripts_reproduce_byte_for_byte(self, name, refs):
        s, ops, _ = refs[name]
        assert type(s)().ops(SEED, Scale.smoke()) == ops

    @pytest.mark.parametrize("name", NAMES)
    def test_scripts_vary_with_seed(self, name, refs):
        s, ops, _ = refs[name]
        assert type(s)().ops(SEED + 1, Scale.smoke()) != ops


# ---------------------------------------------------------------------------
# Conformance matrix
# ---------------------------------------------------------------------------


def assert_conforms(ref, got):
    assert got.violations == []
    assert got.aborts == ref.aborts
    if got.digest != ref.digest:
        diverged = {
            t for t in got.tables if got.tables[t] != ref.tables[t]
        }
        pytest.fail(f"{got.shape} digest diverges from reference in {sorted(diverged)}")


@pytest.mark.parametrize("name", NAMES)
def test_single_reference_upholds_invariants(name, refs):
    _s, _ops, ref = refs[name]
    assert ref.violations == []


@pytest.mark.parametrize("name", NAMES)
def test_inline_partitioned_matches_reference(name, refs):
    s, ops, ref = refs[name]
    assert_conforms(ref, run_shape(s, ops, "inline"))


@pytest.mark.parametrize("name", NAMES)
def test_three_partitions_match_reference(name, refs):
    s, ops, ref = refs[name]
    assert_conforms(ref, run_shape(s, ops, "inline", partitions=3))


@pytest.mark.parametrize("name", NAMES)
def test_served_over_tcp_matches_reference(name, refs):
    s, ops, ref = refs[name]
    assert_conforms(ref, run_shape(s, ops, "served"))


@pytest.mark.parametrize("name", NAMES)
def test_crash_recover_matches_reference(name, refs, tmp_path):
    s, ops, ref = refs[name]
    assert_conforms(ref, run_shape(s, ops, "recover", tmp_path=tmp_path))


@pytest.mark.parametrize("cut_frac", [0.25, 0.9])
def test_crash_boundary_position_is_immaterial(cut_frac, refs, tmp_path):
    s, ops, ref = refs["linear_road"]
    cut = max(1, int(len(ops) * cut_frac))
    got = run_shape(s, ops, "recover", tmp_path=tmp_path / str(cut), crash_at=cut)
    assert_conforms(ref, got)


@pytest.mark.slow
@pytest.mark.multicore
@pytest.mark.parametrize("name", NAMES)
def test_process_partitioned_matches_reference(name, refs):
    s, ops, ref = refs[name]
    assert_conforms(ref, run_shape(s, ops, "process"))


# ---------------------------------------------------------------------------
# Scenario-specific behaviour
# ---------------------------------------------------------------------------


def test_contention_workload_actually_contends(refs):
    _s, _ops, ref = refs["contention"]
    assert ref.aborts > 0  # otherwise the scenario stresses nothing


def test_linear_road_produces_accidents_and_tolls(refs):
    s, ops, ref = refs["linear_road"]
    assert ref.tables["account"], "no tolls were ever charged"
    # the generator must exercise the accident path: some vehicle reports
    # zero speed twice in a row without changing segment
    streak: dict[int, tuple] = {}
    declared = False
    for vid, _t, _xway, seg, speed in s.ingested_rows(ops, "position"):
        prev_seg, n = streak.get(vid, (None, 0))
        n = (n + 1 if seg == prev_seg else 1) if speed == 0 else 0
        streak[vid] = (seg, n)
        declared = declared or n >= 2
    assert declared, "generator never produced an accident"


def test_fraud_alerts_match_pure_python_oracle(refs):
    s, ops, ref = refs["fraud"]
    assert ref.tables["alerts"] == s.expected_alerts(ops)
    assert ref.tables["hot_cards"] == s.expected_hot(ops)
    assert ref.tables["alerts"], "no over-limit transaction was generated"
    assert ref.tables["hot_cards"], "velocity rule never fired"


def test_leaderboard_closes_sessions(refs):
    _s, _ops, ref = refs["leaderboard"]
    assert any(r[5] > 0 for r in ref.tables["sessions"]), "no session ever closed"


def test_leaderboard_pe_trigger_fires_per_batch(refs):
    s, ops, _ref = refs["leaderboard"]
    facade = _SingleFacade(_single_db(s))
    try:
        run_ops(facade, ops)
        fires = facade.rows("SELECT fires FROM monitor")[0][0]
        assert fires == sum(1 for op in ops if op.kind == "ingest")
    finally:
        facade.close()


# ---------------------------------------------------------------------------
# force_join differential sweep on the streaming hot path (satellite)
# ---------------------------------------------------------------------------


class TestFraudJoinSweep:
    """Every join strategy must produce identical alerts from the
    window-to-table join — the PR 9 differential sweep extended from
    static tables to a live window on the ingest path."""

    STRATEGIES = (None, "inl", "hash", "merge", "bnl")

    @pytest.fixture(scope="class")
    def sweep(self):
        s = FraudScenario()
        ops = s.ops(SEED, Scale.smoke())
        results = {}
        for strategy in self.STRATEGIES:
            def pin(facade, strategy=strategy):
                facade.db.force_join = strategy
            results[strategy] = run_shape(s, ops, "single", setup=pin)
        return s, ops, results

    def test_all_strategies_agree(self, sweep):
        _s, _ops, results = sweep
        digests = {k: v.digest for k, v in results.items()}
        assert len(set(digests.values())) == 1, f"strategies diverge: {digests}"

    def test_all_strategies_match_oracle(self, sweep):
        s, ops, results = sweep
        for strategy, res in results.items():
            assert res.violations == [], f"{strategy}: {res.violations}"
            assert res.tables["alerts"] == s.expected_alerts(ops), strategy


# ---------------------------------------------------------------------------
# Harness plumbing
# ---------------------------------------------------------------------------


def test_unknown_shape_rejected(refs):
    s, ops, _ = refs["contention"]
    with pytest.raises(ValueError, match="unknown engine shape"):
        run_shape(s, ops, "quantum")


def test_recover_shape_requires_tmp_path(refs):
    s, ops, _ = refs["contention"]
    with pytest.raises(ValueError, match="tmp_path"):
        run_shape(s, ops, "recover")


def test_unexpected_abort_propagates():
    s = ContentionScenario()
    # a withdraw guaranteed to fail, not marked may_abort
    ops = [call("withdraw", 0, 10_000, key=0, may_abort=False)]
    from repro.common.errors import TransactionAborted

    with pytest.raises(TransactionAborted):
        run_shape(s, ops, "single")


def test_state_digest_is_order_insensitive():
    def read_a(sql):
        return [(1, 2), (3, 4)]

    def read_b(sql):
        return [(3, 4), (1, 2)]

    da, _ = state_digest(read_a, ("t",))
    db_, _ = state_digest(read_b, ("t",))
    assert da == db_


def test_partitioned_crash_recover_round_trip(refs, tmp_path):
    """Inline-partitioned durable run: kill mid-script, reopen, finish,
    and match the single-engine reference digest."""
    s, ops, ref = refs["leaderboard"]
    cut = len(ops) // 2
    kwargs = dict(
        partition_keys=s.partition_keys,
        workers="inline",
        recovery_dir=tmp_path / "lb",
        recovery="weak",
    )
    pdb = PartitionedDatabase(2, s.deploy, **kwargs)
    for op in ops[:cut]:
        pdb.ingest(op.target, [list(r) for r in op.rows])
    pdb.drain()
    pdb.flush_log()
    pdb.kill()

    recovered = PartitionedDatabase(2, s.deploy, **kwargs)
    try:
        for op in ops[cut:]:
            recovered.ingest(op.target, [list(r) for r in op.rows])
        recovered.drain()
        read = lambda sql: [tuple(r) for r in recovered.execute(sql).rows]  # noqa: E731
        digest, _ = state_digest(read, s.output_tables)
        assert digest == ref.digest
        assert s.check(read, ops, 0) == []
    finally:
        recovered.close()
