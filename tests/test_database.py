"""End-to-end SQL through the Database facade: caching, costs, lifecycle."""

import pytest

from repro.common.clock import CostModel, SimClock
from repro.common.errors import ConstraintViolation, NoSuchTableError
from repro.common.types import ColumnType as T
from repro.engine import Database, PlanCache
from repro.storage.schema import schema


def fresh_db():
    db = Database(cost=CostModel.calibrated())
    db.create_table(
        schema(
            "users",
            ("id", T.BIGINT, False),
            ("name", T.VARCHAR),
            ("age", T.INTEGER),
            primary_key=["id"],
        )
    )
    return db


def load(db, n=10):
    db.executemany(
        "INSERT INTO users (id, name, age) VALUES (?, ?, ?)",
        ((i, f"u{i}", 20 + i) for i in range(n)),
    )


# -- end-to-end statements ----------------------------------------------------

def test_full_crud_cycle():
    db = fresh_db()
    load(db)
    assert db.execute("SELECT count(*) FROM users").scalar() == 10

    assert db.execute("UPDATE users SET age = age + 10 WHERE id < ?", (5,)).rowcount == 5
    assert db.execute("SELECT age FROM users WHERE id = 0").scalar() == 30

    assert db.execute("DELETE FROM users WHERE age >= ?", (30,)).rowcount == 5
    assert db.execute("SELECT count(*) FROM users").scalar() == 5

    rows = db.query("SELECT id, name FROM users ORDER BY id LIMIT 2")
    assert rows == [{"id": 5, "name": "u5"}, {"id": 6, "name": "u6"}]


def test_constraint_violation_propagates():
    db = fresh_db()
    load(db, 2)
    with pytest.raises(ConstraintViolation):
        db.execute("INSERT INTO users (id, name, age) VALUES (0, 'dup', 1)")


# -- prepared-statement cache -------------------------------------------------

def test_repeated_statement_planned_exactly_once():
    db = fresh_db()
    load(db)
    sql = "SELECT name FROM users WHERE id = ?"
    plans_before = db.clock.events["sql_plan"]
    hits_before, misses_before = db.plan_cache.hits, db.plan_cache.misses
    for i in range(100):
        db.execute(sql, (i % 10,))
    # one cold plan, 99 cache hits — re-lex/re-parse/re-plan never happened
    assert db.clock.events["sql_plan"] - plans_before == 1
    assert db.clock.events["plan_cache_hit"] == 99
    assert db.plan_cache.hits - hits_before == 99
    assert db.plan_cache.misses - misses_before == 1


def test_cache_hit_is_cheaper_than_cold_plan():
    db = fresh_db()
    load(db)
    sql = "SELECT name FROM users WHERE id = ?"
    t0 = db.clock.now_us
    db.execute(sql, (1,))
    cold = db.clock.now_us - t0
    t1 = db.clock.now_us
    db.execute(sql, (2,))
    warm = db.clock.now_us - t1
    assert warm < cold
    assert cold - warm == pytest.approx(
        db.clock.cost.sql_plan_us - db.clock.cost.plan_cache_hit_us
    )


def test_ddl_invalidates_cache():
    db = fresh_db()
    load(db)
    sql = "SELECT count(*) FROM users WHERE age = ?"
    db.execute(sql, (21,))
    assert sql in db.plan_cache
    db.create_index("users", "users_age", ["age"])
    assert sql not in db.plan_cache
    # replanned statement now uses the new index
    db.execute(sql, (21,))
    assert db.last_counters["index_probes"] == 1


def test_stale_prepared_statement_rejected_after_ddl():
    from repro.common.errors import PlanningError

    db = fresh_db()
    load(db, 3)
    stmt = db.prepare("SELECT name FROM users WHERE id = ?")
    db.drop_table("users")
    db.create_table(schema("users", ("other", T.VARCHAR)))  # different shape
    with pytest.raises(PlanningError, match="stale"):
        db.execute_prepared(stmt, (1,))
    # re-preparing through the facade works against the new schema
    assert db.execute("SELECT count(*) FROM users").scalar() == 0


def test_drop_index_invalidates_cache():
    db = fresh_db()
    load(db)
    sql = "SELECT name FROM users WHERE id = ?"
    db.execute(sql, (1,))
    assert db.last_counters["index_probes"] == 1   # pk IndexScan
    db.drop_index("users", "users_pkey")
    db.execute(sql, (1,))                          # replans, falls back cleanly
    assert db.last_counters["index_probes"] == 0
    assert db.last_counters["rows_scanned"] == 10  # SeqScan now


def test_plan_cache_lru_eviction():
    cache = PlanCache(capacity=2)
    cache.put("a", "plan-a")
    cache.put("b", "plan-b")
    assert cache.get("a") == "plan-a"  # touch a -> b becomes LRU
    cache.put("c", "plan-c")
    assert cache.get("b") is None      # evicted
    assert cache.get("a") == "plan-a"
    assert cache.get("c") == "plan-c"
    assert cache.evictions == 1
    assert cache.stats()["size"] == 2


def test_plan_cache_rejects_bad_capacity():
    with pytest.raises(ValueError):
        PlanCache(capacity=0)


def test_database_lru_eviction_forces_replan():
    db = Database(cost=CostModel.free(), plan_cache_size=2)
    db.create_table(schema("t", ("a", T.INTEGER)))
    db.execute("SELECT a FROM t")           # miss 1
    db.execute("SELECT a + 1 FROM t")       # miss 2
    db.execute("SELECT a + 2 FROM t")       # miss 3, evicts statement 1
    db.execute("SELECT a FROM t")           # miss 4 (was evicted)
    assert db.plan_cache.misses == 4
    assert db.plan_cache.evictions == 2


# -- cost accounting ----------------------------------------------------------

def test_execution_charges_follow_counters():
    db = fresh_db()
    load(db, 10)
    events_before = db.clock.snapshot_events()
    t0 = db.clock.now_us
    db.execute("SELECT name FROM users WHERE name = 'u3'")  # seq scan
    delta = db.clock.snapshot_events() - events_before
    cost = db.clock.cost
    assert delta["rows_scanned"] == 10
    assert delta["txn_begin"] == 1 and delta["txn_commit"] == 1
    expected = (
        cost.sql_plan_us  # cold plan
        + cost.txn_begin_us  # implicit single-statement transaction
        + cost.sql_stmt_us
        + 10 * cost.sql_row_us
        + cost.txn_commit_us
    )
    assert db.clock.now_us - t0 == pytest.approx(expected)


def test_free_cost_model_never_advances_clock():
    db = Database(cost=CostModel.free())
    db.create_table(schema("t", ("a", T.INTEGER)))
    db.execute("INSERT INTO t VALUES (1)")
    db.execute("SELECT * FROM t")
    assert db.clock.now_us == 0.0


def test_lifetime_counters_accumulate():
    db = fresh_db()
    load(db, 4)
    db.execute("SELECT * FROM users")
    db.execute("SELECT * FROM users")
    assert db.counters["rows_inserted"] == 4
    assert db.counters["rows_scanned"] == 8
    assert db.last_counters["rows_scanned"] == 4


def test_executemany_last_counters_aggregate_across_rows():
    # last_counters after a batch is the aggregate, not the final row's.
    db = fresh_db()
    n = db.executemany(
        "INSERT INTO users (id, name, age) VALUES (?, ?, ?)",
        ((i, f"u{i}", 20 + i) for i in range(7)),
    )
    assert n == 7
    assert db.last_counters["rows_inserted"] == 7


def test_failed_multirow_statement_leaves_no_partial_writes():
    # Statement-level atomicity via the implicit transaction: the first row
    # of the failing INSERT must be undone, not committed.
    db = fresh_db()
    load(db, 1)  # id 0 exists
    with pytest.raises(ConstraintViolation):
        db.execute(
            "INSERT INTO users (id, name, age) VALUES (5, 'a', 1), (0, 'dup', 2)"
        )
    assert db.execute("SELECT count(*) FROM users").scalar() == 1
    assert db.execute("SELECT count(*) FROM users WHERE id = 5").scalar() == 0


def test_stats_reports_schema_epoch_and_txn_counters():
    db = fresh_db()
    load(db, 2)                       # one implicit txn (the batch)
    db.execute("SELECT 1")            # another implicit txn
    with pytest.raises(ConstraintViolation):
        db.execute("INSERT INTO users (id, name, age) VALUES (0, 'dup', 1)")
    stats = db.stats()
    assert stats["schema_epoch"] == db.schema_epoch == 1  # one CREATE TABLE
    txns = stats["transactions"]
    assert txns["begun"] == 3
    assert txns["committed"] == 2
    assert txns["aborted"] == 1
    assert txns["implicit"] == 3
    assert txns["procedure_calls"] == 0
    assert txns["open"] is False


def test_resultset_is_iterable_sized_and_indexable():
    db = fresh_db()
    load(db, 3)
    result = db.execute("SELECT id, name FROM users ORDER BY id")
    assert len(result) == 3
    assert bool(result)
    assert [row[0] for row in result] == [0, 1, 2]
    assert result[1] == (1, "u1")
    empty = db.execute("SELECT id FROM users WHERE id = -1")
    assert not empty and len(empty) == 0


# -- misc ---------------------------------------------------------------------

def test_external_clock_shared():
    clock = SimClock(CostModel.calibrated())
    db = Database(clock=clock)
    db.create_table(schema("t", ("a", T.INTEGER)))
    db.execute("INSERT INTO t VALUES (1)")
    assert clock.now_us > 0


def test_cost_and_clock_together_rejected():
    with pytest.raises(ValueError):
        Database(cost=CostModel.free(), clock=SimClock())


def test_drop_table():
    db = fresh_db()
    db.drop_table("users")
    with pytest.raises(NoSuchTableError):
        db.execute("SELECT 1 FROM users")
