"""Lexer round-trips: token kinds, literals, comments, errors."""

import pytest

from repro.common.errors import LexError
from repro.sql.lexer import Token, TokenType, tokenize


def kinds(sql):
    return [t.type for t in tokenize(sql)]


def values(sql):
    return [t.value for t in tokenize(sql)[:-1]]  # drop EOF


def test_keywords_and_identifiers_case_insensitive():
    tokens = tokenize("SeLeCt Foo FROM bar_baz")
    assert tokens[0].is_keyword("select")
    assert tokens[1] == Token(TokenType.IDENT, "foo", 7)
    assert tokens[2].is_keyword("from")
    assert tokens[3].value == "bar_baz"


def test_numbers_int_float_exponent():
    assert values("1 42 3.5 .25 1e3 2.5e-2") == [1, 42, 3.5, 0.25, 1000.0, 0.025]
    assert isinstance(values("7")[0], int)
    assert isinstance(values("7.0")[0], float)


def test_string_literal_with_quote_escape():
    assert values("'it''s'") == ["it's"]
    assert values("''") == [""]


def test_unterminated_string_raises():
    with pytest.raises(LexError):
        tokenize("'oops")


def test_line_comment_skipped():
    toks = tokenize("select 1 -- trailing comment\n , 2")
    assert [t.value for t in toks[:-1]] == ["select", 1, ",", 2]


def test_params_and_operators():
    toks = tokenize("a >= ? and b != ? or c <> 3")
    ops = [t.value for t in toks if t.type is TokenType.OP]
    assert ops == [">=", "<>", "<>"]  # != normalised to <>
    assert sum(1 for t in toks if t.type is TokenType.PARAM) == 2


def test_illegal_character():
    with pytest.raises(LexError):
        tokenize("select @foo")


def test_eof_token_terminates():
    toks = tokenize("select 1")
    assert toks[-1].type is TokenType.EOF
    assert toks[-1].position == len("select 1")
