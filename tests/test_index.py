"""Index behaviour: hash lookup, unique enforcement, ordered range scans."""

import pytest

from repro.common.errors import ConstraintViolation
from repro.storage.index import HashIndex, OrderedIndex, rebuild


# -- HashIndex ---------------------------------------------------------------

def test_hash_insert_lookup_delete():
    idx = HashIndex("i", ["k"])
    idx.insert((1,), 10)
    idx.insert((1,), 11)
    idx.insert((2,), 12)
    assert list(idx.lookup((1,))) == [10, 11]  # deterministic (sorted)
    idx.delete((1,), 10)
    assert list(idx.lookup((1,))) == [11]
    idx.delete((1,), 11)
    assert list(idx.lookup((1,))) == []
    assert len(idx) == 1


def test_hash_unique_rejects_duplicates():
    idx = HashIndex("pk", ["k"], unique=True)
    idx.insert((1,), 10)
    with pytest.raises(ConstraintViolation):
        idx.insert((1,), 11)
    assert list(idx.lookup((1,))) == [10]


def test_hash_delete_ignores_stale_rowid():
    idx = HashIndex("pk", ["k"], unique=True)
    idx.insert((1,), 10)
    idx.delete((1,), 99)  # wrong rowid: entry survives
    assert list(idx.lookup((1,))) == [10]


# -- OrderedIndex ------------------------------------------------------------

def test_ordered_range_scan_bounds():
    idx = OrderedIndex("o", ["k"])
    for i, rid in [(5, 1), (3, 2), (8, 3), (5, 4), (1, 5)]:
        idx.insert((i,), rid)
    assert list(idx.range_scan(3, 5)) == [2, 1, 4]                    # inclusive
    assert list(idx.range_scan(3, 5, lo_inclusive=False)) == [1, 4]
    assert list(idx.range_scan(3, 5, hi_inclusive=False)) == [2]
    assert list(idx.range_scan(None, 3)) == [5, 2]                    # open low
    assert list(idx.range_scan(6, None)) == [3]                       # open high
    assert list(idx.range_scan(None, None)) == [5, 2, 1, 4, 3]


def test_ordered_insert_delete_and_min_max():
    idx = OrderedIndex("o", ["k"])
    idx.insert((5,), 1)
    idx.insert((5,), 2)
    idx.insert((2,), 3)
    assert idx.min_key() == 2 and idx.max_key() == 5
    idx.delete((5,), 1)
    assert list(idx.lookup((5,))) == [2]
    idx.delete((5,), 2)
    assert idx.max_key() == 2


def test_ordered_skips_null_keys():
    idx = OrderedIndex("o", ["k"])
    idx.insert((None,), 1)
    assert len(idx) == 0
    assert list(idx.lookup((None,))) == []
    assert idx.contains((None,)) is False


def test_ordered_requires_single_column():
    with pytest.raises(ValueError):
        OrderedIndex("o", ["a", "b"])


def test_rebuild():
    idx = HashIndex("i", ["a"])
    idx.insert((9,), 99)
    rows = [(1, (10, "x")), (2, (20, "y"))]
    rebuild(idx, rows, key_of=lambda row, cols: (row[0],))
    assert list(idx.lookup((9,))) == []
    assert list(idx.lookup((10,))) == [1]
    assert list(idx.lookup((20,))) == [2]
