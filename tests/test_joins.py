"""Differential testing of the join suite.

Every join strategy — cost-based default, forced hash, merge,
block-nested-loop, and index-nested-loop — must produce the identical
row set for the same query.  The fixtures cover indexed and unindexed
equi-joins, LEFT OUTER joins, NULL join keys, residual ON conjuncts,
non-equi joins, comma/cross joins, and aggregates over joins.
"""

import pytest

from repro.common.errors import PlanningError
from repro.common.types import ColumnType as T
from repro.engine.database import Database
from repro.sql.planner import JOIN_STRATEGIES
from repro.storage.schema import schema


@pytest.fixture
def db():
    database = Database()
    database.create_table(
        schema(
            "dept",
            ("id", T.BIGINT, False),
            ("name", T.VARCHAR),
            ("budget", T.FLOAT),
            primary_key=["id"],
        )
    )
    database.create_table(
        schema(
            "emp",
            ("id", T.BIGINT, False),
            ("dept_ref", T.BIGINT),
            ("salary", T.FLOAT),
            ("name", T.VARCHAR),
            primary_key=["id"],
        )
    )
    # dept.id is indexed (primary key); emp.dept_ref is NOT indexed, so an
    # equi-join on it exercises the unindexed paths.
    for i in range(1, 9):
        database.execute(
            "INSERT INTO dept (id, name, budget) VALUES (?, ?, ?)",
            (i, f"dept-{i}", 1000.0 * i),
        )
    rows = []
    for i in range(1, 61):
        dept_ref = None if i % 13 == 0 else (i % 10) + 1  # refs 1..10: 9, 10 dangle
        rows.append((i, dept_ref, 100.0 * (i % 7), f"emp-{i}"))
    for row in rows:
        database.execute(
            "INSERT INTO emp (id, dept_ref, salary, name) VALUES (?, ?, ?, ?)", row
        )
    database.execute("ANALYZE")
    return database


QUERIES = [
    # unindexed equi-join (fraud-style shape)
    "SELECT e.id, d.name FROM emp e JOIN dept d ON e.dept_ref = d.id",
    # equi-join written with the indexed side as inner
    "SELECT d.name, e.name FROM dept d JOIN emp e ON d.id = e.dept_ref",
    # residual ON conjunct alongside the equi key
    "SELECT e.id, d.id FROM emp e JOIN dept d"
    " ON e.dept_ref = d.id AND e.salary > d.budget / 20.0",
    # LEFT OUTER: dangling emp rows (dept_ref NULL or 9/10) must survive
    "SELECT e.id, d.name FROM emp e LEFT JOIN dept d ON e.dept_ref = d.id",
    # LEFT OUTER with residual ON condition
    "SELECT e.id, d.id FROM emp e LEFT JOIN dept d"
    " ON e.dept_ref = d.id AND d.budget > 3000.0",
    # non-equi join: hash/merge are infeasible, planner must fall back
    "SELECT e.id, d.id FROM emp e JOIN dept d ON e.salary < d.budget / 10.0",
    # comma join with WHERE-clause join predicate
    "SELECT e.id, d.name FROM emp e, dept d"
    " WHERE e.dept_ref = d.id AND e.salary >= 200.0",
    # aggregate over a join
    "SELECT d.name, COUNT(*), SUM(e.salary) FROM emp e"
    " JOIN dept d ON e.dept_ref = d.id GROUP BY d.name",
    # three-way join
    "SELECT e.id, d.name, m.name FROM emp e"
    " JOIN dept d ON e.dept_ref = d.id"
    " JOIN emp m ON m.dept_ref = d.id AND m.id < e.id",
    # join with ORDER BY and WHERE filter
    "SELECT e.name, d.name FROM emp e JOIN dept d ON e.dept_ref = d.id"
    " WHERE d.budget > 2000.0 ORDER BY e.id",
]


def run_all_strategies(db, sql, params=()):
    results = {}
    for strategy in (None, *JOIN_STRATEGIES):
        db.force_join = strategy
        rows = db.execute(sql, params).rows
        results[strategy or "cost"] = rows
    db.force_join = None
    return results


@pytest.mark.parametrize("sql", QUERIES)
def test_all_strategies_agree(db, sql):
    results = run_all_strategies(db, sql)
    baseline = sorted(results["cost"], key=repr)
    assert baseline, f"fixture query returned no rows: {sql}"
    for strategy, rows in results.items():
        assert sorted(rows, key=repr) == baseline, (
            f"strategy {strategy!r} diverged on {sql}"
        )


def test_order_by_preserved_under_every_strategy(db):
    sql = (
        "SELECT e.id FROM emp e JOIN dept d ON e.dept_ref = d.id"
        " ORDER BY e.id DESC"
    )
    for strategy, rows in run_all_strategies(db, sql).items():
        ids = [r[0] for r in rows]
        assert ids == sorted(ids, reverse=True), f"{strategy} broke ORDER BY"


def test_null_keys_never_match(db):
    # emp rows with NULL dept_ref (13, 26, 39, 52) join to nothing
    sql = (
        "SELECT e.id FROM emp e JOIN dept d ON e.dept_ref = d.id"
        " WHERE e.id IN (13, 26, 39, 52)"
    )
    for strategy, rows in run_all_strategies(db, sql).items():
        assert rows == [], f"{strategy} matched a NULL join key"
    # ... but LEFT OUTER keeps them with NULL-padded dept columns
    sql = (
        "SELECT e.id, d.id FROM emp e LEFT JOIN dept d ON e.dept_ref = d.id"
        " WHERE e.id IN (13, 26)"
    )
    for strategy, rows in run_all_strategies(db, sql).items():
        assert sorted(rows) == [(13, None), (26, None)], strategy


def test_chosen_operators_match_forcing(db):
    sql = "SELECT e.id, d.name FROM emp e JOIN dept d ON e.dept_ref = d.id"
    expected = {
        "hash": "HashJoin",
        "merge": "MergeJoin",
        "bnl": "BlockNestedLoopJoin",
        # dept.id is the primary-key index, so forcing inl uses it
        "inl": "IndexNestedLoopJoin",
    }
    for strategy, op in expected.items():
        db.force_join = strategy
        info = db.explain(sql)
        assert info["joins"][0]["op"] == op, (strategy, info["joins"][0])
    db.force_join = None


def test_cost_based_picks_hash_for_unindexed_equi_join(db):
    # join key on the *emp* side is unindexed when dept drives the probe:
    # swap so neither visible index applies and hash must win on cost
    db.create_table(schema("tags", ("emp_ref", T.BIGINT), ("label", T.VARCHAR)))
    for i in range(1, 61):
        db.execute(
            "INSERT INTO tags (emp_ref, label) VALUES (?, ?)",
            (i, f"label-{i % 5}",)
        )
    db.execute("ANALYZE")
    info = db.explain(
        "SELECT e.id, t.label FROM emp e JOIN tags t ON e.id + 0 = t.emp_ref"
    )
    assert info["joins"][0]["op"] == "HashJoin", info["joins"][0]
    considered = info["joins"][0]["considered"]
    assert considered["hash"] < considered["bnl"]


def test_non_equi_forced_hash_falls_back_to_bnl(db):
    sql = "SELECT e.id, d.id FROM emp e JOIN dept d ON e.salary < d.budget"
    for strategy in ("hash", "merge"):
        db.force_join = strategy
        info = db.explain(sql)
        assert info["joins"][0]["op"] == "BlockNestedLoopJoin", strategy
    db.force_join = None


def test_inl_without_index_uses_nested_loop(db):
    # emp.dept_ref has no index, so inner=emp under forced inl has no
    # index path: the legacy per-outer rescan operator runs instead
    db.force_join = "inl"
    info = db.explain(
        "SELECT d.id, e.id FROM dept d JOIN emp e ON d.id = e.dept_ref"
    )
    assert info["joins"][0]["op"] == "NestedLoopJoin"
    db.force_join = None


def test_force_join_rejects_unknown_strategy(db):
    with pytest.raises(PlanningError):
        db.force_join = "quantum"


def test_force_join_change_invalidates_plan_cache(db):
    sql = "SELECT e.id, d.name FROM emp e JOIN dept d ON e.dept_ref = d.id"
    db.execute(sql)
    db.force_join = "bnl"
    assert db.explain(sql)["joins"][0]["op"] == "BlockNestedLoopJoin"
    db.force_join = None


def test_hash_join_scans_inner_once(db):
    def scanned() -> int:
        return dict(db.counters).get("rows_scanned", 0)

    db.force_join = "bnl"
    before = scanned()
    db.execute("SELECT e.id, d.name FROM emp e JOIN dept d ON e.dept_ref = d.id")
    bnl_scanned = scanned() - before
    db.force_join = "hash"
    before = scanned()
    db.execute("SELECT e.id, d.name FROM emp e JOIN dept d ON e.dept_ref = d.id")
    hash_scanned = scanned() - before
    db.force_join = None
    # both materialise each side exactly once: 60 emp + 8 dept
    assert hash_scanned == 68
    assert bnl_scanned == 68
