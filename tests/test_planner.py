"""Planner tests: access-path selection asserted through execution counters.

The counters come from :class:`ExecutionContext`: ``index_probes`` counts
index lookups, ``rows_scanned`` counts rows the scan actually visited.  A
point query must do 1 probe and visit 1 row — not the full table.
"""

import pytest

from repro.common.errors import PlanningError
from repro.common.types import ColumnType as T
from repro.sql.executor import ExecutionContext, IndexRangeScan, IndexScan, SeqScan
from repro.sql.planner import prepare, split_conjuncts
from repro.sql.parser import parse_expression
from repro.storage.catalog import Catalog
from repro.storage.schema import schema

N = 100


@pytest.fixture
def catalog():
    cat = Catalog()
    users = cat.create_table(
        schema(
            "users",
            ("id", T.BIGINT, False),
            ("grp", T.INTEGER, False),
            ("score", T.FLOAT),
            ("name", T.VARCHAR),
            primary_key=["id"],
        )
    )
    users.create_index("users_grp_ord", ["grp"], ordered=True)
    for i in range(N):
        users.insert((i, i % 10, float(i), f"u{i}"))
    orders = cat.create_table(
        schema("orders", ("oid", T.BIGINT, False), ("uid", T.BIGINT), ("amt", T.FLOAT),
               primary_key=["oid"])
    )
    for i in range(10):
        orders.insert((i, i % 5, 10.0 * i))
    return cat


def run(catalog, sql, params=()):
    ctx = ExecutionContext(catalog, params)
    result = prepare(sql, catalog).execute(ctx)
    return result, ctx.counters


# -- access-path selection ---------------------------------------------------

def test_point_query_uses_index_one_probe_one_row(catalog):
    result, counters = run(catalog, "SELECT name FROM users WHERE id = ?", (42,))
    assert result.rows == [("u42",)]
    assert counters["index_probes"] == 1
    assert counters["rows_scanned"] == 1  # not the full table


def test_unindexed_predicate_falls_back_to_seqscan(catalog):
    result, counters = run(catalog, "SELECT id FROM users WHERE name = ?", ("u42",))
    assert result.rows == [(42,)]
    assert counters["index_probes"] == 0
    assert counters["rows_scanned"] == N


def test_range_predicate_uses_ordered_index(catalog):
    result, counters = run(
        catalog, "SELECT id FROM users WHERE grp >= ? AND grp <= ?", (3, 4)
    )
    assert len(result) == 20
    assert counters["index_probes"] == 1
    assert counters["rows_scanned"] == 20


def test_between_uses_ordered_index(catalog):
    result, counters = run(catalog, "SELECT id FROM users WHERE grp BETWEEN 3 AND 4")
    assert len(result) == 20
    assert counters["index_probes"] == 1
    assert counters["rows_scanned"] == 20


def test_half_open_range(catalog):
    result, counters = run(catalog, "SELECT id FROM users WHERE grp > 8")
    assert len(result) == 10
    assert counters["index_probes"] == 1


def test_equality_plus_residual_uses_index(catalog):
    # pk equality chooses IndexScan; the extra predicate becomes residual
    result, counters = run(
        catalog, "SELECT id FROM users WHERE id = ? AND score > ?", (42, 100.0)
    )
    assert result.rows == []
    assert counters["index_probes"] == 1
    assert counters["rows_scanned"] == 1


def test_planner_emits_expected_scan_nodes(catalog):
    from repro.sql.planner import build_scan
    from repro.sql.expressions import Scope

    users = catalog.table("users")
    scope = Scope()
    scope.add_source("users", users.schema)
    arity = users.schema.arity()

    def scan_for(where_sql):
        return build_scan(parse_expression(where_sql), users, scope, arity)

    assert isinstance(scan_for("id = ?"), IndexScan)
    assert isinstance(scan_for("grp < ?"), IndexRangeScan)
    assert isinstance(scan_for("name = ?"), SeqScan)
    assert isinstance(scan_for("score > 1.0"), SeqScan)  # no ordered index on score
    assert isinstance(scan_for("id = ? OR id = ?"), SeqScan)  # OR is not sargable


def test_null_key_probe_returns_empty(catalog):
    result, counters = run(catalog, "SELECT id FROM users WHERE id = ?", (None,))
    assert result.rows == []


def test_split_conjuncts_preserves_order():
    exprs = split_conjuncts(parse_expression("a = 1 AND b = 2 AND c = 3"))
    assert len(exprs) == 3


# -- DML access paths ---------------------------------------------------------

def test_update_by_pk_uses_index(catalog):
    result, counters = run(catalog, "UPDATE users SET score = ? WHERE id = ?", (999.0, 42))
    assert result.rowcount == 1
    assert counters["index_probes"] == 1
    assert counters["rows_scanned"] == 1
    assert counters["rows_updated"] == 1
    check, _ = run(catalog, "SELECT score FROM users WHERE id = 42")
    assert check.scalar() == 999.0


def test_delete_by_range_uses_ordered_index(catalog):
    result, counters = run(catalog, "DELETE FROM users WHERE grp >= 8")
    assert result.rowcount == 20
    assert counters["index_probes"] == 1
    assert counters["rows_deleted"] == 20
    left, _ = run(catalog, "SELECT count(*) FROM users")
    assert left.scalar() == N - 20


def test_update_moving_row_within_scanned_index_is_safe(catalog):
    # Materialise-then-mutate: shifting grp into the scanned range must not
    # double-visit rows even though the scan's index is being rewritten.
    result, _ = run(catalog, "UPDATE users SET grp = grp + 1 WHERE grp >= 5")
    assert result.rowcount == 50


# -- projection, ordering, aggregation ---------------------------------------

def test_projection_aliases_and_result_columns(catalog):
    result, _ = run(catalog, "SELECT id AS user_id, score * 2 AS dbl FROM users WHERE id = 1")
    assert result.columns == ("user_id", "dbl")
    assert result.rows == [(1, 2.0)]
    assert result.column("dbl") == [2.0]


def test_order_by_expression_alias_and_ordinal(catalog):
    by_expr, _ = run(catalog, "SELECT id FROM users WHERE id < 3 ORDER BY score DESC")
    assert by_expr.rows == [(2,), (1,), (0,)]
    by_alias, _ = run(catalog, "SELECT score AS s, id FROM users WHERE id < 3 ORDER BY s DESC")
    assert [r[1] for r in by_alias.rows] == [2, 1, 0]
    by_ordinal, _ = run(catalog, "SELECT id FROM users WHERE id < 3 ORDER BY 1 DESC")
    assert by_ordinal.rows == [(2,), (1,), (0,)]


def test_limit_offset(catalog):
    result, _ = run(catalog, "SELECT id FROM users ORDER BY id LIMIT ? OFFSET ?", (3, 5))
    assert result.rows == [(5,), (6,), (7,)]
    with pytest.raises(PlanningError):
        run(catalog, "SELECT id FROM users LIMIT ?", (-1,))


def test_limit_without_order_stops_scanning_early(catalog):
    result, counters = run(catalog, "SELECT id FROM users LIMIT 1")
    assert len(result) == 1
    assert counters["rows_scanned"] == 1  # not the whole table
    result, counters = run(catalog, "SELECT id FROM users WHERE grp = 3 LIMIT 2")
    assert len(result) == 2
    assert counters["rows_scanned"] < N  # stopped at the second match
    # ORDER BY still requires (and pays for) the full scan
    _, counters = run(catalog, "SELECT id FROM users ORDER BY score LIMIT 1")
    assert counters["rows_scanned"] == N


def test_aggregates_global_and_grouped(catalog):
    result, _ = run(catalog, "SELECT count(*), min(id), max(id), avg(score) FROM users")
    assert result.rows == [(N, 0, N - 1, sum(range(N)) / N)]
    grouped, _ = run(
        catalog,
        "SELECT grp, count(*) AS n, sum(score) FROM users GROUP BY grp "
        "HAVING count(*) > 0 ORDER BY grp LIMIT 2",
    )
    assert grouped.rows[0][0] == 0 and grouped.rows[0][1] == 10
    assert grouped.columns == ("grp", "n", "sum")


def test_global_aggregate_on_empty_input_yields_one_row(catalog):
    result, _ = run(catalog, "SELECT count(*), sum(score) FROM users WHERE id = -1")
    assert result.rows == [(0, None)]


def test_grouped_query_rejects_naked_columns(catalog):
    with pytest.raises(PlanningError, match="GROUP BY"):
        run(catalog, "SELECT name, count(*) FROM users GROUP BY grp")
    with pytest.raises(PlanningError, match="GROUP BY"):
        run(catalog, "SELECT grp, count(*) FROM users GROUP BY grp HAVING score > 1")


def test_having_rejects_select_alias_with_context(catalog):
    # standard SQL: HAVING sees group columns/aggregates, not output aliases
    with pytest.raises(PlanningError, match="HAVING.*'n'"):
        run(catalog, "SELECT grp, count(*) n FROM users GROUP BY grp HAVING n > 1")
    ok, _ = run(
        catalog,
        "SELECT grp, count(*) n FROM users GROUP BY grp HAVING count(*) > 1 ORDER BY grp",
    )
    assert len(ok) == 10


def test_group_by_matches_qualified_and_unqualified_spellings(catalog):
    # GROUP BY g covers t.g (and vice versa): matching is by resolved slot
    a, _ = run(catalog, "SELECT users.grp FROM users GROUP BY grp ORDER BY users.grp")
    b, _ = run(catalog, "SELECT grp FROM users u GROUP BY u.grp ORDER BY 1")
    assert a.rows == b.rows == [(g,) for g in range(10)]
    c, _ = run(
        catalog,
        "SELECT grp + 1, count(*) FROM users u GROUP BY u.grp + 1 ORDER BY 1 LIMIT 2",
    )
    assert c.rows == [(1, 10), (2, 10)]


def test_aggregate_in_where_rejected(catalog):
    with pytest.raises(PlanningError):
        run(catalog, "SELECT id FROM users WHERE count(*) > 1")


def test_distinct(catalog):
    result, _ = run(catalog, "SELECT DISTINCT grp FROM users ORDER BY grp")
    assert result.rows == [(g,) for g in range(10)]


def test_count_distinct(catalog):
    result, _ = run(catalog, "SELECT count(DISTINCT grp) FROM users")
    assert result.scalar() == 10


# -- joins --------------------------------------------------------------------

def test_inner_join(catalog):
    result, _ = run(
        catalog,
        "SELECT u.id, o.amt FROM users u JOIN orders o ON o.uid = u.id "
        "WHERE u.id < 2 ORDER BY u.id, o.amt",
    )
    assert result.rows == [(0, 0.0), (0, 50.0), (1, 10.0), (1, 60.0)]


def test_left_join_pads_nulls(catalog):
    result, _ = run(
        catalog,
        "SELECT u.id, o.oid FROM users u LEFT JOIN orders o ON o.uid = u.id "
        "WHERE u.id BETWEEN 4 AND 5 ORDER BY u.id, o.oid",
    )
    assert (5, None) in result.rows
    assert (4, 4) in result.rows and (4, 9) in result.rows


def test_equi_join_uses_inner_table_index(catalog):
    # ON u.id = o.uid: users is inner with a pk index on id -> one index
    # probe per order row instead of a 100-row scan per order row.
    result, counters = run(
        catalog,
        "SELECT o.oid, u.name FROM orders o JOIN users u ON u.id = o.uid ORDER BY o.oid",
    )
    assert len(result) == 10
    assert counters["index_probes"] == 10          # one per outer (order) row
    assert counters["rows_scanned"] == 10 + 10     # orders seqscan + probed users
    # same rows with the tables swapped: no index on orders.uid, so the
    # cost model picks a hash join — inner table scanned once to build,
    # not once per outer row as the legacy nested loop did.
    swapped, swapped_counters = run(
        catalog,
        "SELECT o.oid, u.name FROM users u JOIN orders o ON u.id = o.uid ORDER BY o.oid",
    )
    assert swapped.rows == result.rows
    assert swapped_counters["rows_scanned"] == 100 + 10  # users seqscan + orders build


def test_left_index_join_pads_nulls(catalog):
    result, counters = run(
        catalog,
        "SELECT o.oid, u.name FROM orders o LEFT JOIN users u ON u.id = o.uid + 1000",
    )
    assert len(result) == 10
    assert all(name is None for _oid, name in result.rows)
    assert counters["index_probes"] == 10  # probes still happen, all miss


def test_insert_select_arity_mismatch_caught_at_plan_time(catalog):
    # must fail even though the source SELECT would return zero rows
    with pytest.raises(PlanningError):
        prepare(
            "INSERT INTO orders (oid, uid) SELECT id FROM users WHERE id = -1",
            catalog,
        )


def test_join_pushes_base_predicate_into_scan(catalog):
    ctx = ExecutionContext(catalog, (3,))
    stmt = prepare(
        "SELECT u.id, o.oid FROM users u JOIN orders o ON o.uid = u.id WHERE u.id = ?",
        catalog,
    )
    stmt.execute(ctx)
    # u.id = ? probed the users pk instead of scanning 100 users; the join
    # itself seq-scans orders once (10 rows) for the single outer row.
    assert ctx.counters["index_probes"] == 1
    assert ctx.counters["rows_scanned"] == 1 + 10


def test_order_by_ambiguous_output_name_rejected(catalog):
    with pytest.raises(PlanningError):
        run(
            catalog,
            "SELECT u.id, o.oid AS id FROM users u JOIN orders o ON o.uid = u.id "
            "ORDER BY id",
        )
    # qualified or ordinal forms still work
    ok, _ = run(
        catalog,
        "SELECT u.id, o.oid AS id FROM users u JOIN orders o ON o.uid = u.id "
        "WHERE u.id = 0 ORDER BY 2",
    )
    assert [r[1] for r in ok.rows] == [0, 5]


def test_insert_explicit_null_takes_column_default(catalog):
    # column subset: unmentioned columns default (to NULL here)
    prepare("INSERT INTO orders (oid) VALUES (?)", catalog).execute(
        ExecutionContext(catalog, (500,))
    )
    result, _ = run(catalog, "SELECT uid, amt FROM orders WHERE oid = 500")
    assert result.rows == [(None, None)]


def test_select_without_from_honours_where_and_limit(catalog):
    hit, _ = run(catalog, "SELECT 1 WHERE 1 = 1")
    assert hit.rows == [(1,)]
    miss, _ = run(catalog, "SELECT 1 WHERE 1 = 2")
    assert miss.rows == []
    unknown, _ = run(catalog, "SELECT 1 WHERE ? = 1", (None,))
    assert unknown.rows == []  # NULL predicate -> not satisfied
    # a false WHERE suppresses the select list entirely (no eager 1/0)
    guarded, _ = run(catalog, "SELECT 1 / 0 WHERE 1 = 2")
    assert guarded.rows == []
    limited, _ = run(catalog, "SELECT 1 LIMIT 0")
    assert limited.rows == []
    offset, _ = run(catalog, "SELECT 1 LIMIT 5 OFFSET 1")
    assert offset.rows == []


# -- errors -------------------------------------------------------------------

def test_unknown_table_and_column_raise_at_plan_time(catalog):
    with pytest.raises(Exception):
        prepare("SELECT 1 FROM nope", catalog)
    with pytest.raises(PlanningError):
        prepare("SELECT nope FROM users", catalog)


def test_missing_parameters_rejected_at_execute(catalog):
    stmt = prepare("SELECT id FROM users WHERE id = ?", catalog)
    with pytest.raises(PlanningError):
        stmt.execute(ExecutionContext(catalog, ()))


def test_insert_arity_checked_at_plan_time(catalog):
    from repro.common.errors import NoSuchColumnError

    with pytest.raises(PlanningError):
        prepare("INSERT INTO users (id, grp) VALUES (1, 2, 3)", catalog)
    with pytest.raises(NoSuchColumnError):
        prepare("INSERT INTO users (id, nope) VALUES (1, 2)", catalog)
