"""Compiled expressions vs the closure-tree interpreter.

The compiler (:mod:`repro.sql.compile`) generates Python source for each
expression tree; the interpreter (:mod:`repro.sql.expressions`) is the
reference semantics.  The contract is *exact agreement* — same values,
same NULL propagation, same errors — so the core here is a property
test: every expression shape evaluated over deterministic pseudo-random
rows (with NULLs) by both evaluators, in both value and predicate form.
"""

import pytest

from repro.common.errors import ExpressionError
from repro.common.types import ColumnType as T
from repro.sql.ast import Binary, Literal
from repro.sql.compile import compile_expr, compile_predicate, fold_constants
from repro.sql.expressions import (
    Scope,
    compile_expr as interpret_expr,
    predicate as interpret_predicate,
)
from repro.sql.parser import parse_expression
from repro.storage.schema import schema


def make_scope() -> Scope:
    scope = Scope()
    scope.add_source(
        "t",
        schema(
            "t",
            ("a", T.BIGINT),
            ("b", T.BIGINT),
            ("x", T.FLOAT),
            ("s", T.VARCHAR),
            ("flag", T.BOOLEAN),
        ),
    )
    return scope


def lcg(seed: int):
    state = seed

    def next_u32() -> int:
        nonlocal state
        state = (1103515245 * state + 12345) % (1 << 31)
        return state

    return next_u32


def random_rows(n: int, seed: int = 0xC0FFEE) -> list[tuple]:
    """Deterministic rows mixing ints, floats, strings, bools, and NULLs."""
    rnd = lcg(seed)
    strings = ("alpha", "beta", "gamma", "", "Alpha", None)
    rows = []
    for _ in range(n):
        a = None if rnd() % 7 == 0 else rnd() % 20 - 10
        b = None if rnd() % 7 == 0 else rnd() % 5
        x = None if rnd() % 9 == 0 else (rnd() % 1000) / 10.0
        s = strings[rnd() % 6]
        flag = (None, True, False)[rnd() % 3]
        rows.append((a, b, x, s, flag))
    return rows


#: every expression-language construct: arithmetic, comparison, boolean
#: logic, NULL tests, IN/BETWEEN/LIKE/CASE, scalar functions, params
EXPRESSIONS = [
    "a + b * 2",
    "a - b / 2",
    "-a + 7",
    "a % 3",
    "x * 1.5 + a",
    "a = b",
    "a <> b",
    "a < b OR a > b + 3",
    "a >= 0 AND b <= 3",
    "NOT (a > 0)",
    "a > 0 AND x > 50.0",
    "a > 0 OR flag",
    "flag AND a IS NOT NULL",
    "a IS NULL",
    "x IS NOT NULL AND x < 25.0",
    "a IN (1, 2, 3, b)",
    "a NOT IN (0, 5)",
    "a BETWEEN -2 AND b",
    "x NOT BETWEEN 10.0 AND 90.0",
    "s = 'alpha'",
    "s LIKE 'al%'",
    "s LIKE '%a'",
    "s NOT LIKE '_eta'",
    "UPPER(s) = 'ALPHA'",
    "LOWER(s) LIKE 'alpha%'",
    "LENGTH(s) > 3",
    "ABS(a) + ABS(b)",
    "COALESCE(a, b, 0)",
    "COALESCE(x, 0.0) * 2.0",
    "CASE WHEN a > 0 THEN 'pos' WHEN a < 0 THEN 'neg' ELSE 'zero' END",
    "CASE WHEN flag THEN a ELSE b END",
    "LEAST(a, b)",
    "GREATEST(a, b, 0)",
    "NULLIF(b, 0)",
    "ROUND(x / 3.0, 1)",
    "a = ? OR b = ?",
    "x > ? AND s LIKE ?",
    "(a + 1) * (b - 1) = a * b + a - b - 1 + 2",
    "1 + 2 * 3 = 7",
    "NULL IS NULL",
    "NOT flag OR flag",
]

PARAMS = (3, "a%", 42.5)


def both_results(fn, row, params):
    """(value, error-class) of one evaluator — errors must match too."""
    try:
        return fn(row, params), None
    except ExpressionError:
        return None, ExpressionError


@pytest.mark.parametrize("sql", EXPRESSIONS)
def test_compiled_matches_interpreted(sql):
    scope = make_scope()
    expr = parse_expression(sql)
    interp = interpret_expr(expr, scope)
    compiled = compile_expr(expr, scope)
    interp_pred = interpret_predicate(interpret_expr(expr, scope))
    compiled_pred = compile_predicate(expr, scope)

    for row in random_rows(300):
        iv, ierr = both_results(interp, row, PARAMS)
        cv, cerr = both_results(compiled, row, PARAMS)
        assert (iv, ierr) == (cv, cerr), (
            f"{sql!r} on {row}: interpreted {iv!r}/{ierr} "
            f"!= compiled {cv!r}/{cerr}"
        )
        # predicate form: NULL must coerce to False identically
        ip, ierr = both_results(interp_pred, row, PARAMS)
        cp, cerr = both_results(compiled_pred, row, PARAMS)
        assert (ip, ierr) == (cp, cerr)
        if cerr is None:
            assert isinstance(cp, bool)


def test_predicate_null_is_false():
    scope = make_scope()
    pred = compile_predicate(parse_expression("a > 0"), scope)
    assert pred((None, 1, 1.0, "s", True), ()) is False
    assert pred((1, 1, 1.0, "s", True), ()) is True
    assert pred((-1, 1, 1.0, "s", True), ()) is False


def test_division_errors_match():
    scope = make_scope()
    expr = parse_expression("a / b")
    interp = interpret_expr(expr, scope)
    compiled = compile_expr(expr, scope)
    row = (10, 0, 1.0, "s", True)
    with pytest.raises(ExpressionError):
        interp(row, ())
    with pytest.raises(ExpressionError):
        compiled(row, ())
    # NULL divisor propagates NULL, no error
    assert compiled((10, None, 1.0, "s", True), ()) is None


def test_type_errors_become_expression_errors():
    scope = make_scope()
    compiled = compile_expr(parse_expression("a + s"), scope)
    with pytest.raises(ExpressionError):
        compiled((1, 0, 1.0, "alpha", True), ())


# -- constant folding --------------------------------------------------------


def test_fold_constants_collapses_pure_subtrees():
    folded = fold_constants(parse_expression("1 + 2 * 3"))
    assert isinstance(folded, Literal) and folded.value == 7
    folded = fold_constants(parse_expression("'al' LIKE 'a%' AND 2 > 1"))
    assert isinstance(folded, Literal) and folded.value is True


def test_fold_constants_short_circuits_left_side_only():
    # FALSE AND x -> FALSE even when x references a column
    folded = fold_constants(parse_expression("1 > 2 AND a = 1"))
    assert isinstance(folded, Literal) and folded.value is False
    # TRUE OR x -> TRUE
    folded = fold_constants(parse_expression("1 < 2 OR a = 1"))
    assert isinstance(folded, Literal) and folded.value is True
    # TRUE AND x is NOT x (predicate coercion differs): must stay a Binary
    folded = fold_constants(parse_expression("1 < 2 AND a"))
    assert isinstance(folded, Binary)


def test_fold_constants_defers_runtime_errors():
    # 1/0 must not raise at plan time; it still raises at execution
    folded = fold_constants(parse_expression("1 / 0"))
    assert not isinstance(folded, Literal)
    compiled = compile_expr(folded, make_scope())
    with pytest.raises(ExpressionError):
        compiled((1, 1, 1.0, "s", True), ())


def test_folded_predicate_in_where_clause_still_runs():
    # end to end: a constant-true WHERE folds away, results unchanged
    scope = make_scope()
    pred = compile_predicate(parse_expression("1 = 1 AND a > 5"), scope)
    assert pred((6, 0, 0.0, "", None), ()) is True
    assert pred((5, 0, 0.0, "", None), ()) is False


def test_compiled_source_attached_for_debugging():
    scope = make_scope()
    compiled = compile_expr(parse_expression("a + b"), scope)
    assert "def _compiled(row, params):" in compiled._source
