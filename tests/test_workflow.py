"""Workflow DAGs: validation, exactly-once batch-ordered delivery, retry."""

import pytest

from repro.common.clock import CostModel
from repro.common.errors import UserAbort, WorkflowError
from repro.common.types import ColumnType as T
from repro.engine import Database
from repro.storage.schema import schema


def fresh_db(cost=None):
    return Database(cost=cost if cost is not None else CostModel.free())


# -- definition-time validation -----------------------------------------------


def test_workflow_validates_streams_and_procedures():
    db = fresh_db()
    db.create_stream(schema("s1", ("v", T.INTEGER)))
    db.register_procedure("p", lambda ctx, batch: None)
    with pytest.raises(WorkflowError, match="not\\b.*registered|not registered"):
        db.create_workflow("w1", [("s1", "ghost")])
    with pytest.raises(Exception, match="nope"):
        db.create_workflow("w2", [("nope", "p")])
    with pytest.raises(WorkflowError, match="at least one edge"):
        db.create_workflow("w3", [])
    with pytest.raises(WorkflowError, match="bad workflow edge"):
        db.create_workflow("w4", [("s1",)])


def test_workflow_rejects_cycles():
    db = fresh_db()
    db.create_stream(schema("a", ("v", T.INTEGER)))
    db.create_stream(schema("b", ("v", T.INTEGER)))
    db.register_procedure("p1", lambda ctx, batch: None)
    db.register_procedure("p2", lambda ctx, batch: None)
    with pytest.raises(WorkflowError, match="cyclic"):
        db.create_workflow("loop", [("a", "p1", "b"), ("b", "p2", "a")])


def test_jointly_cyclic_workflows_rejected():
    # Two individually acyclic workflows must not close a loop together —
    # a joint cycle would re-trigger deliveries forever.
    db = fresh_db()
    db.create_stream(schema("a", ("v", T.INTEGER)))
    db.create_stream(schema("b", ("v", T.INTEGER)))
    db.register_procedure("p1", lambda ctx, batch: ctx.emit("b", list(batch.rows)))
    db.register_procedure("p2", lambda ctx, batch: ctx.emit("a", list(batch.rows)))
    db.create_workflow("w1", [("a", "p1", "b")])
    with pytest.raises(WorkflowError, match="cycle across workflows"):
        db.create_workflow("w2", [("b", "p2", "a")])


def test_duplicate_subscription_rejected_across_workflows():
    db = fresh_db()
    db.create_stream(schema("s1", ("v", T.INTEGER)))
    db.register_procedure("p", lambda ctx, batch: None)
    db.create_workflow("w1", [("s1", "p")])
    with pytest.raises(WorkflowError, match="already subscribed"):
        db.create_workflow("w2", [("s1", "p")])
    with pytest.raises(WorkflowError, match="already exists"):
        db.create_workflow("w1", [("s1", "p")])


# -- delivery semantics --------------------------------------------------------


def _linear_pipeline(db):
    """raw --ingest_votes--> votes --count_votes--> counts --rank--> leaderboard.

    Returns the per-stage invocation logs (batch ids, in order).
    """
    db.create_stream(schema("raw", ("phone", T.BIGINT), ("contestant", T.INTEGER)))
    db.create_stream(schema("votes", ("phone", T.BIGINT), ("contestant", T.INTEGER)))
    db.create_stream(schema("counts", ("contestant", T.INTEGER), ("n", T.INTEGER)))
    db.create_table(
        schema(
            "leaderboard",
            ("contestant", T.INTEGER, False),
            ("total", T.INTEGER, False),
            primary_key=["contestant"],
        )
    )
    seen = {"ingest_votes": [], "count_votes": [], "rank": []}

    @db.register_procedure
    def ingest_votes(ctx, batch):
        seen["ingest_votes"].append(batch.batch_id)
        ctx.emit("votes", [(p, c) for p, c in batch.rows if 0 <= c <= 2])

    @db.register_procedure
    def count_votes(ctx, batch):
        seen["count_votes"].append(batch.batch_id)
        counts = ctx.execute(
            "SELECT contestant, count(*) AS n FROM recent GROUP BY contestant"
        )
        ctx.emit("counts", list(counts))

    @db.register_procedure
    def rank(ctx, batch):
        seen["rank"].append(batch.batch_id)
        for contestant, n in batch.rows:
            updated = ctx.execute(
                "UPDATE leaderboard SET total = ? WHERE contestant = ?",
                (n, contestant),
            )
            if updated.rowcount == 0:
                ctx.execute(
                    "INSERT INTO leaderboard (contestant, total) VALUES (?, ?)",
                    (contestant, n),
                )

    # sliding tuple window over votes, owned by the aggregate stage
    db.create_window("recent", "votes", size=4, slide=2, owner="count_votes")
    db.create_workflow(
        "voter",
        [
            ("raw", "ingest_votes", "votes"),
            ("votes", "count_votes", "counts"),
            ("counts", "rank", None),
        ],
    )
    return seen


def _raw_batch(b):
    return [(100 + b, b % 3), (200 + b, (b + 1) % 3)]


def test_three_stage_dag_processes_batches_in_order_exactly_once():
    db = fresh_db(cost=CostModel.calibrated())
    seen = _linear_pipeline(db)
    for b in range(1, 11):
        assert db.ingest("raw", _raw_batch(b)) == [b]
    expected = list(range(1, 11))
    assert seen == {
        "ingest_votes": expected, "count_votes": expected, "rank": expected,
    }
    # batch ids flow through the DAG unchanged
    assert db.streaming.streams["votes"].last_committed == 10
    assert db.streaming.streams["counts"].last_committed == 10
    # window after batch 10 = votes of batches 9..10; rank overwrote totals
    assert db.query("SELECT contestant, total FROM leaderboard ORDER BY contestant") == [
        {"contestant": 0, "total": 1},
        {"contestant": 1, "total": 2},
        {"contestant": 2, "total": 1},
    ]
    stats = db.stats()["streaming"]
    assert stats["scheduler"]["pending_deliveries"] == 0
    assert stats["scheduler"]["delivered"] == 30  # 3 stages x 10 batches
    assert stats["trigger_fires"]["pe"] == 30
    assert db.stats()["transactions"]["aborted"] == 0


def test_end_to_end_demo_abort_retry_rolls_back_window_and_reprocesses():
    """The PR's acceptance demo: 10 batches through a 3-node DAG with an
    injected abort in the middle (window-aggregate) stage."""
    db = fresh_db(cost=CostModel.calibrated())
    seen = _linear_pipeline(db)
    window_table = db.catalog.table("recent")

    # arm a one-shot abort inside the aggregate stage for batch 5
    original = db._procedures["count_votes"].fn
    armed = {"on": True}

    def sabotaged(ctx, batch):
        if batch.batch_id == 5 and armed["on"]:
            armed["on"] = False
            ctx.abort("injected failure in stage 2")
        return original(ctx, batch)

    db._procedures["count_votes"].fn = sabotaged

    # an EE trigger so both trigger classes show up in the fire counts
    db.create_table(schema("audit", ("batch", T.BIGINT)))
    db.create_ee_trigger(
        "audit_raw", "raw",
        lambda ctx, rows: ctx.execute(
            "INSERT INTO audit (batch) VALUES (?)", (ctx.batch_id,)
        ),
    )

    for b in range(1, 5):
        db.ingest("raw", _raw_batch(b))

    # rowids consumed by the aborted attempt are never reused, so compare
    # physical row contents (data + arrival order), not the rowid cursor
    pre_abort_window = window_table.snapshot_state()["rows"]
    with pytest.raises(UserAbort, match="injected failure"):
        db.ingest("raw", _raw_batch(5))
    # stage 2's transaction rolled back: its window advance is undone ...
    assert window_table.snapshot_state()["rows"] == pre_abort_window
    # ... the batch stayed queued, and nothing downstream ran for batch 5
    assert db.stats()["streaming"]["scheduler"]["pending_deliveries"] == 1
    assert seen["count_votes"] == [1, 2, 3, 4]
    assert seen["rank"] == [1, 2, 3, 4]

    # retry: the delivery reruns, the window re-advances, the DAG resumes
    assert db.drain() == 2  # count_votes(5) then rank(5)
    assert window_table.snapshot_state()["rows"] != pre_abort_window
    for b in range(6, 11):
        db.ingest("raw", _raw_batch(b))

    expected = list(range(1, 11))
    assert seen == {
        "ingest_votes": expected, "count_votes": expected, "rank": expected,
    }
    stats = db.stats()
    streaming = stats["streaming"]
    # exactly-once: every stage saw each batch once, despite the retry
    assert streaming["scheduler"]["delivered"] == 30
    assert streaming["scheduler"]["retries"] == 1
    assert stats["transactions"]["aborted"] == 1
    # trigger fire counts match the dataflow: one EE firing per raw batch,
    # one PE firing per (batch, subscription) — retries are not re-fired
    assert streaming["trigger_fires"]["ee"] == 10
    assert streaming["trigger_fires"]["pe"] == 30
    assert db.execute("SELECT count(*) FROM audit").scalar() == 10
    assert db.query("SELECT contestant, total FROM leaderboard ORDER BY contestant") == [
        {"contestant": 0, "total": 1},
        {"contestant": 1, "total": 2},
        {"contestant": 2, "total": 1},
    ]


def test_abort_in_first_stage_leaves_upstream_committed_and_retries():
    db = fresh_db()
    seen = _linear_pipeline(db)
    original = db._procedures["ingest_votes"].fn
    armed = {"on": True}

    def flaky(ctx, batch):
        if armed["on"]:
            armed["on"] = False
            raise RuntimeError("transient")
        return original(ctx, batch)

    db._procedures["ingest_votes"].fn = flaky
    with pytest.raises(Exception, match="transient"):
        db.ingest("raw", _raw_batch(1))
    # the raw batch itself committed; only the delivery failed
    assert db.execute("SELECT count(*) FROM raw").scalar() == 2
    assert db.execute("SELECT count(*) FROM votes").scalar() == 0
    db.drain()
    assert db.execute("SELECT count(*) FROM votes").scalar() == 2
    assert seen["ingest_votes"] == [1]


def test_out_of_order_ingest_delivers_in_batch_order():
    db = fresh_db()
    seen = _linear_pipeline(db)
    db.ingest("raw", _raw_batch(2), batch_id=2)  # queued
    assert seen["ingest_votes"] == []
    db.ingest("raw", _raw_batch(1), batch_id=1)  # applies 1 then 2
    assert seen["ingest_votes"] == [1, 2]
    assert seen["rank"] == [1, 2]


def test_window_not_visible_outside_owner_in_workflow():
    from repro.common.errors import WindowVisibilityError

    db = fresh_db()
    _linear_pipeline(db)
    db.ingest("raw", _raw_batch(1))
    with pytest.raises(WindowVisibilityError, match="count_votes"):
        db.execute("SELECT count(*) FROM recent")


def test_procedure_call_emission_triggers_downstream():
    """db.call drains workflow deliveries caused by the call's emissions."""
    db = fresh_db()
    db.create_stream(schema("s", ("v", T.INTEGER)))
    db.create_table(schema("sink", ("v", T.INTEGER)))
    got = []

    @db.register_procedure
    def producer(ctx, n):
        ctx.emit("s", [(n,)])

    @db.register_procedure
    def consumer(ctx, batch):
        got.append(batch.batch_id)
        for (v,) in batch.rows:
            ctx.execute("INSERT INTO sink (v) VALUES (?)", (v,))

    db.create_workflow("w", [("s", "consumer")])
    db.call("producer", 7)
    assert got == [1]
    assert db.execute("SELECT v FROM sink").rows == [(7,)]
