"""Transaction life cycle, undo correctness, and boundary cost accounting."""

import pytest

from repro.common.clock import CostModel
from repro.common.errors import ConstraintViolation, TransactionError
from repro.common.types import ColumnType as T
from repro.engine import Database, Transaction, UndoLog
from repro.storage.schema import schema


def fresh_db(cost=None):
    db = Database(cost=cost if cost is not None else CostModel.free())
    db.create_table(
        schema(
            "accounts",
            ("id", T.BIGINT, False),
            ("owner", T.VARCHAR),
            ("balance", T.INTEGER, False),
            primary_key=["id"],
        )
    )
    db.create_index("accounts", "accounts_owner", ["owner"])
    db.executemany(
        "INSERT INTO accounts (id, owner, balance) VALUES (?, ?, ?)",
        [(i, f"o{i}", 100 * i) for i in range(5)],
    )
    return db


# -- life cycle ---------------------------------------------------------------

def test_commit_persists_writes():
    db = fresh_db()
    with db.transaction():
        db.execute("INSERT INTO accounts (id, owner, balance) VALUES (10, 'x', 7)")
        db.execute("UPDATE accounts SET balance = balance + 1 WHERE id = 0")
    assert db.execute("SELECT balance FROM accounts WHERE id = 10").scalar() == 7
    assert db.execute("SELECT balance FROM accounts WHERE id = 0").scalar() == 1


def test_nested_begin_rejected():
    db = fresh_db()
    txn = db.begin()
    with pytest.raises(TransactionError, match="already open"):
        db.begin()
    with pytest.raises(TransactionError, match="already open"):
        with db.transaction():
            pass  # pragma: no cover
    txn.abort()


def test_finished_transaction_is_single_use():
    db = fresh_db()
    txn = db.begin()
    txn.commit()
    with pytest.raises(TransactionError, match="already committed"):
        txn.commit()
    with pytest.raises(TransactionError, match="already committed"):
        txn.abort()
    aborted = db.begin()
    aborted.abort()
    with pytest.raises(TransactionError, match="already aborted"):
        aborted.commit()


def test_ddl_inside_transaction_rejected():
    db = fresh_db()
    with db.transaction():
        with pytest.raises(TransactionError, match="CREATE TABLE"):
            db.create_table(schema("t2", ("a", T.INTEGER)))
        with pytest.raises(TransactionError, match="CREATE INDEX"):
            db.create_index("accounts", "accounts_bal", ["balance"])
        with pytest.raises(TransactionError, match="DROP INDEX"):
            db.drop_index("accounts", "accounts_owner")
        with pytest.raises(TransactionError, match="DROP TABLE"):
            db.drop_table("accounts")
    # outside the transaction DDL works again
    db.create_index("accounts", "accounts_bal", ["balance"])


def test_context_manager_aborts_on_exception_and_propagates():
    db = fresh_db()
    with pytest.raises(RuntimeError, match="boom"):
        with db.transaction():
            db.execute("DELETE FROM accounts WHERE id = 1")
            raise RuntimeError("boom")
    assert db.execute("SELECT count(*) FROM accounts").scalar() == 5
    assert db.stats()["transactions"]["aborted"] == 1


def test_manual_abort_inside_with_block():
    db = fresh_db()
    with db.transaction() as txn:
        db.execute("DELETE FROM accounts")
        txn.abort()  # exit must not commit (or double-abort)
    assert txn.state == Transaction.ABORTED
    assert db.execute("SELECT count(*) FROM accounts").scalar() == 5
    db.execute("SELECT 1")  # engine is reusable afterwards


# -- undo correctness ---------------------------------------------------------

def test_abort_restores_identical_snapshot_after_mixed_dml():
    db = fresh_db()
    before = db.catalog.snapshot()
    txn = db.begin()
    db.execute("INSERT INTO accounts (id, owner, balance) VALUES (20, 'new', 1)")
    db.execute("UPDATE accounts SET balance = balance * 3 WHERE id <= 2")
    db.execute("DELETE FROM accounts WHERE id = 3")
    db.execute("UPDATE accounts SET owner = 'zzz' WHERE id = 4")
    db.execute("DELETE FROM accounts WHERE id = 20")  # delete own insert
    txn.abort()
    after = db.catalog.snapshot()
    # byte-identical data: every table's (rowid, row) list is restored exactly
    assert {n: s["rows"] for n, s in after.items()} == {
        n: s["rows"] for n, s in before.items()
    }
    # ... while the rowid allocator only ever moves forward (no reuse),
    # so the aborted insert leaves next_rowid advanced past its rowid.
    assert after["accounts"]["next_rowid"] > before["accounts"]["next_rowid"]


def test_abort_without_inserts_restores_full_snapshot():
    # No new rowids allocated -> even the allocator matches byte-for-byte.
    db = fresh_db()
    before = db.catalog.snapshot()
    with pytest.raises(ZeroDivisionError):
        with db.transaction():
            db.execute("UPDATE accounts SET balance = -1 WHERE id >= 2")
            db.execute("DELETE FROM accounts WHERE id = 0")
            _ = 1 / 0
    assert db.catalog.snapshot() == before


def test_abort_restores_scan_arrival_order():
    db = fresh_db()
    order_before = [r[0] for r in db.execute("SELECT id FROM accounts")]
    with pytest.raises(ZeroDivisionError):
        with db.transaction():
            db.execute("DELETE FROM accounts WHERE id = 2")
            db.execute("INSERT INTO accounts (id, owner, balance) VALUES (9, 'q', 0)")
            _ = 1 / 0
    assert [r[0] for r in db.execute("SELECT id FROM accounts")] == order_before


def test_indexes_probe_correctly_after_abort():
    db = fresh_db(cost=CostModel.calibrated())
    txn = db.begin()
    db.execute("DELETE FROM accounts WHERE id = 2")           # pk + owner index
    db.execute("INSERT INTO accounts (id, owner, balance) VALUES (30, 'o30', 5)")
    db.execute("UPDATE accounts SET owner = 'moved' WHERE id = 1")
    txn.abort()
    # restored row is findable through both indexes again
    assert db.execute("SELECT balance FROM accounts WHERE id = 2").scalar() == 200
    assert db.last_counters["index_probes"] == 1
    assert db.execute("SELECT id FROM accounts WHERE owner = 'o2'").scalar() == 2
    assert db.last_counters["index_probes"] == 1
    # aborted insert is gone from the pk index; aborted update is reversed
    assert len(db.execute("SELECT id FROM accounts WHERE id = 30")) == 0
    assert db.execute("SELECT id FROM accounts WHERE owner = 'moved'").rows == []
    assert db.execute("SELECT id FROM accounts WHERE owner = 'o1'").scalar() == 1


def test_rowids_never_reused_across_undo():
    db = fresh_db()
    table = db.catalog.table("accounts")
    txn = db.begin()
    db.execute("INSERT INTO accounts (id, owner, balance) VALUES (40, 'a', 0)")
    aborted_rowid = max(rowid for rowid, _row in table.scan())
    txn.abort()
    db.execute("INSERT INTO accounts (id, owner, balance) VALUES (41, 'b', 0)")
    new_rowid = max(rowid for rowid, _row in table.scan())
    assert new_rowid > aborted_rowid


def test_statement_failure_rolls_back_statement_not_transaction():
    db = fresh_db()
    txn = db.begin()
    db.execute("INSERT INTO accounts (id, owner, balance) VALUES (50, 'keep', 1)")
    with pytest.raises(ConstraintViolation):
        # row (51,...) inserts, then the duplicate id 0 fails: the whole
        # statement must be undone, the transaction must stay usable.
        db.execute(
            "INSERT INTO accounts (id, owner, balance) "
            "VALUES (51, 'gone', 2), (0, 'dup', 3)"
        )
    assert txn.is_active
    txn.commit()
    assert db.execute("SELECT count(*) FROM accounts WHERE id = 50").scalar() == 1
    assert db.execute("SELECT count(*) FROM accounts WHERE id = 51").scalar() == 0


def test_undo_log_protocol_and_replay_order():
    db = fresh_db()
    table = db.catalog.table("accounts")
    log = UndoLog()
    # unique-key swap is only undoable because replay is newest-first
    rows = {row[0]: rowid for rowid, row in table.scan()}
    old_a = table.update_row(rows[0], (0, "tmp", 0))
    log.on_update(table, rows[0], old_a)
    old_b = table.update_row(rows[1], (1, "o0", 100))  # takes o0 from row a
    log.on_update(table, rows[1], old_b)
    assert len(log) == 2
    assert log.rollback_to(0) == 2
    assert db.execute("SELECT id FROM accounts WHERE owner = 'o0'").scalar() == 0
    assert db.execute("SELECT id FROM accounts WHERE owner = 'o1'").scalar() == 1


# -- cost accounting ----------------------------------------------------------

def test_txn_boundary_costs_charged():
    db = fresh_db(cost=CostModel.calibrated())
    cost = db.clock.cost
    t0 = db.clock.now_us
    with db.transaction():
        pass
    assert db.clock.now_us - t0 == pytest.approx(cost.txn_begin_us + cost.txn_commit_us)

    before = db.clock.snapshot_events()
    t1 = db.clock.now_us
    txn = db.begin()
    db.execute("DELETE FROM accounts WHERE id = 0")
    txn.abort()
    delta = db.clock.snapshot_events() - before
    assert delta["txn_begin"] == 1 and delta["txn_abort"] == 1
    assert delta["rows_undone"] == 1
    assert db.clock.now_us - t1 == pytest.approx(
        cost.txn_begin_us
        + cost.sql_plan_us            # cold plan for the DELETE
        + cost.sql_stmt_us
        + cost.index_probe_us         # pk probe
        + cost.sql_row_us             # the scanned row
        + cost.sql_row_us             # the deleted row
        + cost.sql_row_us             # the undone row
        + cost.txn_abort_us
    )


def test_abort_counts_rows_undone_per_record():
    db = fresh_db(cost=CostModel.calibrated())
    txn = db.begin()
    db.execute("UPDATE accounts SET balance = 0")  # 5 updates
    txn.abort()
    assert db.clock.events["rows_undone"] == 5
