"""Table constraint enforcement, index maintenance, undo, snapshots."""

import pytest

from repro.common.errors import ConstraintViolation, SchemaError
from repro.common.types import ColumnType as T
from repro.storage.schema import schema
from repro.storage.table import Table


def users_table():
    return Table(
        schema(
            "users",
            ("id", T.BIGINT, False),
            ("email", T.VARCHAR),
            ("age", T.INTEGER),
            primary_key=["id"],
            unique_keys=[["email"]],
        )
    )


def test_primary_key_enforced():
    t = users_table()
    t.insert((1, "a@x", 30))
    with pytest.raises(ConstraintViolation):
        t.insert((1, "b@x", 31))
    assert t.row_count() == 1  # failed insert left no partial state


def test_unique_key_enforced_but_nulls_allowed():
    t = users_table()
    t.insert((1, "a@x", 30))
    with pytest.raises(ConstraintViolation):
        t.insert((2, "a@x", 31))
    # NULL is distinct from every value including NULL: multiple NULL emails ok
    t.insert((2, None, 31))
    t.insert((3, None, 32))
    assert t.row_count() == 3


def test_not_null_enforced_and_coercion():
    t = users_table()
    with pytest.raises(ConstraintViolation):
        t.insert((None, "a@x", 30))
    rowid = t.insert(("7", "a@x", "41"))  # strings coerced to ints
    assert t.get(rowid) == (7, "a@x", 41)


def test_update_maintains_indexes():
    t = users_table()
    r1 = t.insert((1, "a@x", 30))
    t.insert((2, "b@x", 31))
    with pytest.raises(ConstraintViolation):
        t.update_row(r1, (1, "b@x", 30))  # collides with row 2's email
    old = t.update_row(r1, (1, "c@x", 33))
    assert old == (1, "a@x", 30)
    email_idx = t.find_equality_index(["email"])
    assert list(email_idx.lookup(("c@x",))) == [r1]
    assert list(email_idx.lookup(("a@x",))) == []


def test_delete_and_restore_row_undo():
    t = users_table()
    rowid = t.insert((1, "a@x", 30))
    old = t.delete_row(rowid)
    assert old == (1, "a@x", 30)
    assert t.get(rowid) is None
    pk = t.find_equality_index(["id"])
    assert list(pk.lookup((1,))) == []

    t.restore_row(rowid, old)  # undo
    assert t.get(rowid) == old
    assert list(pk.lookup((1,))) == [rowid]
    with pytest.raises(ConstraintViolation):
        t.restore_row(rowid, old)  # rowid already live


def test_missing_rowid_raises_no_such_row():
    from repro.common.errors import NoSuchRowError

    t = users_table()
    with pytest.raises(NoSuchRowError):
        t.delete_row(99)
    with pytest.raises(NoSuchRowError):
        t.update_row(99, (1, "a@x", 30))


def test_restore_row_preserves_arrival_order_and_snapshot():
    t = users_table()
    rowids = [t.insert((i, f"u{i}@x", 20 + i)) for i in range(4)]
    before = t.snapshot_state()
    old = t.delete_row(rowids[1])
    t.insert((9, "new@x", 99))
    t.delete_row(rowids[3] + 1)  # remove the row just inserted
    t.restore_row(rowids[1], old)  # out-of-order restore re-sorts
    assert [rowid for rowid, _row in t.scan()] == rowids
    assert t.snapshot_state()["rows"] == before["rows"]


def test_rowids_monotonic_never_reused():
    t = users_table()
    r1 = t.insert((1, None, 1))
    t.delete_row(r1)
    r2 = t.insert((2, None, 2))
    assert r2 > r1


def test_scan_insertion_order():
    t = users_table()
    for i in (3, 1, 2):
        t.insert((i, None, i))
    assert [row[0] for row in t.scan_rows()] == [3, 1, 2]
    assert [row[0] for _rid, row in t.scan()] == [3, 1, 2]
    assert [row[0] for _rid, row in t.scan_visible()] == [3, 1, 2]


def test_materialised_scan_survives_mutation():
    # The scan contract: materialise before mutating (what DML runners do).
    t = users_table()
    for i in range(5):
        t.insert((i, None, i))
    targets = list(t.scan())
    for rowid, _row in targets:
        t.delete_row(rowid)
    assert t.row_count() == 0


def test_find_equality_index_exact_and_subset():
    t = users_table()
    # exact match, preferring the unique pk
    assert t.find_equality_index(["id"]).name == "users_pkey"
    assert t.find_equality_index(["email"]).name == "users_uniq0"
    # no exact index on {id, age}: plain lookup misses, subset mode probes pk
    assert t.find_equality_index(["id", "age"]) is None
    assert t.find_equality_index(["id", "age"], subset=True).name == "users_pkey"
    assert t.find_equality_index(["age"], subset=True) is None


def test_create_index_backfills_and_rejects_duplicates():
    t = users_table()
    t.insert((1, None, 30))
    t.insert((2, None, 35))
    idx = t.create_index("users_age", ["age"], ordered=True)
    assert list(idx.range_scan(30, 35)) == [1, 2]
    with pytest.raises(SchemaError):
        t.create_index("users_age", ["age"])


def test_snapshot_roundtrip():
    t = users_table()
    t.insert((1, "a@x", 30))
    rid = t.insert((2, "b@x", 31))
    t.delete_row(rid)
    state = t.snapshot_state()

    t2 = users_table()
    t2.load_snapshot_state(state)
    assert t2.row_count() == 1
    assert t2.get(1) == (1, "a@x", 30)
    pk = t2.find_equality_index(["id"])
    assert list(pk.lookup((1,))) == [1]
    # next_rowid preserved: new inserts do not collide with old rowids
    assert t2.insert((3, None, 1)) == 3


def test_truncate_clears_rows_and_indexes():
    t = users_table()
    t.insert((1, "a@x", 30))
    assert t.truncate() == 1
    assert t.row_count() == 0
    t.insert((1, "a@x", 30))  # pk free again
