"""Parser round-trips: statement shapes, precedence, and error cases."""

import pytest

from repro.common.errors import ParseError
from repro.sql.ast import (
    Between,
    Binary,
    Case,
    ColumnRef,
    Delete,
    FuncCall,
    InList,
    Insert,
    IsNull,
    Like,
    Literal,
    Param,
    Select,
    Unary,
    Update,
    max_param_index,
)
from repro.sql.parser import parse, parse_expression


def test_select_full_clause_set():
    stmt = parse(
        "SELECT city, count(*) AS n FROM users WHERE age > 18 "
        "GROUP BY city HAVING count(*) > 2 ORDER BY n DESC LIMIT 5 OFFSET 1"
    )
    assert isinstance(stmt, Select)
    assert stmt.table.name == "users"
    assert stmt.items[1].alias == "n"
    assert stmt.group_by == (ColumnRef("city"),)
    assert isinstance(stmt.having, Binary)
    assert stmt.order_by[0].descending is True
    assert stmt.limit == Literal(5)
    assert stmt.offset == Literal(1)


def test_select_star_and_qualified_star():
    stmt = parse("SELECT *, u.* FROM users u")
    assert stmt.items[0].star and stmt.items[0].star_qualifier is None
    assert stmt.items[1].star and stmt.items[1].star_qualifier == "u"
    assert stmt.table.alias == "u"


def test_joins():
    stmt = parse(
        "SELECT 1 FROM a JOIN b ON a.x = b.x LEFT JOIN c ON b.y = c.y, d"
    )
    kinds = [j.kind for j in stmt.joins]
    assert kinds == ["inner", "left", "cross"]
    assert stmt.joins[2].on is None


def test_insert_multi_row_and_columns():
    stmt = parse("INSERT INTO t (a, b) VALUES (1, ?), (2, ?)")
    assert isinstance(stmt, Insert)
    assert stmt.columns == ("a", "b")
    assert len(stmt.rows) == 2
    assert stmt.rows[0] == (Literal(1), Param(0))
    assert stmt.rows[1][1] == Param(1)
    assert max_param_index(stmt) == 2


def test_insert_select_form():
    stmt = parse("INSERT INTO t SELECT a FROM s WHERE a > ?")
    assert stmt.rows == () and stmt.select is not None
    assert max_param_index(stmt) == 1


def test_update_and_delete():
    stmt = parse("UPDATE t SET a = a + 1, b = ? WHERE id = ?")
    assert isinstance(stmt, Update)
    assert stmt.assignments[0].column == "a"
    assert max_param_index(stmt) == 2
    stmt = parse("DELETE FROM t WHERE id IN (1, 2, 3)")
    assert isinstance(stmt, Delete)
    assert isinstance(stmt.where, InList)


def test_precedence_or_and_not_comparison_arith():
    e = parse_expression("a or b and not c = 1 + 2 * 3")
    # or(a, and(b, not(c = (1 + (2*3)))))
    assert e.op == "or"
    assert e.right.op == "and"
    inner = e.right.right
    assert isinstance(inner, Unary) and inner.op == "not"
    cmp = inner.operand
    assert cmp.op == "=" and cmp.right.op == "+"
    assert cmp.right.right.op == "*"


def test_negated_predicates():
    assert parse_expression("a NOT IN (1)").negated
    assert parse_expression("a NOT BETWEEN 1 AND 2").negated
    assert parse_expression("a NOT LIKE 'x%'").negated
    assert parse_expression("a IS NOT NULL") == IsNull(ColumnRef("a"), negated=True)
    assert isinstance(parse_expression("a BETWEEN ? AND ?"), Between)
    assert isinstance(parse_expression("a LIKE 'x_'"), Like)


def test_case_expression():
    e = parse_expression("CASE WHEN a = 1 THEN 'one' ELSE 'other' END")
    assert isinstance(e, Case)
    assert len(e.whens) == 1 and e.else_ == Literal("other")


def test_function_calls_count_star_distinct():
    assert parse_expression("count(*)") == FuncCall("count", (), star=True)
    e = parse_expression("count(DISTINCT a)")
    assert e.distinct and e.args == (ColumnRef("a"),)
    assert parse_expression("coalesce(a, 0)").name == "coalesce"


def test_unary_minus_folds_numeric_literal():
    assert parse_expression("-5") == Literal(-5)
    assert parse_expression("-x") == Unary("-", ColumnRef("x"))


def test_param_indexes_assigned_left_to_right():
    stmt = parse("SELECT ? FROM t WHERE a = ? AND b = ?")
    assert max_param_index(stmt) == 3


def test_trailing_semicolon_ok_and_garbage_rejected():
    parse("SELECT 1;")
    with pytest.raises(ParseError):
        parse("SELECT 1 SELECT 2")
    with pytest.raises(ParseError):
        parse("FROB THE TABLE")
    with pytest.raises(ParseError):
        parse("INSERT INTO t")
