"""Unit coverage of ``storage/partitioning.py``: the stable hash, routing
modes, key registration, and the strict-mode error paths."""

import subprocess
import sys
from pathlib import Path

import pytest

from repro.common.errors import SchemaError
from repro.common.types import ColumnType as T
from repro.storage.partitioning import PartitionMap, stable_hash
from repro.storage.schema import schema


# ---------------------------------------------------------------------------
# stable_hash
# ---------------------------------------------------------------------------


def test_stable_hash_is_deterministic_within_process():
    for value in (None, True, False, 0, 1, -17, 2**40, 0.0, 3.25, "", "voter"):
        assert stable_hash(value) == stable_hash(value)


def test_stable_hash_is_stable_across_processes():
    """No PYTHONHASHSEED dependence: a child process with a different seed
    computes identical hashes (placement must survive restarts)."""
    values = [None, True, False, 0, 1, 41, "x-way-3", 2.5]
    expected = [stable_hash(v) for v in values]
    code = (
        "from repro.storage.partitioning import stable_hash\n"
        f"print([stable_hash(v) for v in {values!r}])\n"
    )
    out = subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True,
        text=True,
        check=True,
        env={
            "PYTHONPATH": str(Path(__file__).resolve().parent.parent / "src"),
            "PYTHONHASHSEED": "12345",
        },
    )
    assert eval(out.stdout.strip()) == expected


def test_stable_hash_type_tags_separate_collision_classes():
    """None/0, False/0, True/1 compare equal across Python types but must
    hash to distinct partitioning classes (the satellite fix)."""
    classes = [None, 0, False, True, 1, 2]
    hashes = [stable_hash(v) for v in classes]
    assert len(set(hashes)) == len(classes)


def test_stable_hash_is_non_negative_31_bit():
    for value in (None, True, -1, -(2**50), 2**50, -2.75, "z" * 100):
        h = stable_hash(value)
        assert 0 <= h <= 0x7FFFFFFF


def test_stable_hash_rejects_unhashable_values():
    with pytest.raises(SchemaError, match="not hashable"):
        stable_hash([1, 2])


# ---------------------------------------------------------------------------
# PartitionMap construction and routing
# ---------------------------------------------------------------------------


def test_partition_of_round_robin_uses_modulo_for_ints():
    pmap = PartitionMap(4, mode="round_robin")
    assert [pmap.partition_of(x) for x in range(8)] == [0, 1, 2, 3, 0, 1, 2, 3]
    # non-int keys fall back to the stable hash
    assert pmap.partition_of("abc") == stable_hash("abc") % 4


def test_partition_of_hash_mode_spreads_and_stays_in_range():
    pmap = PartitionMap(4)
    placements = {pmap.partition_of(k) for k in range(64)}
    assert placements == {0, 1, 2, 3}


def test_single_partition_routes_everything_to_zero():
    pmap = PartitionMap(1)
    assert pmap.partition_of("anything") == 0
    assert pmap.partition_of_row("t", None, ("x",)) == 0


def test_constructor_error_paths():
    with pytest.raises(SchemaError, match="at least one partition"):
        PartitionMap(0)
    with pytest.raises(SchemaError, match="unknown partitioning mode"):
        PartitionMap(2, mode="range")
    with pytest.raises(SchemaError, match="out of range"):
        PartitionMap(2, default_partition=2)
    with pytest.raises(SchemaError, match="out of range"):
        PartitionMap(2, default_partition=-1)


def test_partition_key_registration_is_case_insensitive():
    pmap = PartitionMap(2)
    pmap.set_partition_key("Votes", "Phone")
    assert pmap.partition_key("votes") == "phone"
    assert pmap.partition_key("VOTES") == "phone"
    assert pmap.require_partition_key("vOtEs") == "phone"


def test_partition_of_row_routes_by_registered_column():
    pmap = PartitionMap(2)
    pmap.set_partition_key("votes", "phone")
    sch = schema("votes", ("phone", T.BIGINT), ("contestant", T.INTEGER))
    row = (4155551234, 3)
    assert pmap.partition_of_row("votes", sch, row) == pmap.partition_of(4155551234)


def test_unkeyed_table_routes_to_default_partition_when_configured():
    pmap = PartitionMap(3, default_partition=1)
    sch = schema("lookup", ("k", T.INTEGER))
    assert pmap.partition_of_row("lookup", sch, (9,)) == 1


def test_strict_mode_rejects_unkeyed_tables():
    """default_partition=None: an unkeyed table on a multi-partition map
    fails loudly instead of hot-spotting one partition."""
    pmap = PartitionMap(2, default_partition=None)
    sch = schema("lookup", ("k", T.INTEGER))
    with pytest.raises(SchemaError, match="strict mode"):
        pmap.partition_of_row("lookup", sch, (9,))
    with pytest.raises(SchemaError, match="no partition key"):
        pmap.require_partition_key("lookup")


def test_require_partition_key_is_lenient_on_single_partition():
    assert PartitionMap(1, default_partition=None).require_partition_key("t") == ""


def test_all_partitions():
    assert list(PartitionMap(3).all_partitions()) == [0, 1, 2]
