"""Expression evaluation: three-valued logic, NULL propagation, sorting."""

import pytest

from repro.common.errors import ExpressionError, PlanningError
from repro.sql.executor import null_safe_key, sort_rows
from repro.sql.expressions import Scope, compile_expr, predicate
from repro.sql.parser import parse_expression
from repro.storage.schema import schema
from repro.common.types import ColumnType as T

USERS = schema("u", ("a", T.INTEGER), ("b", T.INTEGER), ("s", T.VARCHAR))


def scope():
    sc = Scope()
    sc.add_source("u", USERS)
    return sc


def ev(sql, row=(None, None, None), params=()):
    return compile_expr(parse_expression(sql), scope())(row, params)


# -- NULL semantics ---------------------------------------------------------

def test_arithmetic_null_propagates():
    assert ev("a + 1") is None
    assert ev("1 + 2") == 3
    assert ev("a * b") is None


def test_comparison_null_is_unknown():
    assert ev("a = 1") is None
    assert ev("1 = 1") is True
    assert ev("a <> a") is None


def test_three_valued_and_or():
    assert ev("a = 1 AND 1 = 2") is False      # unknown AND false -> false
    assert ev("a = 1 AND 1 = 1") is None       # unknown AND true -> unknown
    assert ev("a = 1 OR 1 = 1") is True        # unknown OR true -> true
    assert ev("a = 1 OR 1 = 2") is None        # unknown OR false -> unknown
    assert ev("NOT (a = 1)") is None


def test_predicate_treats_null_as_not_satisfied():
    pred = predicate(compile_expr(parse_expression("a = 1"), scope()))
    assert pred((None, None, None), ()) is False
    assert pred((1, None, None), ()) is True


def test_in_list_null_semantics():
    assert ev("1 IN (1, 2)") is True
    assert ev("3 IN (1, 2)") is False
    assert ev("3 IN (1, a)") is None           # no match but NULL present
    assert ev("a IN (1, 2)") is None
    assert ev("1 NOT IN (1, a)") is False


def test_between_null_semantics():
    assert ev("5 BETWEEN 1 AND 10") is True
    assert ev("5 BETWEEN a AND 4") is False    # 5 <= 4 already false
    assert ev("5 BETWEEN a AND 10") is None
    assert ev("5 NOT BETWEEN a AND 4") is True


def test_is_null_is_two_valued():
    assert ev("a IS NULL") is True
    assert ev("1 IS NULL") is False
    assert ev("a IS NOT NULL") is False


def test_like_patterns():
    assert ev("'hello' LIKE 'h%'") is True
    assert ev("'hello' LIKE 'h_llo'") is True
    assert ev("'hello' LIKE 'H%'") is False    # LIKE is case-sensitive
    assert ev("s LIKE 'x%'") is None


def test_case_searched():
    assert ev("CASE WHEN 1 = 1 THEN 'y' ELSE 'n' END") == "y"
    assert ev("CASE WHEN a = 1 THEN 'y' END") is None  # unknown cond, no ELSE


# -- arithmetic details ------------------------------------------------------

def test_integer_division_truncates_toward_zero():
    assert ev("7 / 2") == 3
    assert ev("-7 / 2") == -3
    assert ev("7 % 2") == 1
    assert ev("-7 % 2") == -1
    assert ev("7.0 / 2") == 3.5


def test_division_by_zero_raises():
    with pytest.raises(ExpressionError):
        ev("1 / 0")
    with pytest.raises(ExpressionError):
        ev("1 % 0")


def test_scalar_functions():
    assert ev("coalesce(a, b, 9)") == 9
    assert ev("nullif(3, 3)") is None
    assert ev("greatest(1, a, 5)") == 5
    assert ev("least(a, 2)") == 2
    assert ev("upper('ab')") == "AB"
    assert ev("length(s)") is None
    assert ev("abs(-4)") == 4
    with pytest.raises(PlanningError):
        ev("no_such_fn(1)")


def test_params_bind_positionally():
    assert ev("? + ?", params=(2, 3)) == 5
    with pytest.raises(ExpressionError):
        ev("? + ?", params=(2,))


def test_column_resolution_errors():
    with pytest.raises(PlanningError):
        ev("nope")
    with pytest.raises(PlanningError):
        ev("x.a")


# -- sorting -----------------------------------------------------------------

def test_null_safe_key_orders_nulls_last_asc():
    values = [3, None, 1, None, 2]
    pairs = [((null_safe_key(v),), (v,)) for v in values]
    assert sort_rows(pairs, (False,)) == [(1,), (2,), (3,), (None,), (None,)]


def test_null_safe_key_orders_nulls_first_desc():
    values = [3, None, 1]
    pairs = [((null_safe_key(v),), (v,)) for v in values]
    assert sort_rows(pairs, (True,)) == [(None,), (3,), (1,)]


def test_multi_key_sort_is_stable():
    rows = [(1, "b"), (2, "a"), (1, "a"), (2, "b")]
    pairs = [((null_safe_key(a), null_safe_key(b)), (a, b)) for a, b in rows]
    assert sort_rows(pairs, (False, True)) == [
        (1, "b"), (1, "a"), (2, "b"), (2, "a")
    ]
