"""The shared frame layer: one implementation of the wire format, one
set of torn/oversized/corrupt-frame guards, used by both the partition
RPC and the network server."""

import socket
import struct
import threading

import pytest

from repro.common.errors import (
    ConnectionClosedError,
    FrameTooLargeError,
    ProtocolError,
)
from repro.common.framing import (
    HEADER,
    MAX_FRAME_BYTES,
    decode_payload,
    encode_frame,
    recv_frame,
    send_frame,
)
from repro.common.serde import encode_record


def pipe():
    return socket.socketpair()


class TestEncodeFrame:
    def test_round_trip(self):
        a, b = pipe()
        try:
            record = {"op": "x", "rows": [[1, "two", None, 3.5]]}
            sent = send_frame(a, record)
            got, nbytes = recv_frame(b)
            assert got == record
            assert nbytes == sent > HEADER.size
        finally:
            a.close(), b.close()

    def test_header_is_4_byte_big_endian_length(self):
        frame = encode_frame({"k": 1})
        (length,) = struct.unpack(">I", frame[:4])
        assert length == len(frame) - 4

    def test_sender_refuses_oversized_frame(self):
        with pytest.raises(FrameTooLargeError):
            encode_frame({"blob": "x" * 128}, limit=64)

    def test_oversized_send_writes_nothing(self):
        a, b = pipe()
        try:
            with pytest.raises(FrameTooLargeError):
                send_frame(a, {"blob": "x" * 128}, limit=64)
            a.close()
            assert b.recv(1) == b""  # clean EOF: not a single byte leaked
        finally:
            b.close()


class TestRecvGuards:
    def test_receiver_refuses_announced_oversized_frame(self):
        a, b = pipe()
        try:
            a.sendall(HEADER.pack(MAX_FRAME_BYTES + 1))
            with pytest.raises(FrameTooLargeError):
                recv_frame(b)
        finally:
            a.close(), b.close()

    def test_receiver_limit_is_checked_before_reading_body(self):
        # only the 4-byte header is on the wire; a reader that tried to
        # read the announced body first would block forever
        a, b = pipe()
        try:
            a.sendall(HEADER.pack(1 << 30))
            b.settimeout(2.0)
            with pytest.raises(FrameTooLargeError):
                recv_frame(b, limit=1024)
        finally:
            a.close(), b.close()

    def test_clean_close_between_frames(self):
        a, b = pipe()
        a.close()
        try:
            with pytest.raises(ConnectionClosedError) as err:
                recv_frame(b)
            assert err.value.mid_frame is False
        finally:
            b.close()

    def test_torn_header_is_mid_frame(self):
        a, b = pipe()
        a.sendall(b"\x00\x00")  # half a header, then hang up
        a.close()
        try:
            with pytest.raises(ConnectionClosedError) as err:
                recv_frame(b)
            assert err.value.mid_frame is True
        finally:
            b.close()

    def test_torn_body_is_mid_frame(self):
        a, b = pipe()
        line = encode_record({"k": 1}).encode()
        a.sendall(HEADER.pack(len(line)) + line[: len(line) // 2])
        a.close()
        try:
            with pytest.raises(ConnectionClosedError) as err:
                recv_frame(b)
            assert err.value.mid_frame is True
        finally:
            b.close()

    def test_corrupt_payload_is_protocol_error(self):
        a, b = pipe()
        try:
            body = b"this is not a serde record"
            a.sendall(HEADER.pack(len(body)) + body)
            with pytest.raises(ProtocolError):
                recv_frame(b)
        finally:
            a.close(), b.close()

    def test_checksum_mismatch_is_protocol_error(self):
        good = encode_record({"k": 1}).encode()
        bad = good.replace(b'"k"', b'"J"')  # payload flipped, CRC stale
        with pytest.raises(ProtocolError):
            decode_payload(bad)

    def test_bad_utf8_is_protocol_error(self):
        with pytest.raises(ProtocolError):
            decode_payload(b"\xff\xfe garbage")


class TestInterop:
    def test_partition_channel_rides_the_shared_framing(self):
        # the partition RPC Channel and the raw framing helpers must speak
        # the same bytes: send via Channel, receive via recv_frame
        from repro.partition.rpc import Channel

        a, b = pipe()
        try:
            Channel(a).send({"op": "ping", "n": 7})
            got, _ = recv_frame(b)
            assert got == {"op": "ping", "n": 7}
            send_frame(b, {"ok": True, "value": 7})
            assert Channel(a).recv() == {"ok": True, "value": 7}
        finally:
            a.close(), b.close()

    def test_chunked_delivery_reassembles(self):
        # frames arrive in arbitrary TCP segments; recv_exact must loop
        a, b = pipe()
        frame = encode_frame({"rows": list(range(100))})
        try:
            def dribble():
                for i in range(0, len(frame), 7):
                    a.sendall(frame[i : i + 7])
            t = threading.Thread(target=dribble)
            t.start()
            got, _ = recv_frame(b)
            t.join()
            assert got == {"rows": list(range(100))}
        finally:
            a.close(), b.close()
