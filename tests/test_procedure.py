"""Stored procedures: registration, pinned compile-once plans, txn semantics."""

import pytest

from repro.common.clock import CostModel
from repro.common.errors import (
    NoSuchProcedureError,
    ProcedureError,
    TransactionError,
    UserAbort,
)
from repro.common.types import ColumnType as T
from repro.engine import Database
from repro.storage.schema import schema

VOTE_SELECT = "SELECT num_votes FROM votes WHERE contestant_id = ?"
VOTE_UPDATE = "UPDATE votes SET num_votes = num_votes + 1 WHERE contestant_id = ?"


def voter_db(cost=None):
    db = Database(cost=cost if cost is not None else CostModel.free())
    db.create_table(
        schema(
            "votes",
            ("contestant_id", T.INTEGER, False),
            ("num_votes", T.BIGINT, False),
            primary_key=["contestant_id"],
        )
    )
    db.executemany(
        "INSERT INTO votes (contestant_id, num_votes) VALUES (?, ?)",
        [(c, 0) for c in range(4)],
    )
    return db


def register_vote(db):
    @db.register_procedure("vote")
    def vote(ctx, contestant_id):
        ctx.execute(VOTE_UPDATE, (contestant_id,))
        return ctx.execute(VOTE_SELECT, (contestant_id,)).scalar()

    return vote


# -- registration and invocation ----------------------------------------------

def test_call_commits_and_returns_body_result():
    db = voter_db()
    register_vote(db)
    assert db.call("vote", 2) == 1
    assert db.call("vote", 2) == 2
    assert db.execute(VOTE_SELECT, (2,)).scalar() == 2
    assert db.stats()["transactions"]["procedure_calls"] == 2


def test_registration_forms():
    db = voter_db()
    db.register_procedure("direct", lambda ctx: "d")

    @db.register_procedure("named")
    def _named(ctx):
        return "n"

    @db.register_procedure
    def bare(ctx):
        return "b"

    assert db.call("direct") == "d"
    assert db.call("named") == "n"
    assert db.call("bare") == "b"
    assert db.call("BARE") == "b"  # names are case-insensitive


def test_duplicate_registration_rejected():
    db = voter_db()
    register_vote(db)
    with pytest.raises(ValueError, match="already registered"):
        db.register_procedure("vote", lambda ctx: None)


def test_unknown_procedure():
    db = voter_db()
    with pytest.raises(NoSuchProcedureError, match="nope"):
        db.call("nope")


def test_call_inside_open_transaction_rejected():
    db = voter_db()
    register_vote(db)
    with db.transaction():
        with pytest.raises(TransactionError, match="already open"):
            db.call("vote", 0)


# -- compile-once pinning -----------------------------------------------------

def test_procedure_plans_each_statement_exactly_once():
    db = voter_db(cost=CostModel.calibrated())
    register_vote(db)
    plans_before = db.clock.events["sql_plan"]
    db.call("vote", 0)  # cold: both statements planned here
    assert db.clock.events["sql_plan"] - plans_before == 2
    hits_after_first = db.plan_cache.hits
    for i in range(50):
        db.call("vote", i % 4)
    # no replanning AND no plan-cache traffic: the pin table short-circuits
    assert db.clock.events["sql_plan"] - plans_before == 2
    assert db.plan_cache.hits == hits_after_first


def test_pinned_statements_repin_after_schema_change():
    db = voter_db(cost=CostModel.calibrated())
    register_vote(db)
    db.call("vote", 0)
    plans_before = db.clock.events["sql_plan"]
    db.create_index("votes", "votes_by_count", ["num_votes"], ordered=True)
    assert db.call("vote", 0) == 2  # stale pins replaced, not misused
    assert db.clock.events["sql_plan"] - plans_before == 2  # replanned once
    db.call("vote", 0)
    assert db.clock.events["sql_plan"] - plans_before == 2  # pinned again


# -- transaction semantics ----------------------------------------------------

def test_exception_rolls_back_and_wraps():
    db = voter_db()

    @db.register_procedure("crash")
    def crash(ctx):
        ctx.execute(VOTE_UPDATE, (0,))
        raise KeyError("midway")

    with pytest.raises(ProcedureError, match="crash.*rolled back") as info:
        db.call("crash")
    assert isinstance(info.value.__cause__, KeyError)
    assert db.execute(VOTE_SELECT, (0,)).scalar() == 0  # write undone
    assert db.stats()["transactions"]["aborted"] == 1
    assert db.stats()["transactions"]["open"] is False


def test_ctx_abort_raises_user_abort_unwrapped():
    db = voter_db()

    @db.register_procedure("maybe_vote")
    def maybe_vote(ctx, contestant_id, allowed):
        ctx.execute(VOTE_UPDATE, (contestant_id,))
        if not allowed:
            ctx.abort("not allowed")
        return ctx.execute(VOTE_SELECT, (contestant_id,)).scalar()

    assert db.call("maybe_vote", 1, True) == 1
    with pytest.raises(UserAbort, match="not allowed"):
        db.call("maybe_vote", 1, False)
    assert db.execute(VOTE_SELECT, (1,)).scalar() == 1  # rollback held


def test_escaped_procedure_context_cannot_execute():
    # A ctx smuggled out of its db.call() scope must not become a
    # non-transactional side door after its transaction finished.
    db = voter_db()

    @db.register_procedure("leak")
    def leak(ctx):
        return ctx

    ctx = db.call("leak")
    with pytest.raises(TransactionError, match="not the database's current"):
        ctx.execute(VOTE_UPDATE, (0,))
    assert db.execute(VOTE_SELECT, (0,)).scalar() == 0
    # ... including while a different transaction is open
    with db.transaction():
        with pytest.raises(TransactionError, match="not the database's current"):
            ctx.execute(VOTE_UPDATE, (0,))


def test_procedure_context_query_helper():
    db = voter_db()

    @db.register_procedure("tally")
    def tally(ctx):
        return ctx.query("SELECT contestant_id, num_votes FROM votes ORDER BY contestant_id")

    rows = db.call("tally")
    assert rows[0] == {"contestant_id": 0, "num_votes": 0}
    assert len(rows) == 4


def test_stats_reports_pinned_statement_counts():
    db = voter_db()
    register_vote(db)
    assert db.stats()["procedures"] == {"vote": 0}
    db.call("vote", 0)
    assert db.stats()["procedures"] == {"vote": 2}
